//! `rdp` — command-line driver for the routability-driven placement stack.
//!
//! ```text
//! rdp suite                                   list the 20 benchmark designs
//! rdp stats    <input>                        design statistics
//! rdp generate <name> --out DIR [--format F]  write a suite design to disk
//! rdp place    <input> [--preset P] [--out DIR]   run the placement flow
//!              [--checkpoint FILE] [--resume FILE]  resumable runs
//! rdp route    <input>                        route + congestion summary
//! rdp eval     <input>                        evaluate current placement
//! rdp flow     <input> [--preset P]           full pipeline + report
//! rdp convert  <input> --out DIR --format F   convert between formats
//!
//! <input> is either a suite design name (e.g. fft_1), a Bookshelf bundle
//! `bookshelf:DIR:BASE`, or a LEF/DEF pair `lefdef:LEF:DEF`.
//! Presets: xplace | xplace-route | ours (default ours).
//! Formats: bookshelf | lefdef.
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rdp::core::{
    run_flow, run_flow_with, FlowCheckpoint, FlowControl, PlacerPreset, RoutabilityConfig,
};
use rdp::db::DesignStats;
use rdp::{place_and_evaluate, Design, EvalConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "suite" => cmd_suite(),
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "place" => cmd_place(rest),
        "route" => cmd_route(rest),
        "eval" => cmd_eval(rest),
        "flow" => cmd_flow(rest),
        "convert" => cmd_convert(rest),
        "render" => cmd_render(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage: rdp <command> [args]
commands:
  suite                                    list the benchmark suite
  stats    <input>                         print design statistics
  generate <name> --out DIR [--format F]   write a suite design to disk
  place    <input> [--preset P] [--out DIR]  global placement flow
           [--checkpoint FILE]               save resumable state each iteration
           [--resume FILE]                   resume a killed run (bit-exact)
  route    <input>                         route and summarize congestion
  eval     <input>                         evaluate the current placement
  flow     <input> [--preset P]            place → legalize → evaluate
  convert  <input> --out DIR --format F    convert between formats
  render   <input> --out FILE.svg [--congestion] [--place P]   render to SVG
inputs:  <suite-name> | bookshelf:DIR:BASE | lefdef:LEF_PATH:DEF_PATH
presets: xplace | xplace-route | ours       formats: bookshelf | lefdef"
}

fn flag<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_preset(rest: &[String]) -> Result<PlacerPreset, String> {
    match flag(rest, "--preset").unwrap_or("ours") {
        "xplace" => Ok(PlacerPreset::Xplace),
        "xplace-route" => Ok(PlacerPreset::XplaceRoute),
        "ours" => Ok(PlacerPreset::Ours),
        other => Err(format!("unknown preset `{other}`")),
    }
}

/// Resolves an input spec to a design.
fn load_input(spec: &str) -> Result<Design, String> {
    if let Some(rem) = spec.strip_prefix("bookshelf:") {
        let (dir, base) = rem
            .split_once(':')
            .ok_or("bookshelf input must be bookshelf:DIR:BASE")?;
        return rdp::parse::load_bookshelf(Path::new(dir), base).map_err(|e| e.to_string());
    }
    if let Some(rem) = spec.strip_prefix("lefdef:") {
        let (lef, def) = rem
            .split_once(':')
            .ok_or("lefdef input must be lefdef:LEF_PATH:DEF_PATH")?;
        let files = rdp::parse::LefDefFiles {
            lef: std::fs::read_to_string(lef).map_err(|e| format!("{lef}: {e}"))?,
            def: std::fs::read_to_string(def).map_err(|e| format!("{def}: {e}"))?,
        };
        return rdp::parse::read_lefdef(&files).map_err(|e| e.to_string());
    }
    rdp::gen::generate_named(spec).ok_or_else(|| {
        format!("`{spec}` is not a suite design; see `rdp suite` or use bookshelf:/lefdef: inputs")
    })
}

fn save_output(design: &Design, dir: &Path, format: &str) -> Result<(), String> {
    match format {
        "bookshelf" => {
            rdp::parse::save_bookshelf(design, dir, design.name()).map_err(|e| e.to_string())?;
            println!(
                "wrote {}/{}.{{nodes,nets,pl,scl,route,pg,aux}}",
                dir.display(),
                design.name()
            );
        }
        "lefdef" => {
            let files = rdp::parse::write_lefdef(design);
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let lef = dir.join(format!("{}.lef", design.name()));
            let def = dir.join(format!("{}.def", design.name()));
            std::fs::write(&lef, files.lef).map_err(|e| e.to_string())?;
            std::fs::write(&def, files.def).map_err(|e| e.to_string())?;
            println!("wrote {} and {}", lef.display(), def.display());
        }
        other => return Err(format!("unknown format `{other}`")),
    }
    Ok(())
}

fn cmd_suite() -> Result<(), String> {
    println!(
        "{:<16} {:>8} {:>7} {:>6} {:>8}",
        "design", "cells", "macros", "util", "margin"
    );
    for e in rdp::gen::ispd2015_suite() {
        println!(
            "{:<16} {:>8} {:>7} {:>6.2} {:>8.3}",
            e.name,
            e.params.num_cells,
            e.params.num_macros,
            e.params.utilization,
            e.params.congestion_margin
        );
    }
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("stats needs an input")?;
    let design = load_input(spec)?;
    println!("{}", DesignStats::of(&design));
    let spec = design.routing();
    println!(
        "  routing: {} layers, {}x{} G-cells, H/V capacity {:.1}/{:.1} per G-cell",
        spec.num_layers(),
        spec.gx,
        spec.gy,
        spec.total_h_capacity(),
        spec.total_v_capacity()
    );
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let name = rest.first().ok_or("generate needs a suite design name")?;
    let out: PathBuf = flag(rest, "--out")
        .ok_or("generate needs --out DIR")?
        .into();
    let format = flag(rest, "--format").unwrap_or("bookshelf");
    let design =
        rdp::gen::generate_named(name).ok_or_else(|| format!("unknown design `{name}`"))?;
    save_output(&design, &out, format)
}

fn cmd_place(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("place needs an input")?;
    let preset = parse_preset(rest)?;
    let mut design = load_input(spec)?;

    // Checkpoint/resume: --checkpoint FILE rewrites FILE with the flow
    // state at the top of every routability iteration; --resume FILE
    // restarts a killed run from that state, reproducing the
    // uninterrupted run bit-for-bit.
    let checkpoint_path = flag(rest, "--checkpoint").map(PathBuf::from);
    let resume = match flag(rest, "--resume") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let cp = FlowCheckpoint::from_bytes(&bytes).map_err(|e| e.to_string())?;
            println!(
                "resuming `{}` from {} (routability iteration {})",
                design.name(),
                path,
                cp.next_route_iter
            );
            Some(cp)
        }
        None => None,
    };
    let mut on_checkpoint = checkpoint_path.map(|path| {
        move |cp: &FlowCheckpoint| {
            // Atomic-ish write: tmp file then rename, so a kill mid-write
            // never leaves a torn checkpoint behind.
            let tmp = path.with_extension("tmp");
            let res =
                std::fs::write(&tmp, cp.to_bytes()).and_then(|_| std::fs::rename(&tmp, &path));
            if let Err(e) = res {
                eprintln!(
                    "warning: failed to write checkpoint {}: {e}",
                    path.display()
                );
            }
        }
    });
    let ctrl = FlowControl {
        resume,
        on_checkpoint: on_checkpoint
            .as_mut()
            .map(|f| f as &mut dyn FnMut(&FlowCheckpoint)),
        ..Default::default()
    };
    let report = run_flow_with(&mut design, &RoutabilityConfig::preset(preset), ctrl)
        .map_err(|e| e.to_string())?;
    println!(
        "placed `{}`: {} WL iters + {} routability iters in {:.2}s, HPWL {:.0} um",
        design.name(),
        report.gp_iterations,
        report.route_iterations,
        report.place_seconds,
        report.hpwl
    );
    for w in &report.warnings {
        println!("  warning: {w}");
    }
    if let Some(out) = flag(rest, "--out") {
        let format = flag(rest, "--format").unwrap_or("bookshelf");
        save_output(&design, Path::new(out), format)?;
    }
    Ok(())
}

fn cmd_route(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("route needs an input")?;
    let design = load_input(spec)?;
    let result = rdp::route::GlobalRouter::default().route(&design);
    println!(
        "routed `{}`: wirelength {:.0} um, {:.0} vias",
        design.name(),
        result.wirelength,
        result.vias
    );
    println!(
        "congestion: max {:.2}, {} overflowed G-cells, total overflow {:.1}",
        result.max_congestion(),
        result.maps.overflowed_gcells(),
        result.maps.total_overflow()
    );
    println!("{}", result.congestion.ascii_heatmap(48));
    Ok(())
}

fn cmd_eval(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("eval needs an input")?;
    let design = load_input(spec)?;
    let e = rdp::drc::evaluate(&design, &EvalConfig::default());
    println!("evaluation of `{}` (current placement):", design.name());
    println!("  DRWL    {:>12.0} um", e.drwl);
    println!("  #DRVias {:>12.0}", e.drvias);
    println!(
        "  #DRVs   {:>12.0}  (overflow {:.0}, pin access {:.0}, rail {:.0})",
        e.drvs, e.drv_overflow, e.drv_pin_access, e.drv_rail
    );
    println!("  track shorts {:>7.0}", e.track_shorts);

    // Hotspot diagnostics on the G-cell grid.
    let route = rdp::route::GlobalRouter::default().route(&design);
    let grid = design.gcell_grid();
    let spots = rdp::drc::hotspots(&design, &route, &grid, 5);
    if spots.is_empty() {
        println!("  no overflow hotspots");
    } else {
        println!("  top hotspots:");
        for s in &spots {
            println!(
                "    {:?} at {}: overflow {:.1}, util {:.2} → {}",
                s.gcell,
                s.region.center(),
                s.overflow,
                s.utilization,
                rdp::drc::classify(s)
            );
        }
    }
    let tr = rdp::drc::track_analysis(&design, &route, &grid);
    println!(
        "  worst layer: {} (overflow {:.1} tracks)",
        tr.worst_layer_name(),
        tr.overflow_per_layer[tr.worst_layer]
    );
    Ok(())
}

fn cmd_flow(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("flow needs an input")?;
    let preset = parse_preset(rest)?;
    let mut design = load_input(spec)?;
    let report = place_and_evaluate(
        &mut design,
        &RoutabilityConfig::preset(preset),
        &EvalConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "flow on `{}` ({:?}): PT {:.2}s, RT {:.2}s",
        design.name(),
        preset,
        report.flow.place_seconds,
        report.eval.route_seconds
    );
    println!(
        "  DRWL {:.0} um | #DRVias {:.0} | #DRVs {:.0}",
        report.eval.drwl, report.eval.drvias, report.eval.drvs
    );
    let legality = rdp::legal::check_legality(&design);
    println!("  legal: {}", legality.is_legal());
    if let Some(out) = flag(rest, "--out") {
        let format = flag(rest, "--format").unwrap_or("bookshelf");
        save_output(&design, Path::new(out), format)?;
    }
    Ok(())
}

fn cmd_render(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("render needs an input")?;
    let out = flag(rest, "--out").ok_or("render needs --out FILE.svg")?;
    let mut design = load_input(spec)?;
    if let Some(p) = flag(rest, "--place") {
        let preset = match p {
            "xplace" => PlacerPreset::Xplace,
            "xplace-route" => PlacerPreset::XplaceRoute,
            "ours" => PlacerPreset::Ours,
            other => return Err(format!("unknown preset `{other}`")),
        };
        run_flow(&mut design, &RoutabilityConfig::preset(preset)).map_err(|e| e.to_string())?;
    }
    let congestion = rest.iter().any(|a| a == "--congestion").then(|| {
        rdp::route::GlobalRouter::default()
            .route(&design)
            .congestion
    });
    let svg = rdp::render::render_svg(
        &design,
        &rdp::render::RenderOptions {
            congestion,
            ..Default::default()
        },
    );
    std::fs::write(out, svg).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_convert(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("convert needs an input")?;
    let out: PathBuf = flag(rest, "--out").ok_or("convert needs --out DIR")?.into();
    let format = flag(rest, "--format").ok_or("convert needs --format")?;
    let design = load_input(spec)?;
    save_output(&design, &out, format)
}
