//! `rdp` — command-line driver for the routability-driven placement stack.
//!
//! ```text
//! rdp suite                                   list the 20 benchmark designs
//! rdp stats    <input>                        design statistics
//! rdp generate <name> --out DIR [--format F]  write a suite design to disk
//! rdp place    <input> [--preset P] [--out DIR]   run the placement flow
//!              [--checkpoint FILE] [--resume FILE]  resumable runs
//! rdp route    <input>                        route + congestion summary
//! rdp eval     <input>                        evaluate current placement
//! rdp flow     <input> [--preset P]           full pipeline + report
//! rdp convert  <input> --out DIR --format F   convert between formats
//!
//! <input> is either a suite design name (e.g. fft_1), a Bookshelf bundle
//! `bookshelf:DIR:BASE`, or a LEF/DEF pair `lefdef:LEF:DEF`.
//! Presets: xplace | xplace-route | ours (default ours).
//! Formats: bookshelf | lefdef.
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rdp::core::{
    run_flow, run_flow_with, FlowCheckpoint, FlowControl, PlacerPreset, PredictConfig,
    RoutabilityConfig,
};
use rdp::db::DesignStats;
use rdp::obs::Collector;
use rdp::{place_and_evaluate_obs, Design, EvalConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "suite" => cmd_suite(),
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "place" => cmd_place(rest),
        "route" => cmd_route(rest),
        "eval" => cmd_eval(rest),
        "flow" => cmd_flow(rest),
        "matrix" => cmd_matrix(rest),
        "report" => cmd_report(rest),
        "diff" => cmd_diff(rest),
        "convert" => cmd_convert(rest),
        "render" => cmd_render(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "cancel" => cmd_cancel(rest),
        "fetch" => cmd_fetch(rest),
        "top" => cmd_top(rest),
        "shutdown" => cmd_shutdown(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage: rdp <command> [args]
commands:
  suite                                    list the benchmark suite
  stats    <input>                         print design statistics
  generate <name> --out DIR [--format F]   write a suite design to disk
  place    <input> [--preset P] [--out DIR]  global placement flow
           [--fast] [--gp-iters N] [--max-route-iters N] [--gp-burst N]
                                             CI-sized preset + iteration caps
                                             (same knobs as `rdp submit`)
           [--checkpoint FILE]               save resumable state each iteration
           [--resume FILE]                   resume a killed run (bit-exact)
           [--legalize]                      legalize + detailed-place after GP
           [--incremental-route]             rip up / re-route only dirty nets
           [--incremental-move-threshold F]  dirty threshold, fraction of bin
           [--incremental-resync-every N]    full-resync cadence (default 16)
           [--incremental-drift-frac F]      dirty-fraction resync trigger
           [--predict]                       learned congestion fast-path:
                                             substitute predicted maps for
                                             routing on alternating iterations
           [--predict-drift-tol F]           fall back to full routing when
                                             predicted-vs-routed QoR drift
                                             exceeds F (default 0.5)
           [--predict-warmup K]              real routes before substituting
                                             (default 2)
  route    <input>                         route and summarize congestion
  eval     <input>                         evaluate the current placement
  flow     <input> [--preset P]            place → legalize → evaluate
           [--incremental-route]             (same routing flags as place)
  matrix   [--scale small|full] [--classes a,b,...] [--run-dir DIR]
                                           scenario matrix: run every stress
                                           class through the three presets
                                           plus ours+predict and gate the
                                           Table-1 DRV ordering; exits
                                           nonzero naming violations
  report   <run-dir> [--out FILE.html]     render a run directory to HTML
  diff     <run-a> <run-b> [--qor-tol X] [--time-tol Y]
                                           QoR/perf deltas; exit 1 on regression
  convert  <input> --out DIR --format F    convert between formats
  render   <input> --out FILE.svg [--congestion] [--place P]   render to SVG
service (crash-safe placement-as-a-service):
  serve    --dir DIR [--addr H:P] [--workers N] [--max-queue N]
           [--job-threads N] [--io-timeout-ms N] [--port-file FILE]
                                           durable job queue over TCP; kill -9
                                           at any instant and restart: the
                                           queue replays and partial jobs
                                           resume bitwise from checkpoints
  submit   ADDR <input> [--preset P] [--fast] [--capture]
           [--incremental-route] [--deadline-ms N] [--retries N]
           [--max-route-iters N] [--gp-iters N] [--gp-burst N]
           [--incremental-resync-every N] [--incremental-drift-frac F]
           [--predict] [--predict-drift-tol F] [--predict-warmup K]
           [--wait [--wait-ms N]]           enqueue a job (prints its id)
  status   ADDR [ID]                        one job or the whole queue
  cancel   ADDR ID                          cancel a queued/running job
  fetch    ADDR ID                          result + exact HPWL bit pattern
  stats    ADDR [--json] [--metrics-out F]  lifetime service telemetry snapshot
                                            (schema-validated; op latency
                                            histograms, counters, live jobs)
  top      ADDR [--interval-ms N] [--iters N]
                                            live fleet view (refreshes in
                                            place on a TTY, appends otherwise;
                                            refuses protocol-version mismatch)
  shutdown ADDR                             graceful drain: running jobs are
                                            checkpointed and requeued durable
                                            (prints the drained-job count)
observability (place and flow):
  --trace-out FILE.jsonl    span/instant event log (one JSON object per line)
  --chrome-trace FILE.json  chrome://tracing / Perfetto trace_event file
  --metrics-out FILE.json   counters, gauges, histograms, series, frames
  --run-dir DIR             write DIR/trace.jsonl + DIR/metrics.json (for
                            `rdp report` and `rdp diff`)
  --report-out FILE.html    render the validated self-contained HTML report
  --profile                 print the per-stage time table after the run
inputs:  <suite-name> | bookshelf:DIR:BASE | lefdef:LEF_PATH:DEF_PATH
presets: xplace | xplace-route | ours       formats: bookshelf | lefdef"
}

fn flag<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_preset(rest: &[String]) -> Result<PlacerPreset, String> {
    match flag(rest, "--preset").unwrap_or("ours") {
        "xplace" => Ok(PlacerPreset::Xplace),
        "xplace-route" => Ok(PlacerPreset::XplaceRoute),
        "ours" => Ok(PlacerPreset::Ours),
        other => Err(format!("unknown preset `{other}`")),
    }
}

/// Builds the flow configuration for a preset plus command-line overrides
/// (`--incremental-route` enables incremental rip-up-and-reroute between
/// routability iterations). The iteration overrides mirror `rdp submit`,
/// so a direct `rdp place` can run the exact configuration a served job
/// ran — the serve smoke gate diffs the two run-dirs.
fn parse_flow_config(rest: &[String]) -> Result<RoutabilityConfig, String> {
    let preset = parse_preset(rest)?;
    let mut cfg = if rest.iter().any(|a| a == "--fast") {
        RoutabilityConfig::preset_fast(preset)
    } else {
        RoutabilityConfig::preset(preset)
    };
    if let Some(n) = parse_num::<usize>(rest, "--max-route-iters")? {
        cfg.max_route_iters = n;
    }
    if let Some(n) = parse_num::<usize>(rest, "--gp-iters")? {
        if n == 0 {
            return Err("--gp-iters must be at least 1".into());
        }
        cfg.gp.max_iters = n;
    }
    if let Some(n) = parse_num::<usize>(rest, "--gp-burst")? {
        cfg.gp_iters_per_route = n;
    }
    if rest.iter().any(|a| a == "--incremental-route") {
        cfg.incremental_routing = true;
    }
    if let Some(thr) = flag(rest, "--incremental-move-threshold") {
        cfg.incremental_move_threshold = thr
            .parse()
            .map_err(|_| format!("--incremental-move-threshold `{thr}` is not a number"))?;
    }
    if let Some(n) = parse_num::<usize>(rest, "--incremental-resync-every")? {
        if n == 0 {
            return Err("--incremental-resync-every must be at least 1".into());
        }
        cfg.incremental_resync_every = n;
    }
    if let Some(f) = parse_num::<f64>(rest, "--incremental-drift-frac")? {
        cfg.incremental_drift_frac = f;
    }
    if rest.iter().any(|a| a == "--predict") {
        cfg.predict = Some(PredictConfig::default());
    }
    if let Some(tol) = parse_num::<f64>(rest, "--predict-drift-tol")? {
        let p = cfg
            .predict
            .as_mut()
            .ok_or("--predict-drift-tol requires --predict")?;
        p.drift_tol = tol;
    }
    if let Some(k) = parse_num::<usize>(rest, "--predict-warmup")? {
        let p = cfg
            .predict
            .as_mut()
            .ok_or("--predict-warmup requires --predict")?;
        if k == 0 {
            return Err("--predict-warmup must be at least 1".into());
        }
        p.warmup_routes = k;
    }
    Ok(cfg)
}

/// Observability outputs requested on the command line. The collector is
/// enabled only when at least one output is requested, so plain runs keep
/// the disabled-path cost (one branch per would-be span).
struct ObsArgs {
    obs: Collector,
    trace_out: Option<PathBuf>,
    chrome_trace: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    run_dir: Option<PathBuf>,
    report_out: Option<PathBuf>,
    profile: bool,
}

fn parse_obs(rest: &[String]) -> ObsArgs {
    let trace_out = flag(rest, "--trace-out").map(PathBuf::from);
    let chrome_trace = flag(rest, "--chrome-trace").map(PathBuf::from);
    let metrics_out = flag(rest, "--metrics-out").map(PathBuf::from);
    let run_dir = flag(rest, "--run-dir").map(PathBuf::from);
    let report_out = flag(rest, "--report-out").map(PathBuf::from);
    let profile = rest.iter().any(|a| a == "--profile");
    let obs = if trace_out.is_some()
        || chrome_trace.is_some()
        || metrics_out.is_some()
        || run_dir.is_some()
        || report_out.is_some()
        || profile
    {
        Collector::enabled()
    } else {
        Collector::disabled()
    };
    ObsArgs {
        obs,
        trace_out,
        chrome_trace,
        metrics_out,
        run_dir,
        report_out,
        profile,
    }
}

/// Writes the requested exports after the traced run completed. Exporting
/// happens strictly post-run, so trace I/O can never perturb the flow.
fn write_obs_outputs(o: &ObsArgs, title: &str) -> Result<(), String> {
    if let Some(path) = &o.trace_out {
        std::fs::write(path, rdp::obs::export_jsonl(&o.obs))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote event log {}", path.display());
    }
    if let Some(path) = &o.chrome_trace {
        std::fs::write(path, rdp::obs::export_chrome_trace(&o.obs))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote Chrome trace {} (open in chrome://tracing or ui.perfetto.dev)",
            path.display()
        );
    }
    if let Some(path) = &o.metrics_out {
        std::fs::write(path, rdp::obs::export_metrics_json(&o.obs))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote metrics {}", path.display());
    }
    if let Some(dir) = &o.run_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        // Atomic capture (tmp + rename): a kill mid-write leaves at worst
        // a `.tmp` leftover, which `rdp report` flags as a partial run
        // instead of choking on torn JSON.
        rdp::serve::store::write_atomic(
            &dir.join("trace.jsonl"),
            rdp::obs::export_jsonl(&o.obs).as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        rdp::serve::store::write_atomic(
            &dir.join("metrics.json"),
            rdp::obs::export_metrics_json(&o.obs).as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        println!("wrote run directory {}", dir.display());
    }
    if let Some(path) = &o.report_out {
        let model = rdp::report::RunModel::from_collector(&o.obs).map_err(|e| e.to_string())?;
        let html = rdp::report::render_report(&model, title);
        rdp::report::validate_report(&html, &model)
            .map_err(|e| format!("generated report failed validation: {e}"))?;
        std::fs::write(path, html).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote report {}", path.display());
    }
    if o.profile {
        print!("{}", rdp::obs::stage_table(&o.obs));
    }
    let drops = o.obs.drop_stats();
    if drops.any() {
        eprintln!(
            "warning: collector dropped {} events ({} spans, {} instants) and {} frames; \
             raise the event capacity / frame budget for a complete trace",
            drops.events, drops.spans, drops.instants, drops.frames
        );
    }
    Ok(())
}

/// Resolves an input spec to a design; generation/parsing is timed on
/// `obs` so `--profile` covers the input stage.
fn load_input(spec: &str, obs: &Collector) -> Result<Design, String> {
    if let Some(rem) = spec.strip_prefix("bookshelf:") {
        let (dir, base) = rem
            .split_once(':')
            .ok_or("bookshelf input must be bookshelf:DIR:BASE")?;
        return rdp::parse::load_bookshelf_obs(Path::new(dir), base, obs)
            .map_err(|e| e.to_string());
    }
    if let Some(rem) = spec.strip_prefix("lefdef:") {
        let (lef, def) = rem
            .split_once(':')
            .ok_or("lefdef input must be lefdef:LEF_PATH:DEF_PATH")?;
        let files = rdp::parse::LefDefFiles {
            lef: std::fs::read_to_string(lef).map_err(|e| format!("{lef}: {e}"))?,
            def: std::fs::read_to_string(def).map_err(|e| format!("{def}: {e}"))?,
        };
        return rdp::parse::read_lefdef_obs(&files, obs).map_err(|e| e.to_string());
    }
    rdp::gen::generate_named_obs(spec, obs).ok_or_else(|| {
        format!("`{spec}` is not a suite design; see `rdp suite` or use bookshelf:/lefdef: inputs")
    })
}

fn save_output(design: &Design, dir: &Path, format: &str) -> Result<(), String> {
    match format {
        "bookshelf" => {
            rdp::parse::save_bookshelf(design, dir, design.name()).map_err(|e| e.to_string())?;
            println!(
                "wrote {}/{}.{{nodes,nets,pl,scl,route,pg,aux}}",
                dir.display(),
                design.name()
            );
        }
        "lefdef" => {
            let files = rdp::parse::write_lefdef(design);
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let lef = dir.join(format!("{}.lef", design.name()));
            let def = dir.join(format!("{}.def", design.name()));
            std::fs::write(&lef, files.lef).map_err(|e| e.to_string())?;
            std::fs::write(&def, files.def).map_err(|e| e.to_string())?;
            println!("wrote {} and {}", lef.display(), def.display());
        }
        other => return Err(format!("unknown format `{other}`")),
    }
    Ok(())
}

fn cmd_suite() -> Result<(), String> {
    println!(
        "{:<16} {:>8} {:>7} {:>6} {:>8}",
        "design", "cells", "macros", "util", "margin"
    );
    for e in rdp::gen::ispd2015_suite() {
        println!(
            "{:<16} {:>8} {:>7} {:>6.2} {:>8.3}",
            e.name,
            e.params.num_cells,
            e.params.num_macros,
            e.params.utilization,
            e.params.congestion_margin
        );
    }
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let spec = rest
        .first()
        .ok_or("stats needs an input or a server ADDR")?;
    // `rdp stats HOST:PORT` is the service telemetry snapshot; anything
    // else (suite name, bookshelf:, lefdef:) is design statistics.
    if looks_like_addr(spec) {
        return cmd_service_stats(rest);
    }
    let design = load_input(spec, &Collector::disabled())?;
    println!("{}", DesignStats::of(&design));
    let spec = design.routing();
    println!(
        "  routing: {} layers, {}x{} G-cells, H/V capacity {:.1}/{:.1} per G-cell",
        spec.num_layers(),
        spec.gx,
        spec.gy,
        spec.total_h_capacity(),
        spec.total_v_capacity()
    );
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let name = rest.first().ok_or("generate needs a suite design name")?;
    let out: PathBuf = flag(rest, "--out")
        .ok_or("generate needs --out DIR")?
        .into();
    let format = flag(rest, "--format").unwrap_or("bookshelf");
    let mut params = rdp::gen::ispd2015_suite()
        .into_iter()
        .find(|e| e.name == name.as_str())
        .ok_or_else(|| format!("unknown design `{name}`"))?
        .params;
    // Optional overrides so scripts can size a suite design to taste
    // (e.g. the serve smoke gate's 5k-cell variant).
    let num = |key: &str| -> Result<Option<f64>, String> {
        flag(rest, key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("{key} `{v}` is not a number"))
            })
            .transpose()
    };
    if let Some(v) = num("--cells")? {
        params.num_cells = v as usize;
    }
    if let Some(v) = num("--seed")? {
        params.seed = v as u64;
    }
    if let Some(v) = num("--util")? {
        params.utilization = v;
    }
    if let Some(v) = num("--margin")? {
        params.congestion_margin = v;
    }
    let design = rdp::gen::generate(name, &params);
    save_output(&design, &out, format)
}

fn cmd_place(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("place needs an input")?;
    let obs_args = parse_obs(rest);
    let mut design = load_input(spec, &obs_args.obs)?;

    // Checkpoint/resume: --checkpoint FILE rewrites FILE with the flow
    // state at the top of every routability iteration; --resume FILE
    // restarts a killed run from that state, reproducing the
    // uninterrupted run bit-for-bit.
    let checkpoint_path = flag(rest, "--checkpoint").map(PathBuf::from);
    let resume = match flag(rest, "--resume") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let cp = FlowCheckpoint::from_bytes(&bytes).map_err(|e| e.to_string())?;
            println!(
                "resuming `{}` from {} (routability iteration {})",
                design.name(),
                path,
                cp.next_route_iter
            );
            Some(cp)
        }
        None => None,
    };
    let mut on_checkpoint = checkpoint_path.map(|path| {
        move |cp: &FlowCheckpoint| {
            // Atomic-ish write: tmp file then rename, so a kill mid-write
            // never leaves a torn checkpoint behind.
            let tmp = path.with_extension("tmp");
            let res =
                std::fs::write(&tmp, cp.to_bytes()).and_then(|_| std::fs::rename(&tmp, &path));
            if let Err(e) = res {
                eprintln!(
                    "warning: failed to write checkpoint {}: {e}",
                    path.display()
                );
            }
        }
    });
    let ctrl = FlowControl {
        resume,
        on_checkpoint: on_checkpoint
            .as_mut()
            .map(|f| f as &mut dyn FnMut(&FlowCheckpoint)),
        obs: obs_args.obs.clone(),
        ..Default::default()
    };
    let report =
        run_flow_with(&mut design, &parse_flow_config(rest)?, ctrl).map_err(|e| e.to_string())?;
    println!(
        "placed `{}`: {} WL iters + {} routability iters in {:.2}s, HPWL {:.0} um",
        design.name(),
        report.gp_iterations,
        report.route_iterations,
        report.place_seconds,
        report.hpwl
    );
    for w in &report.warnings {
        println!("  warning: {w}");
    }
    if rest.iter().any(|a| a == "--legalize") {
        let virtual_widths = report.inflation_ratios.as_ref().map(|ratios| {
            design
                .cells()
                .iter()
                .enumerate()
                .map(|(i, c)| c.w * ratios[i].max(1.0).sqrt())
                .collect::<Vec<f64>>()
        });
        let lcfg = rdp::legal::LegalizeConfig::default();
        let dcfg = rdp::legal::DetailedConfig::default();
        let (lg, gain) = match &virtual_widths {
            Some(w) => (
                rdp::legal::legalize_virtual_obs(&mut design, &lcfg, w, &obs_args.obs),
                rdp::legal::detailed_place_virtual_obs(&mut design, &dcfg, w, &obs_args.obs),
            ),
            None => (
                rdp::legal::legalize_obs(&mut design, &lcfg, &obs_args.obs),
                rdp::legal::detailed_place_obs(&mut design, &dcfg, &obs_args.obs),
            ),
        };
        println!(
            "legalized: {} failed, detailed-place gain {:.0} um, HPWL {:.0} um",
            lg.failed,
            gain,
            design.hpwl()
        );
    }
    write_obs_outputs(&obs_args, &format!("rdp place · {}", design.name()))?;
    if let Some(out) = flag(rest, "--out") {
        let format = flag(rest, "--format").unwrap_or("bookshelf");
        save_output(&design, Path::new(out), format)?;
    }
    Ok(())
}

fn cmd_route(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("route needs an input")?;
    let design = load_input(spec, &Collector::disabled())?;
    let result = rdp::route::GlobalRouter::default().route(&design);
    println!(
        "routed `{}`: wirelength {:.0} um, {:.0} vias",
        design.name(),
        result.wirelength,
        result.vias
    );
    println!(
        "congestion: max {:.2}, {} overflowed G-cells, total overflow {:.1}",
        result.max_congestion(),
        result.maps.overflowed_gcells(),
        result.maps.total_overflow()
    );
    println!("{}", result.congestion.ascii_heatmap(48));
    Ok(())
}

fn cmd_eval(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("eval needs an input")?;
    let design = load_input(spec, &Collector::disabled())?;
    let e = rdp::drc::evaluate(&design, &EvalConfig::default());
    println!("evaluation of `{}` (current placement):", design.name());
    println!("  DRWL    {:>12.0} um", e.drwl);
    println!("  #DRVias {:>12.0}", e.drvias);
    println!(
        "  #DRVs   {:>12.0}  (overflow {:.0}, pin access {:.0}, rail {:.0})",
        e.drvs, e.drv_overflow, e.drv_pin_access, e.drv_rail
    );
    println!("  track shorts {:>7.0}", e.track_shorts);

    // Hotspot diagnostics on the G-cell grid.
    let route = rdp::route::GlobalRouter::default().route(&design);
    let grid = design.gcell_grid();
    let spots = rdp::drc::hotspots(&design, &route, &grid, 5);
    if spots.is_empty() {
        println!("  no overflow hotspots");
    } else {
        println!("  top hotspots:");
        for s in &spots {
            println!(
                "    {:?} at {}: overflow {:.1}, util {:.2} → {}",
                s.gcell,
                s.region.center(),
                s.overflow,
                s.utilization,
                rdp::drc::classify(s)
            );
        }
    }
    let tr = rdp::drc::track_analysis(&design, &route, &grid);
    println!(
        "  worst layer: {} (overflow {:.1} tracks)",
        tr.worst_layer_name(),
        tr.overflow_per_layer[tr.worst_layer]
    );
    Ok(())
}

fn cmd_flow(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("flow needs an input")?;
    let preset = parse_preset(rest)?;
    let obs_args = parse_obs(rest);
    let mut design = load_input(spec, &obs_args.obs)?;
    let report = place_and_evaluate_obs(
        &mut design,
        &parse_flow_config(rest)?,
        &EvalConfig::default(),
        &obs_args.obs,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "flow on `{}` ({:?}): PT {:.2}s, RT {:.2}s",
        design.name(),
        preset,
        report.flow.place_seconds,
        report.eval.route_seconds
    );
    println!(
        "  DRWL {:.0} um | #DRVias {:.0} | #DRVs {:.0}",
        report.eval.drwl, report.eval.drvias, report.eval.drvs
    );
    let legality = rdp::legal::check_legality(&design);
    println!("  legal: {}", legality.is_legal());
    write_obs_outputs(&obs_args, &format!("rdp flow · {}", design.name()))?;
    if let Some(out) = flag(rest, "--out") {
        let format = flag(rest, "--format").unwrap_or("bookshelf");
        save_output(&design, Path::new(out), format)?;
    }
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let run = rest.first().ok_or("report needs a run directory")?;
    let run = PathBuf::from(run);
    let out = flag(rest, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| run.join("report.html"));
    let title = flag(rest, "--title")
        .map(str::to_string)
        .unwrap_or_else(|| format!("rdp run · {}", run.display()));
    let model = rdp::report::RunModel::load(&run).map_err(|e| e.to_string())?;
    for name in &model.partial_artifacts {
        eprintln!(
            "warning: partial run — {name} leftover in {} (the producing run was \
             killed mid-capture; the committed artifacts are intact)",
            run.display()
        );
    }
    let html = rdp::report::render_report(&model, &title);
    let stats = rdp::report::validate_report(&html, &model)
        .map_err(|e| format!("generated report failed validation: {e}"))?;
    std::fs::write(&out, html).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "wrote report {} ({} charts, {} heatmaps)",
        out.display(),
        stats.charts,
        stats.heatmaps
    );
    Ok(())
}

fn cmd_matrix(rest: &[String]) -> Result<(), String> {
    let scale = match flag(rest, "--scale").unwrap_or("small") {
        "small" => rdp::gen::Scale::Small,
        "full" => rdp::gen::Scale::Full,
        other => return Err(format!("unknown scale `{other}` (expected small or full)")),
    };
    let classes = flag(rest, "--classes").map(|s| {
        s.split(',')
            .map(|c| c.trim().to_string())
            .collect::<Vec<_>>()
    });
    let run_dir = flag(rest, "--run-dir").map(PathBuf::from);
    let report = rdp::matrix::run_matrix(&rdp::matrix::MatrixConfig {
        scale,
        classes,
        run_dir,
    })?;
    print!("{}", report.table());
    if report.passed() {
        println!("matrix: all {} scenario(s) passed", report.outcomes.len());
        Ok(())
    } else {
        let mut names: Vec<&str> = report.failures().map(|f| f.scenario()).collect();
        names.dedup();
        Err(format!(
            "scenario matrix gate failed in class(es): {}",
            names.join(", ")
        ))
    }
}

fn cmd_diff(rest: &[String]) -> Result<(), String> {
    let a = rest.first().ok_or("diff needs two run directories")?;
    let b = rest.get(1).ok_or("diff needs two run directories")?;
    let mut thr = rdp::report::DiffThresholds::default();
    if let Some(tol) = flag(rest, "--qor-tol") {
        thr.qor_rel_tol = tol
            .parse()
            .map_err(|_| format!("--qor-tol `{tol}` is not a number"))?;
    }
    if let Some(tol) = flag(rest, "--time-tol") {
        thr.time_rel_tol = tol
            .parse()
            .map_err(|_| format!("--time-tol `{tol}` is not a number"))?;
    }
    let ma = rdp::report::RunModel::load(Path::new(a)).map_err(|e| e.to_string())?;
    let mb = rdp::report::RunModel::load(Path::new(b)).map_err(|e| e.to_string())?;
    let diff = rdp::report::diff_runs(&ma, &mb, &thr);
    print!("{}", diff.render_text());
    if diff.has_regression() {
        return Err(format!("regression in: {}", diff.regressions().join(", ")));
    }
    println!("no regression (qor tol {:.3}%)", 100.0 * thr.qor_rel_tol);
    Ok(())
}

fn cmd_render(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("render needs an input")?;
    let out = flag(rest, "--out").ok_or("render needs --out FILE.svg")?;
    let mut design = load_input(spec, &Collector::disabled())?;
    if let Some(p) = flag(rest, "--place") {
        let preset = match p {
            "xplace" => PlacerPreset::Xplace,
            "xplace-route" => PlacerPreset::XplaceRoute,
            "ours" => PlacerPreset::Ours,
            other => return Err(format!("unknown preset `{other}`")),
        };
        run_flow(&mut design, &RoutabilityConfig::preset(preset)).map_err(|e| e.to_string())?;
    }
    let congestion = rest.iter().any(|a| a == "--congestion").then(|| {
        rdp::route::GlobalRouter::default()
            .route(&design)
            .congestion
    });
    let svg = rdp::render::render_svg(
        &design,
        &rdp::render::RenderOptions {
            congestion,
            ..Default::default()
        },
    );
    std::fs::write(out, svg).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_convert(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("convert needs an input")?;
    let out: PathBuf = flag(rest, "--out").ok_or("convert needs --out DIR")?.into();
    let format = flag(rest, "--format").ok_or("convert needs --format")?;
    let design = load_input(spec, &Collector::disabled())?;
    save_output(&design, &out, format)
}

// ---------------------------------------------------------------------------
// Placement-as-a-service commands
// ---------------------------------------------------------------------------

fn parse_num<T: std::str::FromStr>(rest: &[String], key: &str) -> Result<Option<T>, String> {
    flag(rest, key)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("{key} `{v}` is not a valid number"))
        })
        .transpose()
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let dir = flag(rest, "--dir").ok_or("serve needs --dir DIR (the durable store)")?;
    let mut cfg = rdp::serve::ServeConfig {
        dir: dir.into(),
        ..Default::default()
    };
    if let Some(addr) = flag(rest, "--addr") {
        cfg.addr = addr.into();
    }
    if let Some(v) = parse_num(rest, "--workers")? {
        cfg.workers = v;
    }
    if let Some(v) = parse_num(rest, "--max-queue")? {
        cfg.max_queue = v;
    }
    if let Some(v) = parse_num(rest, "--job-threads")? {
        cfg.job_threads = v;
    }
    if let Some(v) = parse_num(rest, "--io-timeout-ms")? {
        cfg.io_timeout_ms = v;
    }
    if let Some(v) = parse_num(rest, "--max-frame")? {
        cfg.max_frame = v;
    }
    cfg.port_file = flag(rest, "--port-file").map(PathBuf::from);
    let server = rdp::serve::Server::start(cfg).map_err(|e| e.to_string())?;
    println!(
        "rdp serve listening on {} — {}",
        server.local_addr(),
        server.recovery().summary()
    );
    // Runs until a client sends `shutdown` (graceful drain) or the
    // process is killed; a kill at any instant is recoverable.
    server.join().map_err(|e| e.to_string())
}

fn service_client(rest: &[String], cmd: &str) -> Result<(rdp::serve::Client, Vec<String>), String> {
    let addr = rest
        .first()
        .ok_or_else(|| format!("{cmd} needs a server ADDR (host:port)"))?;
    Ok((rdp::serve::Client::new(addr.clone()), rest[1..].to_vec()))
}

fn cmd_submit(rest: &[String]) -> Result<(), String> {
    let (client, rest) = service_client(rest, "submit")?;
    let input = rest
        .first()
        .ok_or("submit needs an input (suite name, bookshelf:, or lefdef:)")?
        .clone();
    let spec = rdp::serve::JobSpec {
        input,
        preset: flag(&rest, "--preset").unwrap_or("ours").to_string(),
        fast: rest.iter().any(|a| a == "--fast"),
        capture: rest.iter().any(|a| a == "--capture"),
        incremental: rest.iter().any(|a| a == "--incremental-route"),
        deadline_ms: parse_num(&rest, "--deadline-ms")?,
        max_retries: parse_num(&rest, "--retries")?.unwrap_or(0),
        max_route_iters: parse_num(&rest, "--max-route-iters")?,
        gp_max_iters: parse_num(&rest, "--gp-iters")?,
        gp_iters_per_route: parse_num(&rest, "--gp-burst")?,
        incremental_resync_every: parse_num(&rest, "--incremental-resync-every")?,
        incremental_drift_frac: parse_num(&rest, "--incremental-drift-frac")?,
        predict: rest.iter().any(|a| a == "--predict"),
        predict_drift_tol: parse_num(&rest, "--predict-drift-tol")?,
        predict_warmup: parse_num(&rest, "--predict-warmup")?,
    };
    let id = client.submit(&spec).map_err(|e| e.to_string())?;
    println!("submitted job {id}");
    if rest.iter().any(|a| a == "--wait") {
        let budget: u64 = parse_num(&rest, "--wait-ms")?.unwrap_or(600_000);
        let outcome = client.wait(id, 100, budget).map_err(|e| e.to_string())?;
        print_outcome(&outcome);
    }
    Ok(())
}

fn print_outcome(o: &rdp::serve::client::JobOutcome) {
    println!(
        "job {} done (attempt {}, {} ms consumed): HPWL {:.0} um bits {:#018x}, \
         overflow {:.4}, {} WL iters + {} routability iters, {:.2}s place",
        o.id,
        o.attempt,
        o.consumed_ms,
        o.hpwl,
        o.hpwl_bits,
        o.density_overflow,
        o.gp_iterations,
        o.route_iterations,
        o.place_seconds
    );
    for w in &o.warnings {
        println!("  warning: {w}");
    }
}

fn cmd_status(rest: &[String]) -> Result<(), String> {
    let (client, rest) = service_client(rest, "status")?;
    match rest.first().and_then(|s| s.parse::<u64>().ok()) {
        Some(id) => {
            let s = client.status(id).map_err(|e| e.to_string())?;
            print_status_line(&s);
        }
        None => {
            let all = client.status_all().map_err(|e| e.to_string())?;
            if all.is_empty() {
                println!("no jobs");
            }
            for s in &all {
                print_status_line(s);
            }
        }
    }
    Ok(())
}

fn print_status_line(s: &rdp::serve::client::JobStatus) {
    let mut line = format!(
        "job {:>4}  {:<10} attempt {}  {} ms",
        s.id,
        s.state.label(),
        s.attempt,
        s.consumed_ms
    );
    if let Some(iter) = s.route_iter {
        line.push_str(&format!("  route-iter {iter}"));
    }
    if let Some(hpwl) = s.hpwl {
        line.push_str(&format!("  HPWL {hpwl:.0}"));
    }
    if let Some((kind, detail)) = &s.error {
        line.push_str(&format!("  [{kind}] {detail}"));
    }
    println!("{line}");
}

fn cmd_cancel(rest: &[String]) -> Result<(), String> {
    let (client, rest) = service_client(rest, "cancel")?;
    let id: u64 = rest
        .first()
        .and_then(|s| s.parse().ok())
        .ok_or("cancel needs a numeric job ID")?;
    client.cancel(id).map_err(|e| e.to_string())?;
    println!("cancel requested for job {id}");
    Ok(())
}

fn cmd_fetch(rest: &[String]) -> Result<(), String> {
    let (client, rest) = service_client(rest, "fetch")?;
    let id: u64 = rest
        .first()
        .and_then(|s| s.parse().ok())
        .ok_or("fetch needs a numeric job ID")?;
    let outcome = client.result(id, true).map_err(|e| e.to_string())?;
    print_outcome(&outcome);
    Ok(())
}

fn cmd_shutdown(rest: &[String]) -> Result<(), String> {
    let (client, _) = service_client(rest, "shutdown")?;
    let drained = client.shutdown().map_err(|e| e.to_string())?;
    println!(
        "server draining: {drained} live job{} checkpointed and requeued durably",
        if drained == 1 { "" } else { "s" }
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Service telemetry: `rdp stats ADDR` and `rdp top ADDR`.
// ---------------------------------------------------------------------------

/// `HOST:PORT` vs design input disambiguation for verbs that accept
/// both (`rdp stats`). Bookshelf/LEF-DEF specs also contain colons, so
/// require the suffix after the *last* colon to parse as a port.
fn looks_like_addr(s: &str) -> bool {
    if s.starts_with("bookshelf:") || s.starts_with("lefdef:") {
        return false;
    }
    match s.rsplit_once(':') {
        Some((host, port)) => !host.is_empty() && port.parse::<u16>().is_ok(),
        None => false,
    }
}

fn cmd_service_stats(rest: &[String]) -> Result<(), String> {
    let (client, rest) = service_client(rest, "stats")?;
    let (text, summary) = client.stats().map_err(|e| e.to_string())?;
    if let Some(path) = flag(&rest, "--metrics-out") {
        std::fs::write(path, text.as_bytes()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if rest.iter().any(|a| a == "--json") {
        println!("{text}");
        return Ok(());
    }
    let v = rdp::obs::json::parse(&text).map_err(|e| format!("stats response: {e}"))?;
    print_service_stats(&v, &summary);
    Ok(())
}

fn print_service_stats(v: &rdp::obs::json::Value, summary: &rdp::serve::StatsSummary) {
    use rdp::obs::json::Value;
    let gu64 = |obj: &Value, key: &str| -> u64 {
        obj.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64
    };
    let uptime_ms = gu64(v, "uptime_ms");
    let draining = matches!(v.get("draining"), Some(Value::Bool(true)));
    println!(
        "server {} (protocol v{})  uptime {:.1}s{}",
        v.get("server_version")
            .and_then(Value::as_str)
            .unwrap_or("?"),
        gu64(v, "protocol_version"),
        uptime_ms as f64 / 1e3,
        if draining { "  DRAINING" } else { "" }
    );
    let service = v.get("service");
    if let Some(gauges) = service.and_then(|s| s.get("gauges")) {
        println!(
            "gauges   queue {}  running {}  connections {}",
            gu64(gauges, "queue_depth"),
            gu64(gauges, "running_jobs"),
            gu64(gauges, "connections"),
        );
    }
    if let Some(counters) = service.and_then(|s| s.get("counters")) {
        println!(
            "jobs     submits {}  completions {}  failures {}  cancellations {}  \
             retries {}  requeues {}  quarantined {}",
            gu64(counters, "submits"),
            gu64(counters, "completions"),
            gu64(counters, "failures"),
            gu64(counters, "cancellations"),
            gu64(counters, "retries"),
            gu64(counters, "requeues"),
            gu64(counters, "quarantined"),
        );
        println!(
            "rejects  frame-limit {}  slots {}  predictor fallbacks {}",
            gu64(counters, "frame_limit_rejections"),
            gu64(counters, "slot_rejections"),
            gu64(counters, "predict_fallbacks"),
        );
    }
    if let Some(Value::Obj(hists)) = service.and_then(|s| s.get("histograms")) {
        for (name, h) in hists.iter().filter(|(n, _)| n.starts_with("op_")) {
            let count = gu64(h, "count");
            if count == 0 {
                continue;
            }
            let sum = h.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
            let max = h.get("max").and_then(Value::as_f64).unwrap_or(0.0);
            println!(
                "op       {:<14} {:>6} calls  mean {:>8.3} ms  max {:>8.3} ms",
                name.trim_start_matches("op_").trim_end_matches("_ms"),
                count,
                sum / count as f64,
                max
            );
        }
    }
    if let Some(drops) = v.get("drops") {
        let total = gu64(drops, "events") + gu64(drops, "frames");
        if total > 0 {
            println!(
                "drops    events {} (spans {}, instants {})  frames {}",
                gu64(drops, "events"),
                gu64(drops, "spans"),
                gu64(drops, "instants"),
                gu64(drops, "frames"),
            );
        }
    }
    println!(
        "totals   {} jobs tracked, {} counter increments, {} timed ops",
        summary.jobs, summary.counter_total, summary.op_observations
    );
    if let Some(Value::Arr(jobs)) = v.get("jobs") {
        for job in jobs {
            print_live_job_line(job);
        }
    }
}

fn print_live_job_line(job: &rdp::obs::json::Value) {
    use rdp::obs::json::Value;
    let mut line = format!(
        "job {:>4}  {:<10} attempt {}  {} ms",
        job.get("id").and_then(Value::as_f64).unwrap_or(0.0) as u64,
        job.get("state").and_then(Value::as_str).unwrap_or("?"),
        job.get("attempt").and_then(Value::as_f64).unwrap_or(0.0) as u64,
        job.get("consumed_ms")
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as u64,
    );
    if let Some(iter) = job.get("route_iter").and_then(Value::as_f64) {
        line.push_str(&format!("  route-iter {}", iter as u64));
    }
    // Prefer the settled result's numbers; fall back to live progress.
    for (label, keys) in [
        ("HPWL", ["hpwl", "progress_hpwl"]),
        ("overflow", ["density_overflow", "progress_overflow"]),
    ] {
        if let Some(x) = keys.iter().find_map(|k| job.get(k).and_then(Value::as_f64)) {
            if label == "HPWL" {
                line.push_str(&format!("  {label} {x:.0}"));
            } else {
                line.push_str(&format!("  {label} {x:.4}"));
            }
        }
    }
    if let Some(kind) = job.get("kind").and_then(Value::as_str) {
        line.push_str(&format!("  [{kind}]"));
    }
    println!("{line}");
}

fn cmd_top(rest: &[String]) -> Result<(), String> {
    use std::io::IsTerminal;
    let (client, rest) = service_client(rest, "top")?;
    let interval_ms: u64 = parse_num(&rest, "--interval-ms")?.unwrap_or(1_000);
    let tty = std::io::stdout().is_terminal();
    // On a TTY, refresh forever by default; piped output gets one frame
    // unless --iters asks for more, so scripts never hang on `rdp top`.
    let iters: u64 = parse_num(&rest, "--iters")?.unwrap_or(if tty { 0 } else { 1 });
    let info = client.ping_info().map_err(|e| e.to_string())?;
    match info.protocol_version {
        Some(v) if v == rdp::serve::PROTOCOL_VERSION => {}
        got => {
            return Err(format!(
                "protocol version mismatch: server {} speaks {}, this client speaks v{} — \
                 refusing to render (use a matching rdp build)",
                info.server_version
                    .as_deref()
                    .unwrap_or("(unknown version)"),
                got.map(|v| format!("v{v}"))
                    .unwrap_or_else(|| "an unversioned protocol".into()),
                rdp::serve::PROTOCOL_VERSION
            ))
        }
    }
    let mut watch_seq = 0u64;
    let mut frame = 0u64;
    loop {
        let (text, summary) = client.stats().map_err(|e| e.to_string())?;
        let v = rdp::obs::json::parse(&text).map_err(|e| format!("stats response: {e}"))?;
        if tty {
            // Clear and home, then redraw the whole frame in place.
            print!("\x1b[2J\x1b[H");
        } else if frame > 0 {
            println!("---");
        }
        print_service_stats(&v, &summary);
        frame += 1;
        if iters != 0 && frame >= iters {
            return Ok(());
        }
        // Sleep on the server's fleet watch: wakes early on activity
        // (submit/settle), times out as a typed Busy when idle.
        let params = rdp::serve::WatchParams {
            seq: watch_seq,
            wait_ms: interval_ms,
            ..Default::default()
        };
        match client.watch(&params) {
            Ok(delta) => {
                if let Some(seq) = delta.get("seq").and_then(rdp::obs::json::Value::as_f64) {
                    watch_seq = seq as u64;
                }
            }
            Err(rdp::core::RdpError::Busy { .. }) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
}
