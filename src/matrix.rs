//! Scenario-matrix harness: the standing Table-1 invariant suite.
//!
//! Runs every [`rdp_gen::scenario_matrix`] class through the flow for the
//! three Table-1 presets (`Ours`, `Xplace-Route`, `Xplace`) plus a
//! predictor-enabled `ours+predict` column and checks, per class:
//!
//! 1. **Format round-trip** — the design survives a LEF/DEF-lite
//!    write→read→write cycle byte-identically (obstructions, pitches and
//!    tracks included).
//! 2. **Survival** — every preset completes [`run_flow`] without panic or
//!    divergence; degenerate classes may finish in degraded mode with
//!    warnings.
//! 3. **Telemetry** — a flow that executed routability iterations must
//!    have recorded congestion frames and convergence series. An empty
//!    frame buffer or series is a *named failure*, never a silent pass.
//! 4. **QoR ordering** — for gated classes, the Table-1 invariant
//!    `Ours ≤ Xplace-Route ≤ Xplace` on the DRV proxy, within the class
//!    tolerance.
//!
//! The harness is a library so the CLI (`rdp matrix`), `scripts/ci.sh`
//! and the integration tests share one implementation.
//!
//! [`run_flow`]: rdp_core::run_flow

use std::fmt;
use std::path::PathBuf;

use rdp_core::{run_flow_with, FlowControl, PlacerPreset, PredictConfig, RoutabilityConfig};
use rdp_gen::{scenario_matrix, Scale, Scenario};
use rdp_obs::Collector;
use rdp_parse::{read_lefdef, write_lefdef};

/// Configuration of a matrix run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Instance scale (`Small` = CI fast tier, `Full` = nightly).
    pub scale: Scale,
    /// Restrict to these scenario names (`None` = the whole matrix).
    pub classes: Option<Vec<String>>,
    /// Write one run directory per (scenario, preset) under this root,
    /// compatible with `rdp report` / `rdp diff`.
    pub run_dir: Option<PathBuf>,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            scale: Scale::Small,
            classes: None,
            run_dir: None,
        }
    }
}

/// A named matrix failure. Every failure mode carries the scenario name:
/// the gate never fails anonymously and never passes silently.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixFailure {
    /// LEF/DEF round-trip was not byte-identical or did not parse.
    RoundTrip {
        /// Scenario name.
        scenario: String,
        /// What went wrong.
        detail: String,
    },
    /// The flow returned an error for a preset.
    FlowError {
        /// Scenario name.
        scenario: String,
        /// Preset that failed.
        preset: &'static str,
        /// The flow error.
        detail: String,
    },
    /// Routability iterations ran but no congestion frame was recorded.
    EmptyCongestionFrames {
        /// Scenario name.
        scenario: String,
        /// Preset whose telemetry is empty.
        preset: &'static str,
    },
    /// Routability iterations ran but a convergence series is empty.
    EmptySeries {
        /// Scenario name.
        scenario: String,
        /// Preset whose telemetry is empty.
        preset: &'static str,
        /// The missing series.
        series: &'static str,
    },
    /// The predict column ran a multi-iteration flow but never
    /// substituted a predicted congestion map — the fast-path is dead.
    PredictorIdle {
        /// Scenario name.
        scenario: String,
    },
    /// The Table-1 DRV ordering was violated.
    OrderingViolation {
        /// Scenario name.
        scenario: String,
        /// The preset expected to be at most as bad.
        better: &'static str,
        /// The preset expected to be at least as bad.
        worse: &'static str,
        /// DRV proxy of `better`.
        better_drvs: f64,
        /// DRV proxy of `worse`.
        worse_drvs: f64,
        /// Relative tolerance that was applied.
        tolerance: f64,
    },
}

impl MatrixFailure {
    /// The scenario this failure belongs to.
    pub fn scenario(&self) -> &str {
        match self {
            MatrixFailure::RoundTrip { scenario, .. }
            | MatrixFailure::FlowError { scenario, .. }
            | MatrixFailure::EmptyCongestionFrames { scenario, .. }
            | MatrixFailure::EmptySeries { scenario, .. }
            | MatrixFailure::PredictorIdle { scenario }
            | MatrixFailure::OrderingViolation { scenario, .. } => scenario,
        }
    }
}

impl fmt::Display for MatrixFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixFailure::RoundTrip { scenario, detail } => {
                write!(f, "[{scenario}] LEF/DEF round-trip failed: {detail}")
            }
            MatrixFailure::FlowError {
                scenario,
                preset,
                detail,
            } => write!(f, "[{scenario}] flow failed under {preset}: {detail}"),
            MatrixFailure::EmptyCongestionFrames { scenario, preset } => write!(
                f,
                "[{scenario}] {preset}: routability iterations ran but no congestion \
                 frame was recorded"
            ),
            MatrixFailure::EmptySeries {
                scenario,
                preset,
                series,
            } => write!(
                f,
                "[{scenario}] {preset}: routability iterations ran but series `{series}` \
                 is empty"
            ),
            MatrixFailure::PredictorIdle { scenario } => write!(
                f,
                "[{scenario}] ours+predict: the flow ran multiple routability iterations \
                 but never substituted a predicted congestion map"
            ),
            MatrixFailure::OrderingViolation {
                scenario,
                better,
                worse,
                better_drvs,
                worse_drvs,
                tolerance,
            } => write!(
                f,
                "[{scenario}] DRV ordering violated: {better} = {better_drvs:.1} > \
                 {worse} = {worse_drvs:.1} (tolerance {:.0} %)",
                tolerance * 100.0
            ),
        }
    }
}

/// Outcome of one preset on one scenario.
#[derive(Debug, Clone)]
pub struct PresetOutcome {
    /// The preset.
    pub preset: PlacerPreset,
    /// Column label: the preset name, or `ours+predict` for the
    /// predictor-enabled `Ours` variant.
    pub label: &'static str,
    /// DRV proxy total from the fine-grid evaluation.
    pub drvs: f64,
    /// Final HPWL.
    pub hpwl: f64,
    /// Routability iterations executed.
    pub route_iterations: usize,
    /// Iterations that used a predicted congestion map in place of the
    /// router (always 0 for the non-predict columns).
    pub predicted_iterations: usize,
    /// Degraded-mode warnings the flow emitted.
    pub warnings: usize,
}

/// Outcome of one scenario row.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Whether the ordering gate applied.
    pub ordering_gated: bool,
    /// Per-column results, in `[Xplace, XplaceRoute, Ours, Ours+Predict]`
    /// order (a column that errored is absent).
    pub presets: Vec<PresetOutcome>,
    /// Failures attributed to this scenario.
    pub failures: Vec<MatrixFailure>,
}

/// Result of [`run_matrix`].
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Per-scenario outcomes, in matrix order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl MatrixReport {
    /// All failures across the matrix, in scenario order.
    pub fn failures(&self) -> impl Iterator<Item = &MatrixFailure> {
        self.outcomes.iter().flat_map(|o| o.failures.iter())
    }

    /// Whether every gate passed.
    pub fn passed(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Plain-text summary table (one row per scenario × preset).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<14} {:>9} {:>12} {:>6} {:>5}  gate\n",
            "scenario", "preset", "drvs", "hpwl", "iters", "warn"
        ));
        for o in &self.outcomes {
            for p in &o.presets {
                out.push_str(&format!(
                    "{:<18} {:<14} {:>9.1} {:>12.0} {:>6} {:>5}  {}\n",
                    o.name,
                    p.label,
                    p.drvs,
                    p.hpwl,
                    p.route_iterations,
                    p.warnings,
                    if o.ordering_gated {
                        "ordering"
                    } else {
                        "survival"
                    }
                ));
            }
            for fail in &o.failures {
                out.push_str(&format!("  FAIL {fail}\n"));
            }
        }
        out
    }
}

fn preset_name(p: PlacerPreset) -> &'static str {
    match p {
        PlacerPreset::Xplace => "xplace",
        PlacerPreset::XplaceRoute => "xplace-route",
        PlacerPreset::Ours => "ours",
    }
}

/// Runs the scenario matrix and collects every named failure.
///
/// # Errors
///
/// Returns `Err` only for harness-level problems (an unknown class name
/// in the filter, or an unwritable run directory) — scenario failures are
/// reported in the [`MatrixReport`], not as `Err`.
pub fn run_matrix(cfg: &MatrixConfig) -> Result<MatrixReport, String> {
    let all = scenario_matrix();
    let selected: Vec<Scenario> = match &cfg.classes {
        None => all,
        Some(filter) => {
            let mut picked = Vec::new();
            for name in filter {
                let s = all
                    .iter()
                    .find(|s| s.name == name)
                    .ok_or_else(|| format!("unknown scenario class `{name}`"))?;
                picked.push(s.clone());
            }
            picked
        }
    };

    let mut outcomes = Vec::with_capacity(selected.len());
    for scenario in &selected {
        outcomes.push(run_scenario(scenario, cfg)?);
    }
    Ok(MatrixReport { outcomes })
}

fn run_scenario(scenario: &Scenario, cfg: &MatrixConfig) -> Result<ScenarioOutcome, String> {
    let mut failures = Vec::new();
    let design = scenario.build(cfg.scale);

    // Gate 1: LEF/DEF-lite round-trip identity.
    let files = write_lefdef(&design);
    match read_lefdef(&files) {
        Ok(back) => {
            let again = write_lefdef(&back);
            if again != files {
                failures.push(MatrixFailure::RoundTrip {
                    scenario: scenario.name.to_string(),
                    detail: "re-emitted LEF/DEF differs from the original emission".to_string(),
                });
            }
        }
        Err(e) => failures.push(MatrixFailure::RoundTrip {
            scenario: scenario.name.to_string(),
            detail: e.to_string(),
        }),
    }

    // Gates 2–3: the four columns (three presets + the predictor-enabled
    // `Ours` variant), with telemetry checks.
    let mut presets = Vec::new();
    for (preset, predict) in [
        (PlacerPreset::Xplace, false),
        (PlacerPreset::XplaceRoute, false),
        (PlacerPreset::Ours, false),
        (PlacerPreset::Ours, true),
    ] {
        let pname = if predict {
            "ours+predict"
        } else {
            preset_name(preset)
        };
        let mut d = design.clone();
        let obs = Collector::enabled();
        let mut flow_cfg = match cfg.scale {
            Scale::Small => RoutabilityConfig::preset_fast(preset),
            Scale::Full => RoutabilityConfig::preset(preset),
        };
        if predict {
            // Warm up on a single real route so the fast tier's short
            // loop still exercises at least one substituted iteration.
            flow_cfg.predict = Some(PredictConfig {
                warmup_routes: 1,
                ..PredictConfig::default()
            });
        }
        let mut ctrl = FlowControl::default();
        ctrl.obs = obs.clone();
        let flow = match run_flow_with(&mut d, &flow_cfg, ctrl) {
            Ok(flow) => flow,
            Err(e) => {
                failures.push(MatrixFailure::FlowError {
                    scenario: scenario.name.to_string(),
                    preset: pname,
                    detail: e.to_string(),
                });
                continue;
            }
        };
        let eval = rdp_drc::evaluate(&d, &rdp_drc::EvalConfig::default());
        obs.gauge_set("eval_drvs", eval.drvs);
        obs.gauge_set("eval_drwl", eval.drwl);
        obs.gauge_set("eval_drvias", eval.drvias);

        // Telemetry must exist whenever the routability loop ran: an
        // empty frame buffer or series here is a recording bug upstream,
        // and silently accepting it would turn the matrix into a no-op.
        if flow.route_iterations > 0 {
            if obs.frame_count() == 0 {
                failures.push(MatrixFailure::EmptyCongestionFrames {
                    scenario: scenario.name.to_string(),
                    preset: pname,
                });
            }
            let model = rdp_report::RunModel::from_collector(&obs).map_err(|e| e.to_string())?;
            for series in ["hpwl", "route_overflow", "max_congestion"] {
                if model.series.get(series).is_none_or(|s| s.is_empty()) {
                    failures.push(MatrixFailure::EmptySeries {
                        scenario: scenario.name.to_string(),
                        preset: pname,
                        series,
                    });
                }
            }
            // The predict column must actually exercise the fast-path
            // once the loop is long enough for the warmup to complete.
            if predict && flow.route_iterations >= 3 && flow.predicted_iterations == 0 {
                failures.push(MatrixFailure::PredictorIdle {
                    scenario: scenario.name.to_string(),
                });
            }
        }

        if let Some(root) = &cfg.run_dir {
            let dir = root.join(scenario.name).join(pname);
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            std::fs::write(dir.join("trace.jsonl"), rdp_obs::export_jsonl(&obs))
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            std::fs::write(dir.join("metrics.json"), rdp_obs::export_metrics_json(&obs))
                .map_err(|e| format!("{}: {e}", dir.display()))?;
        }

        presets.push(PresetOutcome {
            preset,
            label: pname,
            drvs: eval.drvs,
            hpwl: flow.hpwl,
            route_iterations: flow.route_iterations,
            predicted_iterations: flow.predicted_iterations,
            warnings: flow.warnings.len(),
        });
    }

    // Gate 4: Table-1 DRV ordering, within the class tolerance. The
    // predict column must hold the same bound the full `Ours` flow does:
    // substituting learned congestion maps may not cost routability.
    if scenario.ordering_gated {
        let drvs_of = |label: &str| presets.iter().find(|o| o.label == label).map(|o| o.drvs);
        let pairs = [
            ("ours", "xplace-route"),
            ("ours+predict", "xplace-route"),
            ("xplace-route", "xplace"),
        ];
        for (better, worse) in pairs {
            if let (Some(b), Some(w)) = (drvs_of(better), drvs_of(worse)) {
                if b > w * (1.0 + scenario.tolerance) + scenario.abs_slack {
                    failures.push(MatrixFailure::OrderingViolation {
                        scenario: scenario.name.to_string(),
                        better,
                        worse,
                        better_drvs: b,
                        worse_drvs: w,
                        tolerance: scenario.tolerance,
                    });
                }
            }
        }
    }

    Ok(ScenarioOutcome {
        name: scenario.name,
        ordering_gated: scenario.ordering_gated,
        presets,
        failures,
    })
}
