//! SVG rendering of placements and congestion maps.
//!
//! Produces self-contained SVG documents for design inspection: die
//! outline, rows, macros, standard cells, PG rails, and an optional
//! congestion heat overlay. Used by the `rdp render` CLI command and
//! handy in notebooks/docs.

use rdp_db::{CellKind, Design, Map2d};

/// Rendering options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Output image width in pixels (height follows the die aspect).
    pub width_px: f64,
    /// Congestion map (G-cell grid) drawn as a translucent heat overlay.
    pub congestion: Option<Map2d<f64>>,
    /// Draw PG rails.
    pub show_rails: bool,
    /// Draw placement rows as faint horizontal guides.
    pub show_rows: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 900.0,
            congestion: None,
            show_rails: true,
            show_rows: false,
        }
    }
}

/// Renders the design to an SVG string.
///
/// ```
/// use rdp::gen::{generate, GenParams};
/// use rdp::render::{render_svg, RenderOptions};
///
/// let design = generate("svg", &GenParams { num_cells: 50, ..GenParams::default() });
/// let svg = render_svg(&design, &RenderOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("</svg>"));
/// ```
pub fn render_svg(design: &Design, opts: &RenderOptions) -> String {
    let die = design.die();
    let scale = opts.width_px / die.width();
    let h_px = die.height() * scale;
    // SVG y grows downward; flip so the die's y-up convention is kept.
    let tx = |x: f64| (x - die.lo.x) * scale;
    let ty = |y: f64| h_px - (y - die.lo.y) * scale;

    let mut svg = String::with_capacity(1 << 16);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.0} {:.0}\">\n",
        opts.width_px, h_px, opts.width_px, h_px
    ));
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#fcfcf8\" stroke=\"#333\"/>\n",
        opts.width_px, h_px
    ));

    if opts.show_rows {
        for r in design.rows() {
            svg.push_str(&format!(
                "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#eee\" stroke-width=\"0.5\"/>\n",
                tx(r.x0),
                ty(r.y),
                tx(r.x1),
                ty(r.y)
            ));
        }
    }

    // Congestion heat overlay (under the cells).
    if let Some(cmap) = &opts.congestion {
        let grid = design.gcell_grid();
        if cmap.nx() == grid.nx() && cmap.ny() == grid.ny() {
            let hi = cmap.max().max(1e-9);
            for (ix, iy, &c) in cmap.iter_coords() {
                if c <= 0.0 {
                    continue;
                }
                let r = grid.bin_rect(ix, iy);
                let alpha = (c / hi * 0.6).min(0.6);
                svg.push_str(&format!(
                    "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                     fill=\"#e03020\" fill-opacity=\"{:.2}\"/>\n",
                    tx(r.lo.x),
                    ty(r.hi.y),
                    r.width() * scale,
                    r.height() * scale,
                    alpha
                ));
            }
        }
    }

    // Cells.
    for (i, cell) in design.cells().iter().enumerate() {
        if cell.kind == CellKind::Terminal {
            continue;
        }
        let r = design.cell_rect(rdp_db::CellId::from_index(i));
        let (fill, stroke) = match cell.kind {
            CellKind::Macro => ("#5b7aa9", "#2d4a75"),
            _ => ("#9fc2e8", "#6b90b8"),
        };
        svg.push_str(&format!(
            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
             fill=\"{fill}\" fill-opacity=\"0.8\" stroke=\"{stroke}\" stroke-width=\"0.3\"/>\n",
            tx(r.lo.x),
            ty(r.hi.y),
            r.width() * scale,
            r.height() * scale
        ));
    }

    // PG rails.
    if opts.show_rails {
        for rail in design.rails() {
            let r = rail.rect;
            svg.push_str(&format!(
                "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"#8b4bb8\" fill-opacity=\"0.55\"/>\n",
                tx(r.lo.x),
                ty(r.hi.y),
                (r.width() * scale).max(0.8),
                (r.height() * scale).max(0.8)
            ));
        }
    }

    // Terminals as dots on the boundary.
    for (i, cell) in design.cells().iter().enumerate() {
        if cell.kind != CellKind::Terminal {
            continue;
        }
        let p = design.positions()[i];
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#333\"/>\n",
            tx(p.x),
            ty(p.y)
        ));
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn design() -> Design {
        generate(
            "svg",
            &GenParams {
                num_cells: 80,
                num_macros: 1,
                macro_fraction: 0.1,
                utilization: 0.5,
                rail_pitch: 1.0,
                io_terminals: 4,
                seed: 4,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn svg_contains_all_layers() {
        let d = design();
        let svg = render_svg(&d, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // macro fill color present
        assert!(svg.contains("#5b7aa9"));
        // std cell fill
        assert!(svg.contains("#9fc2e8"));
        // rails
        assert!(svg.contains("#8b4bb8"));
        // terminals
        assert!(svg.contains("<circle"));
        // balanced tags: every <rect is self-closed
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn congestion_overlay_rendered_when_dims_match() {
        let d = design();
        let route = rdp_route::GlobalRouter::default().route(&d);
        let opts = RenderOptions {
            congestion: Some(route.congestion.clone()),
            ..RenderOptions::default()
        };
        let svg = render_svg(&d, &opts);
        // The overlay color appears iff some congestion exists.
        if route.congestion.max() > 0.0 {
            assert!(svg.contains("#e03020"));
        }
    }

    #[test]
    fn rails_can_be_hidden() {
        let d = design();
        let svg = render_svg(
            &d,
            &RenderOptions {
                show_rails: false,
                ..RenderOptions::default()
            },
        );
        assert!(!svg.contains("#8b4bb8"));
    }

    #[test]
    fn element_count_scales_with_cells() {
        let d = design();
        let svg = render_svg(&d, &RenderOptions::default());
        let rects = svg.matches("<rect").count();
        // background + 80 std cells + 1 macro + rails
        assert!(rects > 80, "{rects}");
    }
}
