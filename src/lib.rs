//! # rdp — routability-driven global placement
//!
//! A from-scratch Rust reproduction of *“Differentiable Net-Moving and
//! Local Congestion Mitigation for Routability-Driven Global Placement”*
//! (DAC 2025), including every substrate the paper depends on:
//!
//! | crate | contents |
//! |---|---|
//! | [`db`] | design database: netlist, floorplan, grids, maps |
//! | [`gen`] | synthetic ISPD-2015-like benchmark suite |
//! | [`parse`] | Bookshelf-lite and LEF/DEF-lite readers/writers |
//! | [`par`] | zero-dependency deterministic scoped thread pool |
//! | [`poisson`] | FFT/DCT spectral Poisson solver (ePlace numerics) |
//! | [`route`] | congestion-aware L/Z pattern global router + RUDY |
//! | [`core`] | the paper: electrostatic GP, net moving (DC), momentum inflation (MCI), pin-accessibility density (DPA) |
//! | [`legal`] | Tetris + Abacus legalization, detailed placement |
//! | [`drc`] | fine-grid evaluation routing and the DRV proxy |
//!
//! The most common flow is one call:
//!
//! ```no_run
//! use rdp::{place_and_evaluate, PlacerPreset};
//!
//! let mut design = rdp::gen::generate_named("fft_1").unwrap();
//! let report = place_and_evaluate(
//!     &mut design,
//!     &rdp::core::RoutabilityConfig::preset(PlacerPreset::Ours),
//!     &rdp::drc::EvalConfig::default(),
//! )
//! .expect("placement diverged beyond recovery");
//! println!(
//!     "DRWL {:.0} um, vias {:.0}, DRVs {:.0}",
//!     report.eval.drwl, report.eval.drvias, report.eval.drvs
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod render;

pub use rdp_core as core;
pub use rdp_db as db;
pub use rdp_drc as drc;
pub use rdp_gen as gen;
pub use rdp_legal as legal;
pub use rdp_obs as obs;
pub use rdp_par as par;
pub use rdp_parse as parse;
pub use rdp_poisson as poisson;
pub use rdp_report as report;
pub use rdp_route as route;
pub use rdp_serve as serve;

pub use rdp_core::{PlacerPreset, RoutabilityConfig};
pub use rdp_db::Design;
pub use rdp_drc::{EvalConfig, EvalReport};

/// Combined result of the end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Global-placement flow report (Fig. 2 stages).
    pub flow: rdp_core::FlowReport,
    /// Legalization statistics.
    pub legal: rdp_legal::LegalizeReport,
    /// HPWL improvement from detailed placement.
    pub detailed_gain: f64,
    /// Post-routing evaluation (the Table I columns).
    pub eval: EvalReport,
}

/// Runs the complete pipeline the paper evaluates with: global placement
/// (Fig. 2) → legalization → detailed placement → fine-grid routing and
/// the DRV proxy.
///
/// When the flow ran with cell inflation, legalization and detailed
/// placement use the inflated **virtual widths** so the congestion-driven
/// spacing survives (the routability-driven LG/DP of the paper's Fig. 2).
///
/// Numerical blow-ups inside the flow roll back and re-tune
/// automatically; an `Err` means the run diverged beyond the health
/// policy's rollback budget (or the configuration was invalid) and the
/// design was left unplaced-by-this-call.
pub fn place_and_evaluate(
    design: &mut Design,
    cfg: &RoutabilityConfig,
    eval_cfg: &EvalConfig,
) -> Result<PipelineReport, rdp_core::RdpError> {
    place_and_evaluate_obs(design, cfg, eval_cfg, &rdp_obs::Collector::disabled())
}

/// [`place_and_evaluate`] with every pipeline stage traced on `obs`: the
/// flow's spans/series/warnings (via [`core::FlowControl`]), a
/// `"legalize"` and `"detailed_place"` span, and a `"drc_eval"` span
/// around the fine-grid evaluation. The collector only records;
/// placement results are bitwise identical with tracing on or off.
pub fn place_and_evaluate_obs(
    design: &mut Design,
    cfg: &RoutabilityConfig,
    eval_cfg: &EvalConfig,
    obs: &rdp_obs::Collector,
) -> Result<PipelineReport, rdp_core::RdpError> {
    let mut ctrl = rdp_core::FlowControl::default();
    ctrl.obs = obs.clone();
    let flow = rdp_core::run_flow_with(design, cfg, ctrl)?;
    let virtual_widths = flow.inflation_ratios.as_ref().map(|ratios| {
        design
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| c.w * ratios[i].max(1.0).sqrt())
            .collect::<Vec<f64>>()
    });
    let (legal, detailed_gain) = match &virtual_widths {
        Some(w) => (
            rdp_legal::legalize_virtual_obs(design, &rdp_legal::LegalizeConfig::default(), w, obs),
            rdp_legal::detailed_place_virtual_obs(
                design,
                &rdp_legal::DetailedConfig::default(),
                w,
                obs,
            ),
        ),
        None => (
            rdp_legal::legalize_obs(design, &rdp_legal::LegalizeConfig::default(), obs),
            rdp_legal::detailed_place_obs(design, &rdp_legal::DetailedConfig::default(), obs),
        ),
    };
    let eval = {
        let _span = obs.span("drc_eval", "eval");
        rdp_drc::evaluate(design, eval_cfg)
    };
    if obs.is_enabled() {
        obs.gauge_set("eval_drwl", eval.drwl);
        obs.gauge_set("eval_drvias", eval.drvias);
        obs.gauge_set("eval_drvs", eval.drvs);
    }
    Ok(PipelineReport {
        flow,
        legal,
        detailed_gain,
        eval,
    })
}
