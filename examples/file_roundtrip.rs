//! Writes a generated design to Bookshelf-lite and LEF/DEF-lite, reads
//! both back, and verifies the round trip — the on-ramp for loading real
//! benchmark data into the flow.
//!
//! ```sh
//! cargo run --release --example file_roundtrip
//! ```

use rdp::parse::{load_bookshelf, read_lefdef, save_bookshelf, write_lefdef};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = rdp::gen::generate(
        "roundtrip",
        &rdp::gen::GenParams {
            num_cells: 800,
            num_macros: 3,
            macro_fraction: 0.18,
            utilization: 0.6,
            rail_pitch: 1.0,
            seed: 9,
            ..rdp::gen::GenParams::default()
        },
    );
    println!("{}", rdp::db::DesignStats::of(&design));

    // Bookshelf-lite to disk and back.
    let dir = std::env::temp_dir().join("rdp_roundtrip");
    save_bookshelf(&design, &dir, "roundtrip")?;
    println!("\nwrote Bookshelf bundle to {}", dir.display());
    let from_bookshelf = load_bookshelf(&dir, "roundtrip")?;
    assert_eq!(from_bookshelf.num_cells(), design.num_cells());
    assert!((from_bookshelf.hpwl() - design.hpwl()).abs() < 1e-6);
    println!(
        "bookshelf round trip ✓ (HPWL {:.1} um preserved)",
        design.hpwl()
    );

    // LEF/DEF-lite in memory.
    let lefdef = write_lefdef(&design);
    let from_def = read_lefdef(&lefdef)?;
    assert_eq!(from_def.num_nets(), design.num_nets());
    let rel = (from_def.hpwl() - design.hpwl()).abs() / design.hpwl();
    assert!(rel < 1e-3, "HPWL drift {rel}");
    println!(
        "lef/def round trip ✓ ({} LEF bytes, {} DEF bytes, HPWL drift {:.2e})",
        lefdef.lef.len(),
        lefdef.def.len(),
        rel
    );

    // A parsed design drops straight into the placer.
    let mut placed = from_def;
    let stats = rdp::core::GlobalPlacer::default()
        .place(&mut placed)
        .expect("placement diverged");
    println!(
        "\nplaced the parsed design: {} iters, HPWL {:.0} um, overflow {:.3}",
        stats.iterations, stats.hpwl, stats.overflow
    );
    Ok(())
}
