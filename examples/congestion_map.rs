//! Visualizes routing congestion before and after the routability-driven
//! flow as ASCII heat maps (the Fig. 1 phenomenon: both local congestion
//! from cell clusters and global congestion from net bundles).
//!
//! ```sh
//! cargo run --release --example congestion_map
//! ```

use rdp::core::{run_flow, PlacerPreset, RoutabilityConfig};
use rdp::route::GlobalRouter;

fn main() {
    let mut design = rdp::gen::generate(
        "congestion-demo",
        &rdp::gen::GenParams {
            num_cells: 3000,
            num_macros: 4,
            macro_fraction: 0.2,
            utilization: 0.7,
            congestion_margin: 0.55,
            rail_pitch: 1.0,
            seed: 7,
            ..rdp::gen::GenParams::default()
        },
    );

    let router = GlobalRouter::default();

    // Wirelength-driven placement only.
    run_flow(
        &mut design,
        &RoutabilityConfig::preset(PlacerPreset::Xplace),
    )
    .expect("wirelength placement diverged");
    // Anchor the routing capacity on this placement (as the experiment
    // harness does): 12% of G-cells are left over capacity, so the
    // congestion below is real and the routability flow has work to do.
    let spec = rdp::gen::calibrate_routing(&design, 0.88);
    design.set_routing(spec);
    let before = router.route(&design);
    println!("== congestion after wirelength-driven placement ==");
    println!(
        "max {:.2}, overflowed G-cells {}, total overflow {:.0}",
        before.max_congestion(),
        before.maps.overflowed_gcells(),
        before.maps.total_overflow()
    );
    println!("{}", before.congestion.ascii_heatmap(48));

    // Continue with the routability-driven flow.
    let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    cfg.gp.center_init = false; // keep the wirelength placement as start
    run_flow(&mut design, &cfg).expect("routability flow diverged");
    let after = router.route(&design);
    println!("== congestion after the routability-driven flow (Ours) ==");
    println!(
        "max {:.2}, overflowed G-cells {}, total overflow {:.0}",
        after.max_congestion(),
        after.maps.overflowed_gcells(),
        after.maps.total_overflow()
    );
    println!("{}", after.congestion.ascii_heatmap(48));

    println!(
        "overflow change: {:.0} → {:.0}",
        before.maps.total_overflow(),
        after.maps.total_overflow()
    );
}
