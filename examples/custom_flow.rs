//! Assembling a custom routability flow: hand-tuned configuration,
//! per-iteration log inspection, and hotspot diagnostics — the APIs a
//! downstream placer project would build on.
//!
//! ```sh
//! cargo run --release --example custom_flow
//! ```

use rdp::core::{
    run_flow, DpaMode, InflationPolicy, NetMoveConfig, PlacerConfig, RoutabilityConfig,
};
use rdp::route::{GlobalRouter, RouterConfig};

fn main() {
    let mut design = rdp::gen::generate(
        "custom",
        &rdp::gen::GenParams {
            num_cells: 1500,
            num_macros: 3,
            macro_fraction: 0.18,
            utilization: 0.6,
            congestion_margin: 0.8,
            rail_pitch: 1.0,
            seed: 123,
            ..rdp::gen::GenParams::default()
        },
    );

    // A custom configuration: gentler inflation, more Z-candidates in the
    // congestion estimator, a stricter stop rule.
    let cfg = RoutabilityConfig {
        gp: PlacerConfig {
            target_density: 0.85,
            stop_overflow: 0.06,
            ..PlacerConfig::default()
        },
        router: RouterConfig {
            z_candidates: 8,
            passes: 2,
            ..RouterConfig::default()
        },
        inflation: InflationPolicy::Momentum { alpha: 0.3 },
        enable_dc: true,
        netmove: NetMoveConfig {
            multi_pin_threshold: 0.5,
            ..NetMoveConfig::default()
        },
        dpa: Some(DpaMode::Dynamic),
        max_route_iters: 8,
        gp_iters_per_route: 20,
        stop_patience: 3,
        ..RoutabilityConfig::default()
    };

    let report = run_flow(&mut design, &cfg).expect("flow diverged beyond recovery");
    println!(
        "flow finished: {} + {} iterations, HPWL {:.0} um, {:.2}s",
        report.gp_iterations, report.route_iterations, report.hpwl, report.place_seconds
    );
    println!("\nper-iteration congestion objective:");
    for l in &report.log {
        println!(
            "  iter {:>2}: overflow {:>8.1}, C(x,y) {:>10.2}, λ₂ {:.4}, {} virtual cells",
            l.iter, l.overflow, l.c_penalty, l.lambda2, l.virtual_cells
        );
    }

    // Legalize (preserving inflation spacing) and diagnose what remains.
    if let Some(ratios) = &report.inflation_ratios {
        let widths: Vec<f64> = design
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| c.w * ratios[i].max(1.0).sqrt())
            .collect();
        rdp::legal::legalize_virtual(&mut design, &rdp::legal::LegalizeConfig::default(), &widths);
    }

    let route = GlobalRouter::default().route(&design);
    let grid = design.gcell_grid();
    let spots = rdp::drc::hotspots(&design, &route, &grid, 5);
    println!("\ntop remaining hotspots:");
    if spots.is_empty() {
        println!("  none — the placement routes within capacity");
    }
    for s in &spots {
        println!(
            "  G-cell {:?} at {}: overflow {:.1} tracks, util {:.2}, {} cells, {} pins → {}",
            s.gcell,
            s.region.center(),
            s.overflow,
            s.utilization,
            s.cells,
            s.pins,
            rdp::drc::classify(s)
        );
    }
    if let Some(c) = rdp::drc::overflow_centroid(&route, &grid) {
        println!("overflow centroid: {c}");
    }
}
