//! Table I in miniature: run the three placer presets (Xplace,
//! Xplace-Route, Ours) on one congested design and compare DRWL, vias,
//! and the DRV proxy.
//!
//! ```sh
//! cargo run --release --example compare_placers [design_name]
//! ```

use rdp::{place_and_evaluate, PlacerPreset, RoutabilityConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft_b".into());
    let presets = [
        ("Xplace", PlacerPreset::Xplace),
        ("Xplace-Route", PlacerPreset::XplaceRoute),
        ("Ours", PlacerPreset::Ours),
    ];

    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "placer", "DRWL/um", "#DRVias", "#DRVs", "PT/s", "RT/s"
    );
    for (label, preset) in presets {
        let mut design = rdp::gen::generate_named(&name)
            .unwrap_or_else(|| panic!("unknown design `{name}` — see rdp::gen::ispd2015_suite()"));
        let report = place_and_evaluate(
            &mut design,
            &RoutabilityConfig::preset(preset),
            &rdp::drc::EvalConfig::default(),
        )
        .expect("placement diverged beyond recovery");
        println!(
            "{:<14} {:>12.0} {:>10.0} {:>10.0} {:>8.2} {:>8.2}",
            label,
            report.eval.drwl,
            report.eval.drvias,
            report.eval.drvs,
            report.flow.place_seconds,
            report.eval.route_seconds
        );
    }
    println!("\n(design `{name}`; see crates/bench table1 for the full 20-design sweep)");
}
