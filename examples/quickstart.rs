//! Quickstart: generate a small design, run the paper's full
//! routability-driven flow, and print the evaluation metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rdp::{place_and_evaluate, PlacerPreset, RoutabilityConfig};

fn main() {
    // A small congested design from the synthetic suite generator.
    let mut design = rdp::gen::generate(
        "quickstart",
        &rdp::gen::GenParams {
            num_cells: 2000,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.65,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 42,
            ..rdp::gen::GenParams::default()
        },
    );
    println!("{}", rdp::db::DesignStats::of(&design));

    let report = place_and_evaluate(
        &mut design,
        &RoutabilityConfig::preset(PlacerPreset::Ours),
        &rdp::drc::EvalConfig::default(),
    )
    .expect("placement diverged beyond recovery");

    println!();
    println!(
        "global placement: {} WL-driven iters + {} routability iters in {:.2}s",
        report.flow.gp_iterations, report.flow.route_iterations, report.flow.place_seconds
    );
    println!(
        "legalization: max displacement {:.2} um, avg {:.2} um, {} failed",
        report.legal.max_displacement, report.legal.avg_displacement, report.legal.failed
    );
    println!(
        "detailed placement improved HPWL by {:.0} um",
        report.detailed_gain
    );
    println!();
    println!("evaluation (Innovus-proxy):");
    println!("  DRWL    {:>12.0} um", report.eval.drwl);
    println!("  #DRVias {:>12.0}", report.eval.drvias);
    println!(
        "  #DRVs   {:>12.0}  (overflow {:.0}, pin access {:.0}, rail {:.0})",
        report.eval.drvs,
        report.eval.drv_overflow,
        report.eval.drv_pin_access,
        report.eval.drv_rail
    );

    let legality = rdp::legal::check_legality(&design);
    assert!(
        legality.is_legal(),
        "final placement not legal: {legality:?}"
    );
    println!("\nfinal placement is legal ✓");
}
