//! Net-moving congestion gradients — Algorithms 1 and 2 of the paper.
//!
//! The electric-field force of the congestion Poisson problem is not
//! applied to cells directly. Instead:
//!
//! * **Two-pin nets** (Algorithm 1): a *virtual cell* is created at the
//!   most congested point along the pin-to-pin segment (Eqs. (6)–(8)); its
//!   field gradient is projected onto the segment normal n̂ and distributed
//!   to the two endpoint cells with the `L/(2·d_iv)` lever-arm weighting
//!   of Eq. (9), so the whole net slides sideways out of the congested
//!   region.
//! * **Multi-pin cells** (Algorithm 2): cells with more pins than the
//!   design average sitting in G-cells with congestion above 0.7 receive
//!   the raw field gradient.
//!
//! All gradients use the descent convention (`position ← position −
//! η·grad` moves cells away from congestion), matching the wirelength and
//! density terms.

use std::collections::HashSet;

use rdp_db::{Design, NetId, Point};

use crate::congestion::CongestionField;

/// Tuning knobs of the net-moving gradient computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetMoveConfig {
    /// Congestion threshold above which a multi-pin cell receives the raw
    /// field gradient (0.7 in the paper, Algorithm 2 line 11).
    pub multi_pin_threshold: f64,
    /// Lower bound on the pin-to-virtual-cell distance `d_iv` as a
    /// fraction of the G-cell extent, guarding the `L/(2·d_iv)` lever arm.
    pub min_distance_fraction: f64,
}

impl Default for NetMoveConfig {
    fn default() -> Self {
        NetMoveConfig {
            multi_pin_threshold: 0.7,
            min_distance_fraction: 0.25,
        }
    }
}

/// Output of the congestion-gradient update (Algorithm 2 over all nets).
#[derive(Debug, Clone)]
pub struct CongestionGradients {
    /// Per-cell congestion gradient `CGrad`, indexed by cell id.
    pub grad: Vec<Point>,
    /// The congestion penalty `C(x, y) = ½·Σ_{i∈V'} Aᵢψᵢ` over the set V'
    /// of virtual cells and selected multi-pin cells.
    pub penalty: f64,
    /// Number of virtual cells created.
    pub virtual_cells: usize,
    /// Number of distinct multi-pin cells that received a field gradient.
    pub multi_pin_cells: usize,
}

/// Computes `CGrad` for every cell by traversing all nets (Algorithm 2).
pub fn congestion_gradients(
    design: &Design,
    field: &CongestionField,
    cfg: &NetMoveConfig,
) -> CongestionGradients {
    let mut grad = vec![Point::default(); design.num_cells()];
    let mut penalty = 0.0;
    let mut virtual_cells = 0usize;

    // Size of "a standard cell" for the virtual cell's charge: the mean
    // movable cell area.
    let (mut area_sum, mut n_mov) = (0.0, 0usize);
    for c in design.movable_cells() {
        area_sum += design.cell(c).area();
        n_mov += 1;
    }
    let std_area = if n_mov > 0 {
        area_sum / n_mov as f64
    } else {
        1.0
    };

    let n_bar = design.avg_pins_per_cell();
    let mut selected_multi: HashSet<u32> = HashSet::new();

    for ni in 0..design.num_nets() {
        let net_id = NetId::from_index(ni);
        let net = design.net(net_id);

        // Two-pin net: Algorithm 1.
        if net.is_two_pin() {
            if let Some(v) = two_pin_gradient(design, field, cfg, net_id, std_area) {
                if design.cell(v.cell1).is_movable() {
                    grad[v.cell1.index()].x += v.g1.x;
                    grad[v.cell1.index()].y += v.g1.y;
                }
                if design.cell(v.cell2).is_movable() {
                    grad[v.cell2.index()].x += v.g2.x;
                    grad[v.cell2.index()].y += v.g2.y;
                }
                penalty += std_area * field.psi_at(v.pos);
                virtual_cells += 1;
            }
        }

        // Multi-pin cell update (Algorithm 2, lines 7–15), superposed per
        // net occurrence.
        for &pid in &net.pins {
            let cid = design.pin(pid).cell;
            let cell = design.cell(cid);
            if !cell.is_movable() {
                continue;
            }
            let n_pins = design.pins_of_cell(cid).len() as f64;
            let pos = design.pos(cid);
            if n_pins > n_bar && field.congestion_at(pos) > cfg.multi_pin_threshold {
                let e = field.field_at(pos);
                grad[cid.index()].x -= cell.area() * e.x;
                grad[cid.index()].y -= cell.area() * e.y;
                if selected_multi.insert(cid.0) {
                    penalty += cell.area() * field.psi_at(pos);
                }
            }
        }
    }

    CongestionGradients {
        grad,
        penalty: 0.5 * penalty,
        virtual_cells,
        multi_pin_cells: selected_multi.len(),
    }
}

/// Geometry of one two-pin-net virtual cell (exposed for the Fig. 3
/// demonstration binary).
#[derive(Debug, Clone, Copy)]
pub struct VirtualCellInfo {
    /// The endpoint cells.
    pub cell1: rdp_db::CellId,
    /// Second endpoint cell.
    pub cell2: rdp_db::CellId,
    /// Virtual cell position `(x_v, y_v)` (Eq. (8)).
    pub pos: Point,
    /// Raw field gradient `∇C_cv` at the virtual cell.
    pub grad_v: Point,
    /// Oriented unit normal n̂ of the segment.
    pub normal: Point,
    /// Projected gradient `∇C⊥`.
    pub proj: Point,
    /// Final gradient for cell 1 (Eq. (9)).
    pub g1: Point,
    /// Final gradient for cell 2.
    pub g2: Point,
}

/// Algorithm 1 for one two-pin net. Returns `None` when the net spans no
/// G-cell boundary (k = 0), has coincident pins, or sees a vanishing
/// field.
pub fn two_pin_gradient(
    design: &Design,
    field: &CongestionField,
    cfg: &NetMoveConfig,
    net: NetId,
    std_area: f64,
) -> Option<VirtualCellInfo> {
    let pins = &design.net(net).pins;
    if pins.len() != 2 {
        // Degenerate (single-pin) or multi-pin nets have no two-pin
        // decomposition here; treat like k = 0 instead of aborting.
        return None;
    }
    let p1 = design.pin_position(pins[0]);
    let p2 = design.pin_position(pins[1]);
    let c1 = design.pin(pins[0]).cell;
    let c2 = design.pin(pins[1]).cell;

    let grid = field.grid();
    let (lx, ly) = (grid.bin_w(), grid.bin_h());

    // Eq. (6): number of candidate points.
    let k = (((p1.x - p2.x).abs() / lx).floor() as usize)
        .max(((p1.y - p2.y).abs() / ly).floor() as usize);
    if k == 0 {
        return None;
    }

    // Eqs. (7)–(8): pick the candidate with maximum congestion.
    let dir = p2 - p1;
    let mut best = (f64::NEG_INFINITY, p1);
    for i in 1..=k {
        let t = i as f64 / (k + 1) as f64;
        let cand = p1 + dir.scale(t);
        let c = field.congestion_at(cand);
        if c > best.0 {
            best = (c, cand);
        }
    }
    let pos = best.1;

    // Line 3: field gradient of the virtual cell (descent convention).
    let e = field.field_at(pos);
    let grad_v = Point::new(-std_area * e.x, -std_area * e.y);
    if grad_v.norm() < 1e-15 {
        return None;
    }

    // Lines 4–5: segment length and oriented normal.
    let len = p1.distance(p2);
    let n = Point::new(-dir.y, dir.x).normalized()?;
    let normal = if n.dot(grad_v) >= 0.0 {
        n
    } else {
        n.scale(-1.0)
    };

    // Lines 6–9: project and distribute with the lever-arm weighting.
    let proj = normal.scale(grad_v.dot(normal));
    let d_min = cfg.min_distance_fraction * lx.max(ly);
    let d1 = p1.distance(pos).max(d_min);
    let d2 = p2.distance(pos).max(d_min);
    let g1 = proj.scale(len / (2.0 * d1));
    let g2 = proj.scale(len / (2.0 * d2));

    Some(VirtualCellInfo {
        cell1: c1,
        cell2: c2,
        pos,
        grad_v,
        normal,
        proj,
        g1,
        g2,
    })
}

/// The adaptive congestion weight λ₂ of Eq. (10):
/// `λ₂ = (2·N_C/N) · ‖∇W‖₁ / ‖∇C‖₁`, where `N_C` counts cells in
/// congested G-cells and `N` is the total cell count.
pub fn lambda2(design: &Design, field: &CongestionField, cgrad: &CongestionGradients) -> f64 {
    let n = design.num_cells().max(1);
    let mut n_c = 0usize;
    for i in 0..design.num_cells() {
        let pos = design.positions()[i];
        if field.congestion_at(pos) > 0.0 {
            n_c += 1;
        }
    }
    let wa = crate::wirelength::WaModel::new(field.grid().bin_w().max(1e-9));
    let mut gw = vec![Point::default(); design.num_cells()];
    wa.accumulate_gradient(design, &mut gw);
    let l1_w: f64 = gw.iter().map(|g| g.x.abs() + g.y.abs()).sum();
    let l1_c: f64 = cgrad.grad.iter().map(|g| g.x.abs() + g.y.abs()).sum();
    if l1_c < 1e-12 {
        return 0.0;
    }
    (2.0 * n_c as f64 / n as f64) * l1_w / l1_c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Rect, RoutingSpec};
    use rdp_route::GlobalRouter;

    /// A design with a congested horizontal stripe in the middle and one
    /// horizontal two-pin net crossing it.
    fn stripe_design() -> Design {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 64.0, 64.0));
        let mut pairs = Vec::new();
        for i in 0..40 {
            let y = 30.0 + (i % 4) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(62.0, y));
            pairs.push((a, c));
        }
        // The observed net: crosses the stripe but runs along it at y=31.
        let t1 = b.add_cell(Cell::std("t1", 1.0, 1.0), Point::new(10.0, 31.0));
        let t2 = b.add_cell(Cell::std("t2", 1.0, 1.0), Point::new(54.0, 31.0));
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        b.add_net(
            "probe",
            vec![(t1, Point::default()), (t2, Point::default())],
        );
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        b.build().unwrap()
    }

    fn field_of(d: &Design) -> CongestionField {
        let route = GlobalRouter::default().route(d);
        CongestionField::from_route(d, &route)
    }

    #[test]
    fn virtual_cell_lands_in_congested_gcell() {
        let d = stripe_design();
        let f = field_of(&d);
        let probe = NetId::from_index(d.num_nets() - 1);
        let info = two_pin_gradient(&d, &f, &NetMoveConfig::default(), probe, 1.0)
            .expect("net spans many G-cells");
        // The stripe is at y≈30–34; candidates lie along y=31 so the
        // virtual cell must be in the stripe.
        assert!(info.pos.y > 28.0 && info.pos.y < 36.0, "{}", info.pos);
        assert!(f.congestion_at(info.pos) > 0.0);
    }

    #[test]
    fn normal_is_unit_perpendicular_and_acute_with_gradient() {
        let d = stripe_design();
        let f = field_of(&d);
        let probe = NetId::from_index(d.num_nets() - 1);
        let info = two_pin_gradient(&d, &f, &NetMoveConfig::default(), probe, 1.0).unwrap();
        let dir = Point::new(1.0, 0.0); // probe net is horizontal
        assert!(
            info.normal.dot(dir).abs() < 1e-9,
            "normal not perpendicular"
        );
        assert!((info.normal.norm() - 1.0).abs() < 1e-12);
        assert!(info.normal.dot(info.grad_v) >= 0.0, "not acute");
        // Projection is parallel to the normal.
        let cross = info.proj.x * info.normal.y - info.proj.y * info.normal.x;
        assert!(cross.abs() < 1e-12);
    }

    #[test]
    fn descent_moves_net_away_from_stripe() {
        let d = stripe_design();
        let f = field_of(&d);
        let probe = NetId::from_index(d.num_nets() - 1);
        let info = two_pin_gradient(&d, &f, &NetMoveConfig::default(), probe, 1.0).unwrap();
        // The probe net runs along the stripe center (y=31); the stripe
        // spans roughly y∈[30,34]. Descent −g moves both cells in the same
        // vertical direction, out of the stripe.
        assert!(info.g1.y.signum() == info.g2.y.signum());
        assert!(info.g1.y.abs() > 0.0);
        // Both endpoint gradients are parallel to ∇C⊥ (same direction).
        assert!(info.g1.dot(info.proj) > 0.0);
        assert!(info.g2.dot(info.proj) > 0.0);
    }

    #[test]
    fn closer_pin_gets_larger_gradient() {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 64.0, 64.0));
        // Congestion generators.
        let mut pairs = Vec::new();
        for i in 0..40 {
            let y = 30.0 + (i % 4) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(62.0, y));
            pairs.push((a, c));
        }
        // Probe: diagonal net entering the stripe near its left pin.
        let t1 = b.add_cell(Cell::std("t1", 1.0, 1.0), Point::new(20.0, 36.0));
        let t2 = b.add_cell(Cell::std("t2", 1.0, 1.0), Point::new(60.0, 60.0));
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        b.add_net(
            "probe",
            vec![(t1, Point::default()), (t2, Point::default())],
        );
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        let d = b.build().unwrap();
        let f = field_of(&d);
        let probe = NetId::from_index(d.num_nets() - 1);
        let info = two_pin_gradient(&d, &f, &NetMoveConfig::default(), probe, 1.0).unwrap();
        let d1 = Point::new(20.0, 36.0).distance(info.pos);
        let d2 = Point::new(60.0, 60.0).distance(info.pos);
        if d1 < d2 {
            assert!(info.g1.norm() > info.g2.norm());
        } else {
            assert!(info.g2.norm() > info.g1.norm());
        }
    }

    #[test]
    fn same_gcell_net_is_skipped() {
        let d = stripe_design();
        let f = field_of(&d);
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 64.0, 64.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(10.0, 10.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(10.5, 10.5));
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        let tiny = b.build().unwrap();
        assert!(two_pin_gradient(
            &tiny,
            &f,
            &NetMoveConfig::default(),
            NetId::from_index(0),
            1.0
        )
        .is_none());
    }

    #[test]
    fn gradients_accumulate_and_penalty_positive_in_congested_design() {
        let d = stripe_design();
        let f = field_of(&d);
        let out = congestion_gradients(&d, &f, &NetMoveConfig::default());
        assert!(out.virtual_cells > 0);
        let total: f64 = out.grad.iter().map(|g| g.norm()).sum();
        assert!(total > 0.0);
        // ψ is positive at the congested stripe where V' members sit.
        assert!(out.penalty != 0.0);
    }

    #[test]
    fn lambda2_scales_with_congested_fraction() {
        let d = stripe_design();
        let f = field_of(&d);
        let out = congestion_gradients(&d, &f, &NetMoveConfig::default());
        let l2 = lambda2(&d, &f, &out);
        assert!(l2 > 0.0, "lambda2 {l2}");
        assert!(l2.is_finite());
    }

    /// λ₂ follows Eq. (10) exactly: (2·N_C/N)·‖∇W‖₁/‖∇C‖₁.
    #[test]
    fn lambda2_matches_hand_computation() {
        let d = stripe_design();
        let f = field_of(&d);
        let out = congestion_gradients(&d, &f, &NetMoveConfig::default());
        let l2 = lambda2(&d, &f, &out);

        let n = d.num_cells();
        let n_c = (0..n)
            .filter(|&i| f.congestion_at(d.positions()[i]) > 0.0)
            .count();
        let wa = crate::wirelength::WaModel::new(f.grid().bin_w());
        let mut gw = vec![Point::default(); n];
        wa.accumulate_gradient(&d, &mut gw);
        let l1_w: f64 = gw.iter().map(|g| g.x.abs() + g.y.abs()).sum();
        let l1_c: f64 = out.grad.iter().map(|g| g.x.abs() + g.y.abs()).sum();
        let expect = 2.0 * n_c as f64 / n as f64 * l1_w / l1_c;
        assert!(
            (l2 - expect).abs() < 1e-9 * expect.max(1.0),
            "{l2} vs {expect}"
        );
    }

    /// The multi-pin condition needs BOTH pins > n̄ and C > threshold.
    #[test]
    fn multi_pin_selection_respects_both_conditions() {
        // Stripe congestion plus a 6-pin hub cell sitting inside the
        // stripe and a 6-pin hub in the quiet corner.
        let mut b = DesignBuilder::new("m", Rect::new(0.0, 0.0, 64.0, 64.0));
        let mut pairs = Vec::new();
        for i in 0..40 {
            let y = 30.0 + (i % 4) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(62.0, y));
            pairs.push((a, c));
        }
        let hub_hot = b.add_cell(Cell::std("hub_hot", 1.0, 1.0), Point::new(32.0, 31.0));
        let hub_cold = b.add_cell(Cell::std("hub_cold", 1.0, 1.0), Point::new(60.0, 4.0));
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        for i in 0..6 {
            let (a, c) = pairs[i];
            b.add_net(
                format!("hh{i}"),
                vec![(hub_hot, Point::default()), (a, Point::default())],
            );
            b.add_net(
                format!("hc{i}"),
                vec![(hub_cold, Point::default()), (c, Point::default())],
            );
        }
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        let d = b.build().unwrap();
        let f = field_of(&d);
        assert!(
            f.congestion_at(d.pos(hub_hot)) > 0.7,
            "test premise: hub_hot sits in heavy congestion ({})",
            f.congestion_at(d.pos(hub_hot))
        );
        assert!(f.congestion_at(d.pos(hub_cold)) < 0.7);

        let paper = congestion_gradients(&d, &f, &NetMoveConfig::default());
        // The hot hub qualifies (pins > n̄ AND C > 0.7); the cold hub has
        // the pins but not the congestion, so it receives no multi-pin
        // field gradient. (Stripe endpoint cells with hub nets may also
        // qualify — both conditions, so that is correct behavior.)
        assert!(paper.multi_pin_cells >= 1);
        assert!(paper.grad[hub_hot.index()].norm() > 0.0);
        // hub_cold gets no multi-pin term; any gradient it has comes from
        // the two-pin virtual-cell path of its own nets. Check via a
        // zero-threshold run: selection count grows once C > 0 suffices.
        let loose = congestion_gradients(
            &d,
            &f,
            &NetMoveConfig {
                multi_pin_threshold: 0.0,
                ..NetMoveConfig::default()
            },
        );
        assert!(loose.multi_pin_cells >= paper.multi_pin_cells);
        // The quiet corner has C = 0 exactly, so even a zero threshold
        // (which requires C > 0) never selects hub_cold: its gradient is
        // identical across threshold settings.
        assert_eq!(loose.grad[hub_cold.index()], paper.grad[hub_cold.index()]);

        // With an impossible threshold nothing is selected.
        let strict = congestion_gradients(
            &d,
            &f,
            &NetMoveConfig {
                multi_pin_threshold: f64::INFINITY,
                ..NetMoveConfig::default()
            },
        );
        assert_eq!(strict.multi_pin_cells, 0);
    }

    #[test]
    fn fixed_cells_receive_no_gradient() {
        let g = rdp_gen::generate(
            "x",
            &rdp_gen::GenParams {
                num_cells: 200,
                io_terminals: 8,
                seed: 3,
                ..rdp_gen::GenParams::default()
            },
        );
        let route = GlobalRouter::default().route(&g);
        let cf = CongestionField::from_route(&g, &route);
        let cg = congestion_gradients(&g, &cf, &NetMoveConfig::default());
        for (i, _) in g.cells().iter().enumerate().filter(|(_, c)| c.fixed) {
            assert_eq!(cg.grad[i], Point::default());
        }
    }
}
