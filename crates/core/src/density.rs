//! Electrostatic density model (ePlace): bin densities from (optionally
//! inflated) cell areas plus the paper's dynamic PG-rail density, the
//! potential/field from the Poisson solver, the density penalty
//! `D = ½·Σ Aᵢψᵢ`, and its gradient `∇ᵢD = −Aᵢ·E(xᵢ)`.

use rdp_db::{CellKind, Design, GridSpec, Map2d, Point};
use rdp_obs::Collector;
use rdp_par::{chunk_len, Pool};
use rdp_poisson::PoissonSolver;

/// Cells per binning chunk: at most 16 chunks bound the per-chunk bin
/// maps' memory; the floor keeps scheduling overhead negligible.
fn cell_chunk(num_cells: usize) -> usize {
    chunk_len(num_cells, 16, 128)
}

/// Accumulator lane count for flat reductions. Part of the numeric
/// contract: changing it reorders sums and requires re-baselining
/// (DESIGN.md §11).
const LANES: usize = 4;

/// Electro-density state for one gradient evaluation.
#[derive(Debug, Clone)]
pub struct DensityField {
    /// Bin utilization ρ_b (dimensionless, 1.0 = full).
    pub density: Map2d<f64>,
    /// Electric potential ψ on bins.
    pub psi: Map2d<f64>,
    /// Field x-component (−∂ψ/∂x).
    pub ex: Map2d<f64>,
    /// Field y-component.
    pub ey: Map2d<f64>,
    /// Density penalty D = ½ Σ Aᵢ ψ(xᵢ) over movable cells.
    pub penalty: f64,
    /// Density overflow τ = Σ_b max(ρ_b − target, 0)·A_b / Σ movable area.
    pub overflow: f64,
}

/// Density model bound to a design's bin grid.
#[derive(Debug, Clone)]
pub struct DensityModel {
    grid: GridSpec,
    solver: PoissonSolver,
    /// Observability sink (disabled by default; timing only, never read).
    obs: Collector,
}

impl DensityModel {
    /// Creates the model on the design's G-cell grid (bins ≡ G-cells,
    /// Section II-B of the paper).
    pub fn new(design: &Design) -> Self {
        let grid = design.gcell_grid();
        let solver = PoissonSolver::new(
            grid.nx(),
            grid.ny(),
            grid.region().width(),
            grid.region().height(),
        );
        DensityModel {
            grid,
            solver,
            obs: Collector::disabled(),
        }
    }

    /// Attaches an observability collector; spans cover the density/Poisson
    /// kernels from then on.
    pub fn set_obs(&mut self, obs: Collector) {
        self.obs = obs;
    }

    /// The bin grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Computes bin densities and solves the Poisson problem.
    ///
    /// * `inflation` — optional per-cell **area** inflation ratios
    ///   (indexed by cell id; only movable cells are inflated).
    /// * `extra_density` — optional additive density map (the DPA term
    ///   `D^PG` of Eq. (14)).
    /// * `target` — target utilization for the overflow metric.
    pub fn compute(
        &self,
        design: &Design,
        inflation: Option<&[f64]>,
        extra_density: Option<&Map2d<f64>>,
        target: f64,
    ) -> DensityField {
        self.compute_with(design, inflation, extra_density, target, Pool::global())
    }

    /// [`compute`](DensityModel::compute) on an explicit pool.
    ///
    /// Cells are binned into per-chunk density maps (fixed chunking over
    /// the cell array) that are merged in chunk order, and the penalty
    /// is a chunk-ordered reduction, so the entire field is bit-identical
    /// for any thread count.
    pub fn compute_with(
        &self,
        design: &Design,
        inflation: Option<&[f64]>,
        extra_density: Option<&Map2d<f64>>,
        target: f64,
        pool: Pool,
    ) -> DensityField {
        let _span = self.obs.span("density_field", "gp");
        let (nx, ny) = (self.grid.nx(), self.grid.ny());
        let bin_area = self.grid.bin_area();
        let n = design.num_cells();
        let chunk = cell_chunk(n);

        let bin_w = self.grid.bin_w();
        let bin_h = self.grid.bin_h();
        let region_lo = self.grid.region().lo;
        let (inv_bw, inv_bh) = (1.0 / bin_w, 1.0 / bin_h);
        // Division-free bin-range quantization, local to this kernel: a
        // reciprocal-rounding off-by-one at an exact bin boundary only
        // adds a bin whose clamped overlap width is exactly 0.0, so the
        // accumulated density is unaffected (the shared
        // `GridSpec::bins_overlapping` keeps the true division because
        // its callers rely on the exclusive-boundary index itself).
        let clamp_bin = |f: f64, n: usize| (f.floor().max(0.0) as usize).min(n - 1);
        let cells = design.cells();
        let positions = design.positions();
        let parts = pool.map_chunks(n, chunk, |_ci, range| {
            let mut local = Map2d::new(nx, ny);
            // Per-column overlap widths of the current cell rect, already
            // divided by the bin area. The overlap fraction factors as
            // (width(ix)/A_b)·height(iy), so computing the scaled widths
            // once per cell (instead of per bin) removes the redundant
            // min/max and the division from the inner loop.
            let mut wx: Vec<f64> = Vec::new();
            for i in range {
                let cell = &cells[i];
                if cell.kind == CellKind::Terminal {
                    continue;
                }
                let scale = match inflation {
                    Some(r) if cell.is_movable() => r[i].max(0.0).sqrt(),
                    _ => 1.0,
                };
                let rect = rdp_db::Rect::centered(positions[i], cell.w * scale, cell.h * scale);
                let x0 = clamp_bin((rect.lo.x - region_lo.x) * inv_bw, nx);
                let y0 = clamp_bin((rect.lo.y - region_lo.y) * inv_bh, ny);
                let x1 = clamp_bin((rect.hi.x - region_lo.x) * inv_bw, nx).max(x0);
                let y1 = clamp_bin((rect.hi.y - region_lo.y) * inv_bh, ny).max(y0);
                wx.clear();
                for ix in x0..=x1 {
                    let bx0 = region_lo.x + ix as f64 * bin_w;
                    let bx1 = bx0 + bin_w;
                    wx.push((bx1.min(rect.hi.x) - bx0.max(rect.lo.x)).max(0.0) / bin_area);
                }
                for iy in y0..=y1 {
                    let by0 = region_lo.y + iy as f64 * bin_h;
                    let by1 = by0 + bin_h;
                    let h = (by1.min(rect.hi.y) - by0.max(rect.lo.y)).max(0.0);
                    let row = &mut local.row_mut(iy)[x0..=x1];
                    for (cell_bin, &w) in row.iter_mut().zip(wx.iter()) {
                        *cell_bin += w * h;
                    }
                }
            }
            local
        });
        // Ordered merge: chunk 0 first, chunk k last.
        let mut density = Map2d::new(nx, ny);
        for part in &parts {
            density.add_assign_map(part);
        }
        if let Some(extra) = extra_density {
            density.add_assign_map(extra);
        }

        let sol = {
            let _poisson = self.obs.span("poisson_solve", "gp");
            self.solver.solve_with(density.as_slice(), pool)
        };
        let psi = Map2d::from_vec(nx, ny, sol.psi);
        let ex = Map2d::from_vec(nx, ny, sol.ex);
        let ey = Map2d::from_vec(nx, ny, sol.ey);

        // Penalty over movable cells (the optimization variables):
        // per-chunk partial sums folded in chunk order.
        let mut penalty: f64 = pool
            .map_chunks(n, chunk, |_ci, range| {
                let mut acc = 0.0;
                for i in range {
                    let cell = &design.cells()[i];
                    if !cell.is_movable() {
                        continue;
                    }
                    let a = cell.area() * inflation.map(|r| r[i]).unwrap_or(1.0);
                    acc += a * self.grid.sample_bilinear(&psi, design.positions()[i]);
                }
                acc
            })
            .into_iter()
            .sum();
        penalty *= 0.5;

        // Overflow against the target utilization: branch-free lane
        // accumulation over the flat bin slice (fixed LANES partials,
        // fixed pairwise fold — see DESIGN.md §11).
        let vals = density.as_slice();
        let mut lanes = [0.0f64; LANES];
        let mut chunks = vals.chunks_exact(LANES);
        for c in chunks.by_ref() {
            for (lane, &d) in lanes.iter_mut().zip(c.iter()) {
                *lane += (d - target).max(0.0);
            }
        }
        let mut tail = 0.0;
        for &d in chunks.remainder() {
            tail += (d - target).max(0.0);
        }
        let over = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail) * bin_area;
        let movable_area: f64 = design.movable_area().max(1e-12);
        let overflow = over / movable_area;

        DensityField {
            density,
            psi,
            ex,
            ey,
            penalty,
            overflow,
        }
    }

    /// Accumulates `λ·∇D` into `grad`: for each movable cell,
    /// `∇ᵢD = −Aᵢ·E(xᵢ)` (inflated area as the charge).
    pub fn accumulate_gradient(
        &self,
        design: &Design,
        field: &DensityField,
        inflation: Option<&[f64]>,
        lambda: f64,
        grad: &mut [Point],
    ) {
        self.accumulate_gradient_with(design, field, inflation, lambda, grad, Pool::global());
    }

    /// [`accumulate_gradient`](DensityModel::accumulate_gradient) on an
    /// explicit pool. Each cell's entry is updated exactly once from a
    /// disjoint chunk of the gradient buffer, so the result is
    /// bit-identical for any thread count.
    pub fn accumulate_gradient_with(
        &self,
        design: &Design,
        field: &DensityField,
        inflation: Option<&[f64]>,
        lambda: f64,
        grad: &mut [Point],
        pool: Pool,
    ) {
        let chunk = chunk_len(grad.len(), 64, 256);
        pool.for_chunks_mut(
            grad,
            chunk,
            || (),
            |(), _ci, offset, window| {
                for (k, g) in window.iter_mut().enumerate() {
                    let i = offset + k;
                    let cell = &design.cells()[i];
                    if !cell.is_movable() {
                        continue;
                    }
                    let a = cell.area() * inflation.map(|r| r[i]).unwrap_or(1.0);
                    let p = design.positions()[i];
                    let (ex, ey) = self.grid.sample_bilinear2(&field.ex, &field.ey, p);
                    g.x -= lambda * a * ex;
                    g.y -= lambda * a * ey;
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, CellId, DesignBuilder, Rect, RoutingSpec};

    fn cluster_design() -> Design {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 64.0, 64.0));
        // A tight cluster near (16,32) and one lone cell at (48,32).
        let mut ids = Vec::new();
        for i in 0..9 {
            let dx = (i % 3) as f64 * 2.0;
            let dy = (i / 3) as f64 * 2.0;
            ids.push(b.add_cell(
                Cell::std(format!("c{i}"), 2.0, 2.0),
                Point::new(14.0 + dx, 30.0 + dy),
            ));
        }
        let lone = b.add_cell(Cell::std("lone", 2.0, 2.0), Point::new(48.0, 32.0));
        b.add_net(
            "n",
            vec![(ids[0], Point::default()), (lone, Point::default())],
        );
        b.routing(RoutingSpec::uniform(4, 8.0, 16, 16));
        b.build().unwrap()
    }

    #[test]
    fn density_mass_equals_cell_area() {
        let d = cluster_design();
        let m = DensityModel::new(&d);
        let f = m.compute(&d, None, None, 1.0);
        let mass = f.density.sum() * m.grid().bin_area();
        assert!((mass - 40.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn field_pushes_cluster_apart() {
        let d = cluster_design();
        let m = DensityModel::new(&d);
        let f = m.compute(&d, None, None, 1.0);
        let mut grad = vec![Point::default(); d.num_cells()];
        m.accumulate_gradient(&d, &f, None, 1.0, &mut grad);
        // Descent −grad must push the cluster's left cell left and right
        // cell right.
        let left = grad[0]; // cell at (14,30)
        let right = grad[2]; // cell at (18,30)
        assert!(-left.x < 0.0, "left cell moves left: {left:?}");
        assert!(-right.x >= -1e-12, "right cell moves right: {right:?}");
    }

    #[test]
    fn inflation_increases_local_density_and_overflow() {
        let d = cluster_design();
        let m = DensityModel::new(&d);
        let base = m.compute(&d, None, None, 0.5);
        let mut ratios = vec![1.0; d.num_cells()];
        for i in 0..9 {
            ratios[i] = 2.0;
        }
        let inflated = m.compute(&d, Some(&ratios), None, 0.5);
        assert!(inflated.density.max() > base.density.max());
        assert!(inflated.overflow > base.overflow);
    }

    #[test]
    fn extra_density_map_is_added() {
        let d = cluster_design();
        let m = DensityModel::new(&d);
        let mut extra = Map2d::new(16, 16);
        extra[(8, 8)] = 5.0;
        let f = m.compute(&d, None, Some(&extra), 1.0);
        let base = m.compute(&d, None, None, 1.0);
        assert!((f.density[(8, 8)] - base.density[(8, 8)] - 5.0).abs() < 1e-12);
        // Extra charge changes the field.
        assert_ne!(f.ex, base.ex);
    }

    #[test]
    fn penalty_decreases_when_cluster_spreads() {
        let mut d = cluster_design();
        let m = DensityModel::new(&d);
        let before = m.compute(&d, None, None, 1.0).penalty;
        // Spread the cluster out.
        for i in 0..9 {
            let id = CellId::from_index(i);
            let p = d.pos(id);
            d.set_pos(
                id,
                Point::new(8.0 + (p.x - 16.0) * 6.0, 32.0 + (p.y - 32.0) * 6.0),
            );
        }
        let after = m.compute(&d, None, None, 1.0).penalty;
        assert!(after < before, "penalty {after} !< {before}");
    }

    #[test]
    fn overflow_zero_when_under_target() {
        let d = cluster_design();
        let m = DensityModel::new(&d);
        let f = m.compute(&d, None, None, 10.0);
        assert_eq!(f.overflow, 0.0);
    }

    #[test]
    fn macros_contribute_density_but_get_no_gradient() {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 64.0, 64.0));
        let m0 = b.add_cell(Cell::fixed_macro("m", 16.0, 16.0), Point::new(32.0, 32.0));
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(8.0, 8.0));
        b.add_net("n", vec![(m0, Point::default()), (a, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 8.0, 16, 16));
        let d = b.build().unwrap();
        let m = DensityModel::new(&d);
        let f = m.compute(&d, None, None, 1.0);
        assert!(f.density[(8, 8)] > 0.9); // macro-covered bin
        let mut grad = vec![Point::default(); d.num_cells()];
        m.accumulate_gradient(&d, &f, None, 1.0, &mut grad);
        assert_eq!(grad[0], Point::default()); // fixed macro untouched
        assert!(grad[1].x != 0.0 || grad[1].y != 0.0);
    }
}
