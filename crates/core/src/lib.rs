//! # rdp-core — routability-driven electrostatic global placement
//!
//! A from-scratch implementation of *“Differentiable Net-Moving and Local
//! Congestion Mitigation for Routability-Driven Global Placement”*
//! (DAC 2025):
//!
//! * [`WaModel`] — the weighted-average wirelength surrogate (Section II-A),
//! * [`DensityModel`] — ePlace electrostatic density on the bin grid,
//! * [`NesterovSolver`] — the accelerated first-order solver,
//! * [`GpSession`] / [`GlobalPlacer`] — the placement engine and the plain
//!   wirelength-driven placer (problem (2), the "Xplace" baseline),
//! * [`CongestionField`] — the differentiable congestion function from
//!   Poisson's equation over `Dmd/Cap` (Section II-B),
//! * [`congestion_gradients`] — virtual-cell net moving and multi-pin cell
//!   gradients (Algorithms 1–2, Eqs. (6)–(10)),
//! * [`InflationState`] — momentum-based cell inflation (Eqs. (11)–(12))
//!   plus the present-only and monotone baselines,
//! * [`PgDensity`] — dynamic pin-accessibility density around PG rails
//!   (Eqs. (13)–(15), Fig. 4),
//! * [`run_flow`] — the complete Fig. 2 flow with the Table I presets
//!   ([`PlacerPreset`]).
//!
//! ```no_run
//! use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};
//! use rdp_gen::generate_named;
//!
//! let mut design = generate_named("fft_1").unwrap();
//! let report = run_flow(&mut design, &RoutabilityConfig::preset(PlacerPreset::Ours))
//!     .expect("flow diverged beyond recovery");
//! println!("placed in {:.1}s, HPWL {:.0}", report.place_seconds, report.hpwl);
//! ```
//!
//! `run_flow` returns `Result`: numerical blow-ups are detected by the
//! [`rdp_guard`] health sentinels, rolled back, and re-tuned
//! automatically; only unrecoverable divergence or invalid configuration
//! surfaces as an [`RdpError`]. See [`run_flow_with`] for
//! checkpoint/resume ([`FlowCheckpoint`]) and degraded-mode reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod density;
mod dpa;
mod flow;
mod inflate;
mod nesterov;
mod netmove;
mod placer;
pub mod wirelength;

pub use congestion::CongestionField;
pub use density::{DensityField, DensityModel};
pub use dpa::{select_rails, DpaConfig, PgDensity};
pub use flow::{
    run_flow, run_flow_with, DcSource, DpaMode, FlowCheckpoint, FlowControl, FlowFault, FlowReport,
    PlacerPreset, RoutabilityConfig, RouteIterLog,
};
pub use inflate::{InflationBounds, InflationPolicy, InflationSnapshot, InflationState};
pub use nesterov::NesterovSolver;
pub use netmove::{
    congestion_gradients, lambda2, two_pin_gradient, CongestionGradients, NetMoveConfig,
    VirtualCellInfo,
};
pub use placer::{
    GlobalPlacer, GpSession, GpSnapshot, PlaceStats, PlacerConfig, StepExtras, StepReport,
};
pub use rdp_guard::{HealthPolicy, RdpError, Stage, Warning};
pub use rdp_predict::{CongestionPredictor, PredictConfig};
pub use wirelength::{WaModel, WaScratch};
