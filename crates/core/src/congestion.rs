//! The differentiable congestion field of Section II-B: the routing
//! utilization `Dmd/Cap` is used as the charge density of Poisson's
//! equation, giving a potential ψ_c and field E_c that the net-moving
//! machinery ([`crate::netmove`]) turns into cell gradients.

use rdp_db::{Design, GridSpec, Map2d, Point};
use rdp_guard::{HealthPolicy, RdpError, Stage};
use rdp_poisson::PoissonSolver;
use rdp_route::RouteResult;

/// Congestion potential/field over the G-cell grid.
#[derive(Debug, Clone)]
pub struct CongestionField {
    grid: GridSpec,
    /// Eq. (3) congestion map `max(Dmd/Cap − 1, 0)`.
    pub cmap: Map2d<f64>,
    /// Congestion potential ψ_c.
    pub psi: Map2d<f64>,
    /// Field x-component.
    pub ex: Map2d<f64>,
    /// Field y-component.
    pub ey: Map2d<f64>,
    /// Mean congestion C̄ over all G-cells (used by MCI and DPA).
    pub mean_congestion: f64,
}

impl CongestionField {
    /// Builds the field from a routing result on the design's G-cell grid.
    ///
    /// # Panics
    ///
    /// Panics if the route result's grid differs from the design's G-cell
    /// grid.
    pub fn from_route(design: &Design, route: &RouteResult) -> Self {
        let grid = design.gcell_grid();
        assert_eq!(route.congestion.nx(), grid.nx(), "grid mismatch");
        assert_eq!(route.congestion.ny(), grid.ny(), "grid mismatch");

        let charge = route.maps.charge_density();
        let solver = PoissonSolver::new(
            grid.nx(),
            grid.ny(),
            grid.region().width(),
            grid.region().height(),
        );
        let sol = solver.solve(charge.as_slice());
        let cmap = route.congestion.clone();
        let mean_congestion = cmap.mean();
        CongestionField {
            grid,
            cmap,
            psi: Map2d::from_vec(grid.nx(), grid.ny(), sol.psi),
            ex: Map2d::from_vec(grid.nx(), grid.ny(), sol.ex),
            ey: Map2d::from_vec(grid.nx(), grid.ny(), sol.ey),
            mean_congestion,
        }
    }

    /// Checked variant of [`CongestionField::from_route`]: grid mismatch
    /// becomes a typed [`RdpError::Config`] instead of a panic, the
    /// router's charge density is screened for NaN/Inf before the Poisson
    /// solve, and the solve itself runs through
    /// [`rdp_poisson::PoissonSolver::solve_checked`]. This is the entry
    /// point the guarded flow uses so that a pathological routing result
    /// (e.g. zero-capacity layers driving Eq. (3) to +∞) degrades to the
    /// RUDY fallback rather than poisoning the placement gradients.
    pub fn try_from_route(
        design: &Design,
        route: &RouteResult,
        health: &HealthPolicy,
    ) -> Result<Self, RdpError> {
        let grid = design.gcell_grid();
        if route.congestion.nx() != grid.nx() || route.congestion.ny() != grid.ny() {
            return Err(RdpError::Config {
                detail: format!(
                    "route congestion grid {}x{} does not match the design G-cell grid {}x{}",
                    route.congestion.nx(),
                    route.congestion.ny(),
                    grid.nx(),
                    grid.ny()
                ),
            });
        }
        health.check_map(Stage::Routing, "congestion map", None, &route.congestion)?;
        let charge = route.maps.charge_density();
        health.check_slice(Stage::Routing, "charge density", None, charge.as_slice())?;
        let solver = PoissonSolver::try_new(
            grid.nx(),
            grid.ny(),
            grid.region().width(),
            grid.region().height(),
        )?;
        let sol = solver.solve_checked(charge.as_slice(), health)?;
        let cmap = route.congestion.clone();
        let mean_congestion = cmap.mean();
        Ok(CongestionField {
            grid,
            cmap,
            psi: Map2d::from_vec(grid.nx(), grid.ny(), sol.psi),
            ex: Map2d::from_vec(grid.nx(), grid.ny(), sol.ex),
            ey: Map2d::from_vec(grid.nx(), grid.ny(), sol.ey),
            mean_congestion,
        })
    }

    /// Builds the field from a predicted utilization map `ρ = Dmd/Cap`
    /// (the congestion fast-path in `rdp-predict`), with the same sentinel
    /// screening as [`CongestionField::try_from_route`]: the charge is
    /// screened for NaN/Inf and the Poisson solve is checked. The Eq. (3)
    /// congestion map is derived as `max(ρ − 1, 0)` — the identical
    /// arithmetic [`rdp_route::RouteMaps::congestion_eq3`] applies to
    /// routed demand.
    pub fn try_from_charge(
        design: &Design,
        charge: &Map2d<f64>,
        health: &HealthPolicy,
    ) -> Result<Self, RdpError> {
        let grid = design.gcell_grid();
        if charge.nx() != grid.nx() || charge.ny() != grid.ny() {
            return Err(RdpError::Config {
                detail: format!(
                    "charge grid {}x{} does not match the design G-cell grid {}x{}",
                    charge.nx(),
                    charge.ny(),
                    grid.nx(),
                    grid.ny()
                ),
            });
        }
        health.check_slice(Stage::Routing, "predicted charge", None, charge.as_slice())?;
        let mut cmap = Map2d::new(grid.nx(), grid.ny());
        for (o, &c) in cmap.as_mut_slice().iter_mut().zip(charge.as_slice()) {
            *o = (c - 1.0).max(0.0);
        }
        let solver = PoissonSolver::try_new(
            grid.nx(),
            grid.ny(),
            grid.region().width(),
            grid.region().height(),
        )?;
        let sol = solver.solve_checked(charge.as_slice(), health)?;
        let mean_congestion = cmap.mean();
        Ok(CongestionField {
            grid,
            cmap,
            psi: Map2d::from_vec(grid.nx(), grid.ny(), sol.psi),
            ex: Map2d::from_vec(grid.nx(), grid.ny(), sol.ex),
            ey: Map2d::from_vec(grid.nx(), grid.ny(), sol.ey),
            mean_congestion,
        })
    }

    /// Checked variant of [`CongestionField::from_rudy`] with the same
    /// sentinel screening as [`CongestionField::try_from_route`]. RUDY
    /// clamps capacity away from zero, so this succeeds on designs whose
    /// routed congestion is unusable — it is the degraded-mode fallback.
    ///
    /// The utilization charge is saturated at [`Self::RUDY_CHARGE_CEIL`]:
    /// a G-cell at 8× capacity is already maximally repulsive, and the
    /// near-zero-capacity ratios RUDY's clamp produces (∼10⁹) would
    /// otherwise drive the Poisson potential — and through it the DC
    /// gradients — far past what the placer can follow, turning a
    /// degraded run into a divergent one.
    pub fn try_from_rudy(design: &Design, health: &HealthPolicy) -> Result<Self, RdpError> {
        let field = Self::from_rudy_saturated(design, Self::RUDY_CHARGE_CEIL);
        health.check_map(Stage::Routing, "RUDY congestion map", None, &field.cmap)?;
        health.check_map(Stage::Routing, "RUDY potential", None, &field.psi)?;
        Ok(field)
    }

    /// Saturation ceiling for the RUDY utilization charge in the guarded
    /// fallback path (see [`CongestionField::try_from_rudy`]). Healthy
    /// designs sit far below it, so saturation only engages on
    /// pathological capacity (zero-capacity layers, absurd demand).
    pub const RUDY_CHARGE_CEIL: f64 = 8.0;

    /// Builds the field from a **RUDY** estimate instead of a routed
    /// demand map — the bounding-box congestion model the paper argues
    /// against (Fig. 1(b)): every G-cell inside a net's box is charged
    /// whether or not the net's wire goes there. Provided for the
    /// router-vs-RUDY ablation (`ablation_sweep`).
    pub fn from_rudy(design: &Design) -> Self {
        Self::from_rudy_saturated(design, f64::INFINITY)
    }

    fn from_rudy_saturated(design: &Design, charge_ceil: f64) -> Self {
        let grid = design.gcell_grid();
        let rudy = rdp_route::rudy_map(design, &grid);
        let caps = rdp_route::CapacityMaps::build(design, &rdp_route::CapacityOptions::default());
        // RUDY is wirelength per unit area; convert to track units per
        // G-cell (wire crossing a G-cell consumes one track over its
        // extent) and ratio against the total capacity.
        let extent = 0.5 * (grid.bin_w() + grid.bin_h());
        let mut charge = Map2d::new(grid.nx(), grid.ny());
        let mut cmap = Map2d::new(grid.nx(), grid.ny());
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                let demand_tracks = rudy[(ix, iy)] * grid.bin_area() / extent;
                let cap = caps.h[(ix, iy)] + caps.v[(ix, iy)];
                let ratio = (demand_tracks / cap.max(1e-9)).min(charge_ceil);
                charge[(ix, iy)] = ratio;
                cmap[(ix, iy)] = (ratio - 1.0).max(0.0);
            }
        }
        let solver = PoissonSolver::new(
            grid.nx(),
            grid.ny(),
            grid.region().width(),
            grid.region().height(),
        );
        let sol = solver.solve(charge.as_slice());
        let mean_congestion = cmap.mean();
        CongestionField {
            grid,
            cmap,
            psi: Map2d::from_vec(grid.nx(), grid.ny(), sol.psi),
            ex: Map2d::from_vec(grid.nx(), grid.ny(), sol.ex),
            ey: Map2d::from_vec(grid.nx(), grid.ny(), sol.ey),
            mean_congestion,
        }
    }

    /// Builds a field from an explicit congestion map with the potential
    /// solved from that map directly (testing and what-if analyses; the
    /// production path is [`CongestionField::from_route`]).
    ///
    /// # Panics
    ///
    /// Panics if `cmap` does not match the design's G-cell grid.
    pub fn synthetic(design: &Design, cmap: Map2d<f64>) -> Self {
        let grid = design.gcell_grid();
        assert_eq!(cmap.nx(), grid.nx());
        assert_eq!(cmap.ny(), grid.ny());
        let solver = PoissonSolver::new(
            grid.nx(),
            grid.ny(),
            grid.region().width(),
            grid.region().height(),
        );
        let sol = solver.solve(cmap.as_slice());
        let mean_congestion = cmap.mean();
        CongestionField {
            grid,
            cmap,
            psi: Map2d::from_vec(grid.nx(), grid.ny(), sol.psi),
            ex: Map2d::from_vec(grid.nx(), grid.ny(), sol.ex),
            ey: Map2d::from_vec(grid.nx(), grid.ny(), sol.ey),
            mean_congestion,
        }
    }

    /// The G-cell grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Eq. (3) congestion value of the G-cell containing `p`.
    pub fn congestion_at(&self, p: Point) -> f64 {
        let (ix, iy) = self.grid.bin_of(p);
        self.cmap[(ix, iy)]
    }

    /// Bilinearly interpolated congestion field `E_c` at `p`.
    pub fn field_at(&self, p: Point) -> Point {
        Point::new(
            self.grid.sample_bilinear(&self.ex, p),
            self.grid.sample_bilinear(&self.ey, p),
        )
    }

    /// Bilinearly interpolated congestion potential ψ_c at `p`.
    pub fn psi_at(&self, p: Point) -> f64 {
        self.grid.sample_bilinear(&self.psi, p)
    }

    /// Number of G-cells with positive congestion.
    pub fn congested_gcells(&self) -> usize {
        self.cmap.count_above(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Rect, RoutingSpec};
    use rdp_route::GlobalRouter;

    /// Many parallel nets through the middle row create a congested
    /// horizontal stripe; the field must point away from it vertically.
    #[test]
    fn field_points_away_from_congested_stripe() {
        let mut b = DesignBuilder::new("c", Rect::new(0.0, 0.0, 64.0, 64.0));
        let mut pairs = Vec::new();
        for i in 0..30 {
            let y = 30.0 + (i % 4) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(62.0, y));
            pairs.push((a, c));
        }
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        let d = b.build().unwrap();
        let route = GlobalRouter::default().route(&d);
        let field = CongestionField::from_route(&d, &route);

        assert!(field.congestion_at(Point::new(32.0, 31.0)) > 0.0);
        assert!(field.congested_gcells() > 0);
        // Above the stripe the field pushes up, below it pushes down.
        assert!(field.field_at(Point::new(32.0, 50.0)).y > 0.0);
        assert!(field.field_at(Point::new(32.0, 12.0)).y < 0.0);
        // Potential peaks at the stripe.
        assert!(field.psi_at(Point::new(32.0, 31.0)) > field.psi_at(Point::new(32.0, 56.0)));
        assert!(field.mean_congestion >= 0.0);
    }

    /// The RUDY-based field charges the whole bounding box (the Fig. 1(b)
    /// overreach): for a single diagonal net, the box corners far from
    /// any plausible route still receive charge, whereas the routed field
    /// only charges cells on the chosen pattern.
    #[test]
    fn rudy_field_charges_the_whole_bounding_box() {
        let mut b = DesignBuilder::new("r", Rect::new(0.0, 0.0, 64.0, 64.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(6.0, 6.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(58.0, 58.0));
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        let d = b.build().unwrap();

        let rudy_field = CongestionField::from_rudy(&d);
        // RUDY deposits density over the whole box, including the
        // anti-diagonal corners.
        let corner = rdp_db::Point::new(6.0, 58.0);
        let grid = d.gcell_grid();
        let (ix, iy) = grid.bin_of(corner);
        let rudy_map = rdp_route::rudy_map(&d, &grid);
        assert!(rudy_map[(ix, iy)] > 0.0, "RUDY is zero at the corner");

        // Field is well-formed.
        assert!(rudy_field.mean_congestion >= 0.0);
        assert_eq!(rudy_field.cmap.nx(), 16);
        let p = rudy_field.field_at(Point::new(32.0, 32.0));
        assert!(p.x.is_finite() && p.y.is_finite());
    }
}
