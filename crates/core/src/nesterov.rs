//! Nesterov accelerated gradient solver with Barzilai–Borwein step size —
//! the optimizer of ePlace, used for both the wirelength-driven model
//! (Eq. 2) and the routability-driven model (Eq. 5).

use rdp_db::Point;

/// Nesterov solver state over a vector of 2-D positions.
///
/// The caller supplies a gradient evaluator per step; the solver maintains
/// the major (`u`) and reference (`v`) sequences, the acceleration
/// parameter `a_k`, and a BB-estimated step length.
#[derive(Debug, Clone)]
pub struct NesterovSolver {
    u: Vec<Point>,
    v: Vec<Point>,
    prev_v: Vec<Point>,
    prev_grad: Vec<Point>,
    grad: Vec<Point>,
    u_next: Vec<Point>,
    a: f64,
    iter: usize,
    /// Step length α used by the most recent [`NesterovSolver::step`]
    /// (telemetry only — never read back into the update).
    last_alpha: f64,
    /// Reference length used for the first step: the first update moves
    /// the largest-gradient coordinate by exactly this distance.
    pub first_step_distance: f64,
}

impl NesterovSolver {
    /// Creates a solver starting from `init`.
    pub fn new(init: Vec<Point>, first_step_distance: f64) -> Self {
        let n = init.len();
        NesterovSolver {
            u: init.clone(),
            v: init,
            prev_v: vec![Point::default(); n],
            prev_grad: vec![Point::default(); n],
            grad: vec![Point::default(); n],
            u_next: vec![Point::default(); n],
            a: 1.0,
            iter: 0,
            last_alpha: 0.0,
            first_step_distance,
        }
    }

    /// Current major solution `u_k`.
    pub fn positions(&self) -> &[Point] {
        &self.u
    }

    /// Reference solution `v_k` (where gradients are evaluated).
    pub fn reference(&self) -> &[Point] {
        &self.v
    }

    /// Iterations completed.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Step length α of the most recent step (0 before any step). Exposed
    /// for convergence telemetry; the solver never reads it back.
    pub fn last_alpha(&self) -> f64 {
        self.last_alpha
    }

    /// Re-seeds the momentum state (used when the objective changes
    /// discontinuously, e.g. on a new routability iteration with fresh
    /// inflation ratios).
    pub fn reset_momentum(&mut self) {
        self.a = 1.0;
        self.v.copy_from_slice(&self.u);
        self.iter = 0;
    }

    /// Fault-injection hook for the robustness suite: corrupts the first
    /// reference coordinate with NaN so the next gradient evaluation sees
    /// poisoned state, exactly as a numerical blow-up would produce.
    #[doc(hidden)]
    pub fn poison_reference(&mut self) {
        if let Some(p) = self.v.first_mut() {
            p.x = f64::NAN;
        }
    }

    /// One Nesterov iteration.
    ///
    /// `eval` receives the reference positions and must write the gradient
    /// into its second argument (pre-zeroed). `project` clamps a proposed
    /// position into the feasible region (the die).
    pub fn step(
        &mut self,
        mut eval: impl FnMut(&[Point], &mut [Point]),
        project: impl Fn(Point) -> Point,
    ) {
        for g in self.grad.iter_mut() {
            *g = Point::default();
        }
        eval(&self.v, &mut self.grad);

        // Step length.
        let alpha = if self.iter == 0 {
            let max_g = self
                .grad
                .iter()
                .map(|g| g.norm())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            self.first_step_distance / max_g
        } else {
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..self.v.len() {
                let dv = self.v[i] - self.prev_v[i];
                let dg = self.grad[i] - self.prev_grad[i];
                num += dv.dot(dv);
                den += dv.dot(dg);
            }
            // BB1 step; fall back to a tiny step when curvature vanishes
            // or is negative.
            if den.abs() > 1e-18 && num / den > 0.0 {
                num / den
            } else {
                let max_g = self
                    .grad
                    .iter()
                    .map(|g| g.norm())
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                self.first_step_distance / max_g
            }
        };

        // u_{k+1} = v_k − α∇f(v_k)  (into the persistent scratch buffer;
        // no per-iteration allocation).
        for i in 0..self.u.len() {
            self.u_next[i] = project(self.v[i] - self.grad[i].scale(alpha));
        }
        // Acceleration.
        let a_next = (1.0 + (4.0 * self.a * self.a + 1.0).sqrt()) / 2.0;
        let coef = (self.a - 1.0) / a_next;
        self.prev_v.copy_from_slice(&self.v);
        self.prev_grad.copy_from_slice(&self.grad);
        for i in 0..self.u.len() {
            let vi = self.u_next[i] + (self.u_next[i] - self.u[i]).scale(coef);
            self.v[i] = project(vi);
        }
        std::mem::swap(&mut self.u, &mut self.u_next);
        self.a = a_next;
        self.iter += 1;
        self.last_alpha = alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_quadratic(targets: &[Point], init: Vec<Point>, iters: usize) -> Vec<Point> {
        let mut solver = NesterovSolver::new(init, 1.0);
        for _ in 0..iters {
            solver.step(
                |v, g| {
                    for i in 0..v.len() {
                        g[i] = (v[i] - targets[i]).scale(2.0);
                    }
                },
                |p| p,
            );
        }
        solver.positions().to_vec()
    }

    #[test]
    fn converges_on_quadratic() {
        let targets = vec![Point::new(3.0, -2.0), Point::new(-1.0, 5.0)];
        let init = vec![Point::new(10.0, 10.0), Point::new(-8.0, 0.0)];
        let out = run_quadratic(&targets, init, 60);
        for (p, t) in out.iter().zip(&targets) {
            assert!(p.distance(*t) < 1e-3, "{p} vs {t}");
        }
    }

    #[test]
    fn converges_on_anisotropic_quadratic() {
        // f = 10(x−1)² + 0.1(y−2)²: poorly conditioned.
        let mut solver = NesterovSolver::new(vec![Point::new(30.0, -10.0)], 1.0);
        for _ in 0..300 {
            solver.step(
                |v, g| {
                    g[0] = Point::new(20.0 * (v[0].x - 1.0), 0.2 * (v[0].y - 2.0));
                },
                |p| p,
            );
        }
        let p = solver.positions()[0];
        assert!((p.x - 1.0).abs() < 1e-2, "{p}");
        assert!((p.y - 2.0).abs() < 1e-2, "{p}");
    }

    #[test]
    fn projection_is_respected() {
        let mut solver = NesterovSolver::new(vec![Point::new(0.5, 0.5)], 1.0);
        let clamp = |p: Point| Point::new(p.x.clamp(0.0, 1.0), p.y.clamp(0.0, 1.0));
        for _ in 0..50 {
            // Pull hard toward (10, 10): must stay clamped at (1,1).
            solver.step(
                |v, g| {
                    g[0] = (v[0] - Point::new(10.0, 10.0)).scale(2.0);
                },
                clamp,
            );
            let p = solver.positions()[0];
            assert!(p.x <= 1.0 && p.y <= 1.0);
        }
        let p = solver.positions()[0];
        assert!((p.x - 1.0).abs() < 1e-9 && (p.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn first_step_distance_controls_initial_move() {
        let mut solver = NesterovSolver::new(vec![Point::new(0.0, 0.0)], 2.5);
        solver.step(
            |_, g| {
                g[0] = Point::new(1.0, 0.0); // unit gradient
            },
            |p| p,
        );
        // u1 = v0 − α·g with α = 2.5 / max|g| = 2.5.
        assert!((solver.positions()[0].x + 2.5).abs() < 1e-12);
    }

    #[test]
    fn reset_momentum_restarts_acceleration() {
        let targets = vec![Point::new(1.0, 1.0)];
        let mut solver = NesterovSolver::new(vec![Point::new(0.0, 0.0)], 1.0);
        for _ in 0..5 {
            solver.step(
                |v, g| {
                    g[0] = (v[0] - targets[0]).scale(2.0);
                },
                |p| p,
            );
        }
        assert_eq!(solver.iterations(), 5);
        solver.reset_momentum();
        assert_eq!(solver.iterations(), 0);
        assert_eq!(solver.reference(), solver.positions());
    }
}
