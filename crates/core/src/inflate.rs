//! Cell inflation for local routing congestion — the paper's
//! momentum-based technique (Eqs. (11)–(12)) plus the two prior-art
//! baselines it is compared against.

use rdp_db::Design;

use crate::congestion::CongestionField;

/// How inflation ratios react to congestion over the routability
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InflationPolicy {
    /// No inflation (the plain wirelength-driven placer).
    None,
    /// Present-congestion-only (DREAMPlace/RePlAce style, refs [3, 5]):
    /// `r = 1 + β·C`. Cells deflate instantly when moved out of
    /// congestion, which lets them drift back.
    PresentOnly {
        /// Congestion-to-ratio gain β.
        beta: f64,
    },
    /// Monotone historical inflation (Xplace-Route style, paper ref.\[8\]):
    /// `r_t = r_{t−1} + β·C_t`, never decreasing — can over-inflate.
    Monotone {
        /// Congestion-to-ratio gain β.
        beta: f64,
    },
    /// The paper's momentum-based inflation with the deflation trigger of
    /// Eq. (12).
    Momentum {
        /// Momentum coefficient α (0.4 in the paper).
        alpha: f64,
    },
}

impl Default for InflationPolicy {
    fn default() -> Self {
        InflationPolicy::Momentum { alpha: 0.4 }
    }
}

/// Ratio clamp bounds (`r_min`, `r_max` of Eq. (11)) and the global area
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflationBounds {
    /// Lower clamp (0.9 in the paper — mild deflation is allowed).
    pub r_min: f64,
    /// Upper clamp (2.0 in the paper).
    pub r_max: f64,
    /// Maximum total inflated area as a fraction of the design's free
    /// area. When the per-cell ratios would exceed it, every cell's
    /// inflation *excess* `(r − 1)` is scaled down by a common factor.
    /// Without this budget, high-utilization designs become infeasible
    /// under inflation: the placer piles cells at the die boundary and
    /// legalization tears the placement apart.
    pub area_budget: f64,
}

impl Default for InflationBounds {
    fn default() -> Self {
        InflationBounds {
            r_min: 0.9,
            r_max: 2.0,
            area_budget: 0.92,
        }
    }
}

/// Portable capture of an [`InflationState`]'s evolving fields, used by
/// the flow checkpoint (`FlowCheckpoint`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InflationSnapshot {
    /// Raw policy ratios `r_i^t`.
    pub r: Vec<f64>,
    /// Budget-enforced effective ratios.
    pub effective: Vec<f64>,
    /// Momentum terms Δr.
    pub delta_r: Vec<f64>,
    /// Previous-iteration congestion per cell.
    pub c_prev: Vec<f64>,
    /// Previous-iteration mean congestion.
    pub mean_prev: f64,
    /// Inflation iterations performed.
    pub t: u64,
}

/// Per-cell inflation state across routability iterations.
#[derive(Debug, Clone)]
pub struct InflationState {
    policy: InflationPolicy,
    bounds: InflationBounds,
    r: Vec<f64>,
    effective: Vec<f64>,
    delta_r: Vec<f64>,
    c_prev: Vec<f64>,
    mean_prev: f64,
    t: usize,
}

impl InflationState {
    /// Creates the state for `num_cells` cells, all at ratio 1.
    pub fn new(num_cells: usize, policy: InflationPolicy, bounds: InflationBounds) -> Self {
        InflationState {
            policy,
            bounds,
            r: vec![1.0; num_cells],
            effective: vec![1.0; num_cells],
            delta_r: vec![0.0; num_cells],
            c_prev: vec![0.0; num_cells],
            mean_prev: 0.0,
            t: 0,
        }
    }

    /// Current **area** inflation ratios after budget enforcement,
    /// indexed by cell id.
    pub fn ratios(&self) -> &[f64] {
        &self.effective
    }

    /// Raw policy ratios before the area budget (the `r_i^t` of Eq. (11)).
    pub fn raw_ratios(&self) -> &[f64] {
        &self.r
    }

    /// Inflation iterations performed.
    pub fn iteration(&self) -> usize {
        self.t
    }

    /// Captures the full evolving state for a flow checkpoint. The policy
    /// and bounds are configuration, not state — the restoring side
    /// supplies them again via [`InflationState::new`].
    pub fn save_state(&self) -> InflationSnapshot {
        InflationSnapshot {
            r: self.r.clone(),
            effective: self.effective.clone(),
            delta_r: self.delta_r.clone(),
            c_prev: self.c_prev.clone(),
            mean_prev: self.mean_prev,
            t: self.t as u64,
        }
    }

    /// Restores a [`save_state`](InflationState::save_state) capture onto
    /// a freshly-constructed state with the same cell count.
    pub fn restore_state(&mut self, snap: &InflationSnapshot) -> Result<(), rdp_guard::RdpError> {
        let n = self.r.len();
        if snap.r.len() != n
            || snap.effective.len() != n
            || snap.delta_r.len() != n
            || snap.c_prev.len() != n
        {
            return Err(rdp_guard::RdpError::checkpoint(format!(
                "inflation snapshot covers {} cells, design has {n}",
                snap.r.len()
            )));
        }
        self.r.copy_from_slice(&snap.r);
        self.effective.copy_from_slice(&snap.effective);
        self.delta_r.copy_from_slice(&snap.delta_r);
        self.c_prev.copy_from_slice(&snap.c_prev);
        self.mean_prev = snap.mean_prev;
        self.t = snap.t as usize;
        Ok(())
    }

    /// Advances one inflation iteration using the congestion of each
    /// movable cell's G-cell (Eq. (11)); fixed cells keep ratio 1.
    pub fn update(&mut self, design: &Design, field: &CongestionField) {
        self.t += 1;
        let mean = field.mean_congestion;
        for cid in design.movable_cells() {
            let i = cid.index();
            // Saturate the congestion input: beyond 2x-over-capacity the
            // appropriate reaction is the same, and raw Eq. (3) values can
            // reach 3+ on stressed designs, which would slam ratios to
            // r_max in a single iteration and thrash the placement.
            let c = field.congestion_at(design.pos(cid)).min(1.0);
            match self.policy {
                InflationPolicy::None => {}
                InflationPolicy::PresentOnly { beta } => {
                    self.r[i] = (1.0 + beta * c).clamp(self.bounds.r_min, self.bounds.r_max);
                }
                InflationPolicy::Monotone { beta } => {
                    self.r[i] = (self.r[i] + beta * c).clamp(self.bounds.r_min, self.bounds.r_max);
                }
                InflationPolicy::Momentum { alpha } => {
                    let delta = if self.t == 1 {
                        // Δr¹ = C¹ (Eq. (11)).
                        c
                    } else {
                        // Eq. (12): δ = −|C_prev/C̄_prev − C/C̄| when the
                        // cell moved from an above-average-congestion
                        // G-cell to a below-average one, else δ = 1; the
                        // correction factor is s = δ·C. The C factor damps
                        // the (mean-normalized, hence large) deflation
                        // strength; a fully escaped cell (C = 0) keeps its
                        // size, and Δr decays by α so growth stops.
                        let delta_factor = if c < mean && self.c_prev[i] > self.mean_prev {
                            -(self.c_prev[i] / self.mean_prev.max(1e-12) - c / mean.max(1e-12))
                                .abs()
                        } else {
                            1.0
                        };
                        let s = delta_factor * c;
                        alpha * self.delta_r[i] + (1.0 - alpha) * s
                    };
                    self.delta_r[i] = delta;
                    self.r[i] = (self.r[i] + delta).clamp(self.bounds.r_min, self.bounds.r_max);
                }
            }
            self.c_prev[i] = c;
        }
        self.mean_prev = mean;

        // Enforce the global area budget on the effective ratios.
        self.effective.copy_from_slice(&self.r);
        let mut base = 0.0;
        let mut inflated = 0.0;
        for cid in design.movable_cells() {
            let a = design.cell(cid).area();
            base += a;
            inflated += a * self.r[cid.index()];
        }
        let budget = self.bounds.area_budget * design.free_area();
        if inflated > budget && inflated > base {
            let scale = ((budget - base) / (inflated - base)).clamp(0.0, 1.0);
            for cid in design.movable_cells() {
                let i = cid.index();
                if self.r[i] > 1.0 {
                    self.effective[i] = 1.0 + (self.r[i] - 1.0) * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, CellId, DesignBuilder, Point, Rect, RoutingSpec};
    use rdp_route::GlobalRouter;

    /// Builds a design whose left half is congested and returns it with
    /// its congestion field.
    fn congested_design() -> (Design, CongestionField) {
        let mut b = DesignBuilder::new("i", Rect::new(0.0, 0.0, 64.0, 64.0));
        let mut pairs = Vec::new();
        for i in 0..40 {
            let y = 28.0 + (i % 8) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(30.0, y));
            pairs.push((a, c));
        }
        // A quiet cell far from congestion.
        let q = b.add_cell(Cell::std("quiet", 1.0, 1.0), Point::new(60.0, 4.0));
        let q2 = b.add_cell(Cell::std("quiet2", 1.0, 1.0), Point::new(58.0, 4.0));
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        b.add_net("qn", vec![(q, Point::default()), (q2, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 1.5, 16, 16));
        let d = b.build().unwrap();
        let route = GlobalRouter::default().route(&d);
        let f = CongestionField::from_route(&d, &route);
        (d, f)
    }

    #[test]
    fn ratios_start_at_one_and_stay_bounded() {
        let (d, f) = congested_design();
        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::default(),
            InflationBounds::default(),
        );
        assert!(st.ratios().iter().all(|&r| r == 1.0));
        for _ in 0..10 {
            st.update(&d, &f);
            for &r in st.ratios() {
                assert!((0.9..=2.0).contains(&r), "ratio {r} out of bounds");
            }
        }
        assert_eq!(st.iteration(), 10);
    }

    #[test]
    fn congested_cells_inflate_quiet_cells_do_not() {
        let (d, f) = congested_design();
        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::default(),
            InflationBounds::default(),
        );
        for _ in 0..3 {
            st.update(&d, &f);
        }
        let congested_cell = d.find_cell("a0").unwrap();
        let quiet = d.find_cell("quiet").unwrap();
        if f.congestion_at(d.pos(congested_cell)) > 0.0 {
            assert!(st.ratios()[congested_cell.index()] > 1.0);
        }
        assert!((st.ratios()[quiet.index()] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn momentum_growth_stalls_for_fully_escaped_cell() {
        let (mut d, f) = congested_design();
        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::Momentum { alpha: 0.4 },
            InflationBounds::default(),
        );
        let victim = d.find_cell("a0").unwrap();
        st.update(&d, &f);
        let r_inflated = st.ratios()[victim.index()];
        assert!(
            r_inflated > 1.0,
            "victim should inflate first (C = {})",
            f.congestion_at(d.pos(victim))
        );
        // Teleport the cell into the quiet corner (C = 0): Δr decays by α
        // each iteration, so the total future growth is bounded by the
        // geometric tail Δr·α/(1−α).
        d.set_pos(victim, Point::new(60.0, 6.0));
        for _ in 0..8 {
            st.update(&d, &f);
        }
        let r_after = st.ratios()[victim.index()];
        let bound = r_inflated + (r_inflated - 1.0) * 0.4 / 0.6 + 1e-9;
        assert!(
            r_after <= bound,
            "growth did not stall: {r_after} > {bound}"
        );
    }

    /// True deflation per Eq. (12): a cell that moves from an
    /// above-average G-cell to a below-average but still nonzero one gets
    /// a negative correction.
    #[test]
    fn momentum_deflates_on_mild_congestion_after_escape() {
        use crate::congestion::CongestionField;
        use rdp_db::Map2d;

        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 64.0, 64.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(2.0, 2.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(62.0, 62.0));
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
        let mut d = b.build().unwrap();

        // Congestion: hot G-cell (0,0) = 1.0; mild G-cell (15,15) = 0.05;
        // a band of 0.5s elsewhere keeps the mean above 0.05.
        // Hot cell C = 1.0 ≫ mean ≈ 0.104; mild cell C = 0.099 sits just
        // below the mean, where Eq. (12)'s normalized strength
        // |C_prev/C̄ − C/C̄| ≈ 8.7 is big enough for s = δ·C to overcome
        // the α·Δr momentum.
        let mut cmap = Map2d::new(16, 16);
        cmap[(0, 0)] = 1.0;
        cmap[(15, 15)] = 0.099;
        for iy in 8..11 {
            for ix in 0..16 {
                cmap[(ix, iy)] = 0.53;
            }
        }
        let f = CongestionField::synthetic(&d, cmap);
        assert!(f.mean_congestion > 0.099 && f.mean_congestion < 0.12);

        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::Momentum { alpha: 0.4 },
            InflationBounds::default(),
        );
        let victim = rdp_db::CellId(0);
        st.update(&d, &f); // inflates at C = 1.0
        let r_hot = st.ratios()[victim.index()];
        assert!(r_hot > 1.5);
        // Move to the mild cell: deflation branch fires and shrinks r.
        d.set_pos(victim, Point::new(62.0, 62.0));
        st.update(&d, &f);
        let r_mild = st.ratios()[victim.index()];
        assert!(r_mild < r_hot, "no deflation: {r_mild} !< {r_hot}");
    }

    #[test]
    fn present_only_forgets_history() {
        let (mut d, f) = congested_design();
        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::PresentOnly { beta: 1.0 },
            InflationBounds::default(),
        );
        let victim = d.find_cell("a0").unwrap();
        st.update(&d, &f);
        assert!(st.ratios()[victim.index()] > 1.0);
        d.set_pos(victim, Point::new(60.0, 6.0));
        st.update(&d, &f);
        // Fully reverts to 1: the failure mode the paper criticises.
        assert!((st.ratios()[victim.index()] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_never_deflates() {
        let (mut d, f) = congested_design();
        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::Monotone { beta: 0.6 },
            InflationBounds::default(),
        );
        let victim = d.find_cell("a0").unwrap();
        st.update(&d, &f);
        let r1 = st.ratios()[victim.index()];
        d.set_pos(victim, Point::new(60.0, 6.0));
        st.update(&d, &f);
        let r2 = st.ratios()[victim.index()];
        assert!(r2 >= r1, "monotone deflated: {r2} < {r1}");
    }

    #[test]
    fn none_policy_is_inert() {
        let (d, f) = congested_design();
        let mut st = InflationState::new(
            d.num_cells(),
            InflationPolicy::None,
            InflationBounds::default(),
        );
        for _ in 0..5 {
            st.update(&d, &f);
        }
        assert!(st.ratios().iter().all(|&r| r == 1.0));
        let _ = CellId(0);
    }
}
