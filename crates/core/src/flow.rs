//! The routability-driven global placement flow of Fig. 2.
//!
//! ```text
//!   PG-rail selection  →  wirelength-driven GP (Xplace)  →  loop {
//!       global route → congestion map
//!       momentum cell inflation (MCI)
//!       dynamic pin-accessibility density (DPA)
//!       congestion gradients for net moving (DC) + λ₂
//!       Nesterov steps on problem (5)
//!   } until C(x,y) stops decreasing or the iteration cap
//! ```
//!
//! The same entry point also runs the two baselines of Table I by
//! configuration: **Xplace** (no routability loop) and **Xplace-Route**
//! (monotone inflation + static PG density, no net moving).

use std::time::Instant;

use rdp_db::Design;
use rdp_route::{GlobalRouter, RouterConfig};

use crate::congestion::CongestionField;
use crate::dpa::{DpaConfig, PgDensity};
use crate::inflate::{InflationBounds, InflationPolicy, InflationState};
use crate::netmove::{congestion_gradients, lambda2, NetMoveConfig};
#[allow(unused_imports)]
use crate::placer::GlobalPlacer;
use crate::placer::{GpSession, PlacerConfig, StepExtras};

/// Which congestion model feeds the differentiable congestion field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcSource {
    /// The paper: demand/capacity from the global router (Eq. (3)).
    Router,
    /// The RUDY bounding-box estimate the paper argues against
    /// (Fig. 1(b)) — kept for the router-vs-RUDY ablation.
    Rudy,
}

/// How the pin-accessibility density is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpaMode {
    /// Static pre-placement adjustment (the Xplace-Route baseline).
    Static,
    /// The paper's congestion-gated dynamic adjustment (Eqs. (13)–(15)).
    Dynamic,
}

/// Named placer presets corresponding to the columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacerPreset {
    /// Wirelength-driven placement only.
    Xplace,
    /// Monotone historical inflation + static PG density.
    XplaceRoute,
    /// The paper: momentum inflation + differentiable net moving + dynamic
    /// pin-accessibility density.
    Ours,
}

/// Full configuration of the routability-driven flow.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutabilityConfig {
    /// Global-placement engine options.
    pub gp: PlacerConfig,
    /// Router options for congestion estimation.
    pub router: RouterConfig,
    /// Cell inflation policy (MCI and its baselines).
    pub inflation: InflationPolicy,
    /// Enable the differentiable congestion / net-moving term (DC).
    pub enable_dc: bool,
    /// Net-moving tuning.
    pub netmove: NetMoveConfig,
    /// Pin-accessibility density mode, or `None` to disable.
    pub dpa: Option<DpaMode>,
    /// DPA tuning.
    pub dpa_cfg: DpaConfig,
    /// Maximum routability iterations (router invocations).
    pub max_route_iters: usize,
    /// Nesterov steps of problem (5) per routability iteration.
    pub gp_iters_per_route: usize,
    /// Stop after this many consecutive non-improving routability
    /// iterations (the "C(x,y) no longer decreases" rule).
    pub stop_patience: usize,
    /// Congestion model feeding the DC field (router per the paper, or
    /// RUDY for the ablation).
    pub dc_source: DcSource,
    /// λ₁ re-anchoring factor applied at each routability iteration
    /// (see [`GpSession::rebalance_lambda1`]).
    pub lambda1_rebalance: f64,
    /// Scale on the Eq. (10) congestion weight λ₂ (1.0 = the paper's
    /// formula; exposed for the ablation benches).
    pub lambda2_scale: f64,
}

impl RoutabilityConfig {
    /// The configuration used for a Table I column.
    pub fn preset(p: PlacerPreset) -> Self {
        let base = RoutabilityConfig {
            gp: PlacerConfig::default(),
            router: RouterConfig::default(),
            inflation: InflationPolicy::None,
            enable_dc: false,
            netmove: NetMoveConfig::default(),
            dpa: None,
            dpa_cfg: DpaConfig::default(),
            max_route_iters: 0,
            gp_iters_per_route: 24,
            stop_patience: 2,
            dc_source: DcSource::Router,
            lambda1_rebalance: 2.0,
            lambda2_scale: 1.0,
        };
        match p {
            PlacerPreset::Xplace => base,
            PlacerPreset::XplaceRoute => RoutabilityConfig {
                inflation: InflationPolicy::Monotone { beta: 0.6 },
                dpa: Some(DpaMode::Static),
                max_route_iters: 8,
                ..base
            },
            PlacerPreset::Ours => RoutabilityConfig {
                inflation: InflationPolicy::Momentum { alpha: 0.4 },
                enable_dc: true,
                dpa: Some(DpaMode::Dynamic),
                max_route_iters: 10,
                lambda2_scale: 0.5,
                ..base
            },
        }
    }
}

impl Default for RoutabilityConfig {
    fn default() -> Self {
        RoutabilityConfig::preset(PlacerPreset::Ours)
    }
}

/// One entry of the flow's stage log (for the Fig. 2 walk-through).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteIterLog {
    /// Routability iteration number (1-based).
    pub iter: usize,
    /// Total routing overflow after this iteration's routing.
    pub overflow: f64,
    /// Maximum Eq. (3) congestion.
    pub max_congestion: f64,
    /// Congestion penalty C(x, y) (0 when DC is disabled).
    pub c_penalty: f64,
    /// λ₂ used (0 when DC is disabled).
    pub lambda2: f64,
    /// Virtual cells created by net moving.
    pub virtual_cells: usize,
    /// HPWL after the placement steps of this iteration.
    pub hpwl: f64,
}

/// Result of [`run_flow`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Wall-clock placement time in seconds (the PT column of Table I).
    pub place_seconds: f64,
    /// Iterations of the wirelength-driven phase.
    pub gp_iterations: usize,
    /// Routability iterations executed.
    pub route_iterations: usize,
    /// Final HPWL of the global placement.
    pub hpwl: f64,
    /// Final density overflow.
    pub density_overflow: f64,
    /// Per-iteration log.
    pub log: Vec<RouteIterLog>,
    /// Final effective inflation ratios (present when an inflation policy
    /// ran); downstream legalization can preserve the congestion-driven
    /// spacing by legalizing with these as virtual widths.
    pub inflation_ratios: Option<Vec<f64>>,
}

impl FlowReport {
    /// Serializes the per-iteration log as CSV (header + one row per
    /// routability iteration) for external plotting.
    pub fn log_csv(&self) -> String {
        let mut out =
            String::from("iter,overflow,max_congestion,c_penalty,lambda2,virtual_cells,hpwl\n");
        for l in &self.log {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.6},{:.6},{},{:.1}\n",
                l.iter,
                l.overflow,
                l.max_congestion,
                l.c_penalty,
                l.lambda2,
                l.virtual_cells,
                l.hpwl
            ));
        }
        out
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "flow: {} wirelength iters + {} routability iters in {:.2}s",
            self.gp_iterations, self.route_iterations, self.place_seconds
        )?;
        writeln!(
            f,
            "  HPWL {:.0} um, density overflow {:.3}",
            self.hpwl, self.density_overflow
        )?;
        if let Some(last) = self.log.last() {
            write!(
                f,
                "  final routing overflow {:.1}, max congestion {:.2}, {} virtual cells",
                last.overflow, last.max_congestion, last.virtual_cells
            )?;
        } else {
            write!(f, "  (no routability iterations)")?;
        }
        Ok(())
    }
}

/// Runs the full global-placement flow on the design (Fig. 2), mutating
/// cell positions. Legalization/detailed placement and routing evaluation
/// live in `rdp-legal` / `rdp-drc`.
pub fn run_flow(design: &mut Design, cfg: &RoutabilityConfig) -> FlowReport {
    let t0 = Instant::now();

    // PG rail selection (before placement, Fig. 2 top).
    let grid = design.gcell_grid();
    let pg = cfg.dpa.map(|_| PgDensity::new(design, &grid, &cfg.dpa_cfg));
    let static_pg = match (cfg.dpa, &pg) {
        (Some(DpaMode::Static), Some(p)) => Some(p.density_map(None)),
        _ => None,
    };

    // Phase 1: wirelength-driven global placement.
    let mut session = GpSession::new(design, cfg.gp.clone());
    let mut gp_iterations = 0;
    for i in 0..cfg.gp.max_iters {
        let extras = StepExtras {
            extra_density: static_pg.as_ref(),
            ..Default::default()
        };
        let report = session.step(design, &extras);
        gp_iterations = i + 1;
        if i >= 20 && report.overflow < cfg.gp.stop_overflow {
            break;
        }
    }

    // Phase 2: routability-driven iterations.
    let router = GlobalRouter::new(cfg.router.clone());
    let mut inflation = InflationState::new(
        design.num_cells(),
        cfg.inflation,
        InflationBounds::default(),
    );
    let mut log = Vec::new();
    let mut best_penalty = f64::INFINITY;
    let mut stale = 0usize;
    let mut route_iterations = 0;
    // Best-so-far snapshot: the routability iterations can regress (or,
    // with aggressive settings, diverge), so the flow keeps the placement
    // with the lowest observed score and restores it at the end. Total
    // overflow alone would reward scattering (spreading cells thins the
    // per-G-cell demand while total wirelength explodes), so the score
    // adds the routed wirelength in G-cell pitches with a small weight.
    // Overlapped intermediate placements route deceptively well (stacked
    // cells make nets short), so the score also penalizes real-area
    // density overflow beyond what legalization absorbs cheaply.
    let pitch = 0.5 * (grid.bin_w() + grid.bin_h());
    let overflow_allowance = (1.5 * cfg.gp.stop_overflow).max(0.12);
    let snapshot_score = |route: &rdp_route::RouteResult, real_density_overflow: f64| {
        route.maps.total_overflow()
            + 0.02 * route.wirelength / pitch
            + 1e6 * (real_density_overflow - overflow_allowance).max(0.0)
    };
    let real_density_overflow = |session: &GpSession, design: &Design| {
        session
            .model()
            .compute(design, None, None, cfg.gp.target_density)
            .overflow
    };
    let mut best_positions: Option<(f64, Vec<rdp_db::Point>)> = None;

    for t in 1..=cfg.max_route_iters {
        let route = router.route(design);
        let field = match cfg.dc_source {
            DcSource::Router => CongestionField::from_route(design, &route),
            DcSource::Rudy => CongestionField::from_rudy(design),
        };
        let score_now = snapshot_score(&route, real_density_overflow(&session, design));
        if best_positions
            .as_ref()
            .map(|(s, _)| score_now < *s)
            .unwrap_or(true)
        {
            best_positions = Some((score_now, design.positions().to_vec()));
        }

        // MCI.
        inflation.update(design, &field);
        let ratios = match cfg.inflation {
            InflationPolicy::None => None,
            _ => Some(inflation.ratios()),
        };

        // DPA.
        let pg_map = match (cfg.dpa, &pg) {
            (Some(DpaMode::Dynamic), Some(p)) => Some(p.density_map(Some(&field))),
            (Some(DpaMode::Static), _) => static_pg.clone(),
            _ => None,
        };

        // DC: net-moving congestion gradients + λ₂.
        let (cgrad, l2, c_penalty, virtual_cells) = if cfg.enable_dc {
            let g = congestion_gradients(design, &field, &cfg.netmove);
            let l2 = cfg.lambda2_scale * lambda2(design, &field, &g);
            let pen = g.penalty;
            let vc = g.virtual_cells;
            (Some(g), l2, pen, vc)
        } else {
            (None, 0.0, 0.0, 0)
        };

        // Solve problem (5) for a burst of Nesterov steps, re-anchoring
        // the density weight so wirelength stays in the objective.
        session.restart_momentum();
        {
            let extras = StepExtras {
                inflation: ratios,
                extra_density: pg_map.as_ref(),
                congestion_grad: cgrad.as_ref().map(|g| (g.grad.as_slice(), l2)),
            };
            session.rebalance_lambda1(design, &extras, cfg.lambda1_rebalance);
        }
        for _ in 0..cfg.gp_iters_per_route {
            let extras = StepExtras {
                inflation: ratios,
                extra_density: pg_map.as_ref(),
                congestion_grad: cgrad.as_ref().map(|g| (g.grad.as_slice(), l2)),
            };
            session.step(design, &extras);
        }

        route_iterations = t;
        log.push(RouteIterLog {
            iter: t,
            overflow: route.maps.total_overflow(),
            max_congestion: route.max_congestion(),
            c_penalty,
            lambda2: l2,
            virtual_cells,
            hpwl: design.hpwl(),
        });

        // Stop when the congestion objective no longer decreases
        // (C(x, y) when DC is active; routing overflow otherwise).
        let score = if cfg.enable_dc {
            c_penalty
        } else {
            route.maps.total_overflow()
        };
        if score < best_penalty - 1e-9 {
            best_penalty = score;
            stale = 0;
        } else {
            stale += 1;
            if stale >= cfg.stop_patience {
                break;
            }
        }
    }

    // Score the final placement too, then restore the best snapshot.
    if cfg.max_route_iters > 0 {
        let final_score = snapshot_score(
            &router.route(design),
            real_density_overflow(&session, design),
        );
        if let Some((best_score, positions)) = &best_positions {
            if *best_score < final_score {
                design.set_positions(positions);
            }
        }
    }

    let inflation_ratios = match cfg.inflation {
        InflationPolicy::None => None,
        _ if cfg.max_route_iters == 0 => None,
        _ => Some(inflation.ratios().to_vec()),
    };

    FlowReport {
        place_seconds: t0.elapsed().as_secs_f64(),
        gp_iterations,
        route_iterations,
        hpwl: design.hpwl(),
        density_overflow: session.overflow(),
        log,
        inflation_ratios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn congested_design(seed: u64) -> Design {
        generate(
            "flow",
            &GenParams {
                num_cells: 400,
                num_macros: 2,
                macro_fraction: 0.12,
                utilization: 0.6,
                congestion_margin: 0.8,
                io_terminals: 8,
                high_fanout_nets: 3,
                rail_pitch: 1.0,
                seed,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn xplace_preset_runs_no_routability_iters() {
        let mut d = congested_design(1);
        let r = run_flow(&mut d, &RoutabilityConfig::preset(PlacerPreset::Xplace));
        assert_eq!(r.route_iterations, 0);
        assert!(r.log.is_empty());
        assert!(r.gp_iterations > 20);
        assert!(r.hpwl > 0.0);
    }

    #[test]
    fn ours_preset_runs_and_logs() {
        let mut d = congested_design(2);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 120;
        cfg.max_route_iters = 4;
        cfg.gp_iters_per_route = 10;
        let r = run_flow(&mut d, &cfg);
        assert!(r.route_iterations >= 1);
        assert_eq!(r.log.len(), r.route_iterations);
        // DC is active: λ₂ and virtual cells appear once congestion exists.
        let any_virtual = r.log.iter().any(|l| l.virtual_cells > 0);
        assert!(any_virtual, "log: {:?}", r.log);
        assert!(r.place_seconds > 0.0);
    }

    #[test]
    fn ours_reduces_routing_overflow_vs_xplace() {
        // The headline claim in miniature: the routability flow must not
        // route worse than the wirelength-only flow on a congested design.
        let mut d_x = congested_design(3);
        let mut d_o = congested_design(3);

        let mut xcfg = RoutabilityConfig::preset(PlacerPreset::Xplace);
        xcfg.gp.max_iters = 150;
        run_flow(&mut d_x, &xcfg);

        let mut ocfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        ocfg.gp.max_iters = 150;
        ocfg.max_route_iters = 5;
        ocfg.gp_iters_per_route = 12;
        run_flow(&mut d_o, &ocfg);

        let router = GlobalRouter::default();
        let over_x = router.route(&d_x).maps.total_overflow();
        let over_o = router.route(&d_o).maps.total_overflow();
        assert!(over_o <= over_x * 1.05, "ours {over_o} vs xplace {over_x}");
    }

    #[test]
    fn flow_is_deterministic() {
        let mut d1 = congested_design(4);
        let mut d2 = congested_design(4);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 80;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 6;
        let r1 = run_flow(&mut d1, &cfg);
        let r2 = run_flow(&mut d2, &cfg);
        assert_eq!(d1.positions(), d2.positions());
        assert_eq!(r1.route_iterations, r2.route_iterations);
    }

    /// The best-snapshot guard: the final placement's routed overflow is
    /// never dramatically worse than the best iteration observed in the
    /// log (catches the divergence failure mode).
    #[test]
    fn snapshot_restore_bounds_final_overflow() {
        let mut d = congested_design(6);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 120;
        cfg.max_route_iters = 8;
        cfg.gp_iters_per_route = 16;
        cfg.stop_patience = 99; // never stop early: stress the guard
        let r = run_flow(&mut d, &cfg);
        let best_logged = r
            .log
            .iter()
            .map(|l| l.overflow)
            .fold(f64::INFINITY, f64::min);
        let final_overflow = GlobalRouter::new(cfg.router.clone())
            .route(&d)
            .maps
            .total_overflow();
        assert!(
            final_overflow <= best_logged * 1.5 + 10.0,
            "final {final_overflow} vs best logged {best_logged}"
        );
    }

    #[test]
    fn inflation_ratios_reported_only_with_inflation() {
        let mut d = congested_design(7);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::XplaceRoute);
        cfg.gp.max_iters = 80;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 6;
        let r = run_flow(&mut d, &cfg);
        let ratios = r.inflation_ratios.expect("monotone inflation ran");
        assert_eq!(ratios.len(), d.num_cells());
        assert!(ratios.iter().all(|&x| x >= 0.9 && x <= 2.0));
    }

    #[test]
    fn log_csv_has_one_row_per_iteration() {
        let mut d = congested_design(9);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 3;
        cfg.gp_iters_per_route = 4;
        let r = run_flow(&mut d, &cfg);
        let csv = r.log_csv();
        assert_eq!(csv.lines().count(), r.route_iterations + 1);
        assert!(csv.starts_with("iter,overflow"));
        // Every row parses back to the right column count.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 7, "{line}");
        }
    }

    #[test]
    fn flow_report_display_is_informative() {
        let mut d = congested_design(8);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 4;
        let r = run_flow(&mut d, &cfg);
        let shown = format!("{r}");
        assert!(shown.contains("routability iters"));
        assert!(shown.contains("HPWL"));
        assert!(shown.contains("virtual cells"));
    }

    #[test]
    fn presets_differ() {
        let x = RoutabilityConfig::preset(PlacerPreset::Xplace);
        let xr = RoutabilityConfig::preset(PlacerPreset::XplaceRoute);
        let ours = RoutabilityConfig::preset(PlacerPreset::Ours);
        assert_eq!(x.max_route_iters, 0);
        assert!(!xr.enable_dc && ours.enable_dc);
        assert_eq!(xr.dpa, Some(DpaMode::Static));
        assert_eq!(ours.dpa, Some(DpaMode::Dynamic));
    }
}
