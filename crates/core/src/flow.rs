//! The routability-driven global placement flow of Fig. 2.
//!
//! ```text
//!   PG-rail selection  →  wirelength-driven GP (Xplace)  →  loop {
//!       global route → congestion map
//!       momentum cell inflation (MCI)
//!       dynamic pin-accessibility density (DPA)
//!       congestion gradients for net moving (DC) + λ₂
//!       Nesterov steps on problem (5)
//!   } until C(x,y) stops decreasing or the iteration cap
//! ```
//!
//! The same entry point also runs the two baselines of Table I by
//! configuration: **Xplace** (no routability loop) and **Xplace-Route**
//! (monotone inflation + static PG density, no net moving).
//!
//! ## Robustness (rdp-guard)
//!
//! The flow is guarded end to end:
//!
//! - every Nesterov step runs NaN/Inf sentinels (see
//!   [`rdp_guard::HealthPolicy`]); a poisoned or diverging step is rolled
//!   back to the last good optimizer state with γ boosted and λ₁ damped,
//!   up to `max_rollbacks` times before a typed
//!   [`RdpError::Diverged`](rdp_guard::RdpError) is returned;
//! - an unusable router congestion map degrades to the RUDY estimate and
//!   a non-finite PG density skips the D^PG addend — both recorded as
//!   [`Warning`]s in the [`FlowReport`], never panics;
//! - [`run_flow_with`] can emit a [`FlowCheckpoint`] at the top of every
//!   routability iteration and resume from one bit-for-bit.

use std::time::Instant;

use rdp_db::{Design, Point};
use rdp_guard::{RdpError, SnapshotReader, SnapshotWriter, Stage, Warning};
use rdp_obs::Collector;
use rdp_par::Pool;
use rdp_predict::{qor_drift, CongestionPredictor, FeatureExtractor, PredictConfig, RoutedQor};
use rdp_route::{
    CapacityMaps, GlobalRouter, IncrementalConfig, IncrementalRouter, ResyncReason, RouterConfig,
};

use crate::congestion::CongestionField;
use crate::dpa::{DpaConfig, PgDensity};
use crate::inflate::{InflationBounds, InflationPolicy, InflationSnapshot, InflationState};
use crate::netmove::{congestion_gradients, lambda2, NetMoveConfig};
#[allow(unused_imports)]
use crate::placer::GlobalPlacer;
use crate::placer::{GpSession, GpSnapshot, PlacerConfig, StepExtras};

/// Which congestion model feeds the differentiable congestion field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcSource {
    /// The paper: demand/capacity from the global router (Eq. (3)).
    Router,
    /// The RUDY bounding-box estimate the paper argues against
    /// (Fig. 1(b)) — kept for the router-vs-RUDY ablation.
    Rudy,
}

/// How the pin-accessibility density is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpaMode {
    /// Static pre-placement adjustment (the Xplace-Route baseline).
    Static,
    /// The paper's congestion-gated dynamic adjustment (Eqs. (13)–(15)).
    Dynamic,
}

/// Named placer presets corresponding to the columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacerPreset {
    /// Wirelength-driven placement only.
    Xplace,
    /// Monotone historical inflation + static PG density.
    XplaceRoute,
    /// The paper: momentum inflation + differentiable net moving + dynamic
    /// pin-accessibility density.
    Ours,
}

/// Full configuration of the routability-driven flow.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutabilityConfig {
    /// Global-placement engine options.
    pub gp: PlacerConfig,
    /// Router options for congestion estimation.
    pub router: RouterConfig,
    /// Cell inflation policy (MCI and its baselines).
    pub inflation: InflationPolicy,
    /// Enable the differentiable congestion / net-moving term (DC).
    pub enable_dc: bool,
    /// Net-moving tuning.
    pub netmove: NetMoveConfig,
    /// Pin-accessibility density mode, or `None` to disable.
    pub dpa: Option<DpaMode>,
    /// DPA tuning.
    pub dpa_cfg: DpaConfig,
    /// Maximum routability iterations (router invocations).
    pub max_route_iters: usize,
    /// Nesterov steps of problem (5) per routability iteration.
    pub gp_iters_per_route: usize,
    /// Stop after this many consecutive non-improving routability
    /// iterations (the "C(x,y) no longer decreases" rule).
    pub stop_patience: usize,
    /// Congestion model feeding the DC field (router per the paper, or
    /// RUDY for the ablation).
    pub dc_source: DcSource,
    /// λ₁ re-anchoring factor applied at each routability iteration
    /// (see [`GpSession::rebalance_lambda1`]).
    pub lambda1_rebalance: f64,
    /// Scale on the Eq. (10) congestion weight λ₂ (1.0 = the paper's
    /// formula; exposed for the ablation benches).
    pub lambda2_scale: f64,
    /// Use the incremental router for the per-iteration congestion
    /// estimate: between routability iterations only nets dirtied by cell
    /// movement are ripped up and re-routed. The final route is always a
    /// full route. Off by default. Checkpointed runs (an `on_checkpoint`
    /// hook installed) force a full resync at every checkpoint boundary so
    /// a killed-and-resumed run — which starts the incremental state
    /// fresh — reproduces the uninterrupted run bit-for-bit; the
    /// incremental speedup therefore only materializes in
    /// non-checkpointed runs.
    pub incremental_routing: bool,
    /// Movement threshold for incremental dirtiness, as a fraction of the
    /// smaller G-cell dimension (cells drifting less than this since their
    /// last-routed anchor do not dirty their nets). The default of 1.0 —
    /// one G-cell pitch — keeps the congestion estimate's staleness below
    /// the grid's own resolution: sub-bin drift rarely changes a route,
    /// and the periodic/drift-triggered full resync bounds accumulation.
    pub incremental_move_threshold: f64,
    /// Incremental-router periodic resync cadence: a full re-route every
    /// this many router calls (`0` disables the periodic trigger; the
    /// drift trigger still applies). Mirrors
    /// [`rdp_route::IncrementalConfig::resync_every`].
    pub incremental_resync_every: usize,
    /// Incremental-router drift bail: fraction of dirty nets above which
    /// a call falls back to a full re-route. Mirrors
    /// [`rdp_route::IncrementalConfig::drift_frac`].
    pub incremental_drift_frac: f64,
    /// Online congestion prediction (the `rdp-predict` fast-path): after
    /// `warmup_routes` real routes the flow alternates model-predicted
    /// congestion maps for MCI / DPA / net-moving iterations, skipping the
    /// router on those iterations. Every real route measures
    /// predicted-vs-routed drift; drift above `drift_tol` suspends
    /// substitution (full routing) until the model re-earns trust.
    /// `None` disables the fast-path.
    pub predict: Option<PredictConfig>,
}

impl RoutabilityConfig {
    /// The configuration used for a Table I column.
    pub fn preset(p: PlacerPreset) -> Self {
        let base = RoutabilityConfig {
            gp: PlacerConfig::default(),
            router: RouterConfig::default(),
            inflation: InflationPolicy::None,
            enable_dc: false,
            netmove: NetMoveConfig::default(),
            dpa: None,
            dpa_cfg: DpaConfig::default(),
            max_route_iters: 0,
            gp_iters_per_route: 24,
            stop_patience: 2,
            dc_source: DcSource::Router,
            lambda1_rebalance: 2.0,
            lambda2_scale: 1.0,
            incremental_routing: false,
            incremental_move_threshold: 1.0,
            incremental_resync_every: 16,
            incremental_drift_frac: 0.5,
            predict: None,
        };
        match p {
            PlacerPreset::Xplace => base,
            PlacerPreset::XplaceRoute => RoutabilityConfig {
                inflation: InflationPolicy::Monotone { beta: 0.6 },
                dpa: Some(DpaMode::Static),
                max_route_iters: 8,
                ..base
            },
            PlacerPreset::Ours => RoutabilityConfig {
                inflation: InflationPolicy::Momentum { alpha: 0.4 },
                enable_dc: true,
                dpa: Some(DpaMode::Dynamic),
                max_route_iters: 10,
                lambda2_scale: 0.5,
                ..base
            },
        }
    }

    /// A CI-sized variant of [`RoutabilityConfig::preset`]: the same
    /// technique mix with tighter iteration budgets, for the scenario
    /// matrix and other fast gates running many small instances.
    pub fn preset_fast(p: PlacerPreset) -> Self {
        let mut cfg = RoutabilityConfig::preset(p);
        cfg.gp.max_iters = cfg.gp.max_iters.min(220);
        cfg.gp_iters_per_route = 16;
        cfg.max_route_iters = match p {
            PlacerPreset::Xplace => 0,
            PlacerPreset::XplaceRoute => 4,
            PlacerPreset::Ours => 5,
        };
        cfg
    }
}

impl std::str::FromStr for PlacerPreset {
    type Err = String;

    /// Accepts the Table-1 column names as used by the CLI:
    /// `xplace`, `xplace-route` (or `xr`), and `ours`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "xplace" => Ok(PlacerPreset::Xplace),
            "xplace-route" | "xplace_route" | "xr" => Ok(PlacerPreset::XplaceRoute),
            "ours" => Ok(PlacerPreset::Ours),
            other => Err(format!(
                "unknown preset `{other}` (expected xplace, xplace-route, or ours)"
            )),
        }
    }
}

impl Default for RoutabilityConfig {
    fn default() -> Self {
        RoutabilityConfig::preset(PlacerPreset::Ours)
    }
}

/// One entry of the flow's stage log (for the Fig. 2 walk-through).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteIterLog {
    /// Routability iteration number (1-based).
    pub iter: usize,
    /// Total routing overflow after this iteration's routing.
    pub overflow: f64,
    /// Maximum Eq. (3) congestion.
    pub max_congestion: f64,
    /// Congestion penalty C(x, y) (0 when DC is disabled).
    pub c_penalty: f64,
    /// λ₂ used (0 when DC is disabled).
    pub lambda2: f64,
    /// Virtual cells created by net moving.
    pub virtual_cells: usize,
    /// HPWL after the placement steps of this iteration.
    pub hpwl: f64,
    /// Whether this iteration's congestion came from the learned
    /// predictor instead of the router (`overflow` / `max_congestion` are
    /// then model estimates).
    pub predicted: bool,
}

/// Result of [`run_flow`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Wall-clock placement time in seconds (the PT column of Table I).
    pub place_seconds: f64,
    /// Iterations of the wirelength-driven phase.
    pub gp_iterations: usize,
    /// Routability iterations executed.
    pub route_iterations: usize,
    /// Routability iterations that substituted a predicted congestion map
    /// for the router (subset of `route_iterations`).
    pub predicted_iterations: usize,
    /// Final HPWL of the global placement.
    pub hpwl: f64,
    /// Final density overflow.
    pub density_overflow: f64,
    /// Per-iteration log.
    pub log: Vec<RouteIterLog>,
    /// Final effective inflation ratios (present when an inflation policy
    /// ran); downstream legalization can preserve the congestion-driven
    /// spacing by legalizing with these as virtual widths.
    pub inflation_ratios: Option<Vec<f64>>,
    /// Degraded-mode events the flow worked around (RUDY fallback,
    /// skipped D^PG addend, divergence rollbacks).
    pub warnings: Vec<Warning>,
    /// Divergence rollbacks performed across both phases.
    pub rollbacks: usize,
    /// When the flow was resumed from a [`FlowCheckpoint`], the
    /// routability iteration it restarted at.
    pub resumed_from: Option<usize>,
}

impl FlowReport {
    /// Serializes the per-iteration log as CSV (header + one row per
    /// routability iteration) for external plotting.
    pub fn log_csv(&self) -> String {
        let mut out = String::from(
            "iter,overflow,max_congestion,c_penalty,lambda2,virtual_cells,hpwl,predicted\n",
        );
        for l in &self.log {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.6},{:.6},{},{:.1},{}\n",
                l.iter,
                l.overflow,
                l.max_congestion,
                l.c_penalty,
                l.lambda2,
                l.virtual_cells,
                l.hpwl,
                u8::from(l.predicted)
            ));
        }
        out
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "flow: {} wirelength iters + {} routability iters in {:.2}s",
            self.gp_iterations, self.route_iterations, self.place_seconds
        )?;
        if self.predicted_iterations > 0 {
            writeln!(
                f,
                "  {} of {} routability iters used predicted congestion (router skipped)",
                self.predicted_iterations, self.route_iterations
            )?;
        }
        writeln!(
            f,
            "  HPWL {:.0} um, density overflow {:.3}",
            self.hpwl, self.density_overflow
        )?;
        if let Some(last) = self.log.last() {
            write!(
                f,
                "  final routing overflow {:.1}, max congestion {:.2}, {} virtual cells",
                last.overflow, last.max_congestion, last.virtual_cells
            )?;
        } else {
            write!(f, "  (no routability iterations)")?;
        }
        if !self.warnings.is_empty() || self.rollbacks > 0 {
            write!(
                f,
                "\n  degraded: {} warning(s), {} rollback(s)",
                self.warnings.len(),
                self.rollbacks
            )?;
            for w in &self.warnings {
                write!(f, "\n    {w}")?;
            }
        }
        Ok(())
    }
}

/// Deterministic fault injected into [`run_flow_with`] by the robustness
/// suite. Each fault fires at most once.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowFault {
    /// Poison the Nesterov reference state with NaN right before GP step
    /// `gp_iter` of routability iteration `route_iter` (`route_iter == 0`
    /// targets the wirelength phase).
    NanReference {
        /// Routability iteration (0 = wirelength phase).
        route_iter: usize,
        /// GP step within that iteration.
        gp_iter: usize,
    },
    /// Poison the first net-moving congestion gradient at routability
    /// iteration `route_iter`.
    NanCongestionGrad {
        /// Routability iteration at which to poison the gradient.
        route_iter: usize,
    },
    /// Triple the routed wire demand at routability iteration
    /// `route_iter` (after routing, before the congestion field is
    /// built), simulating a sudden congestion regime shift the learned
    /// predictor cannot have seen — the drift gate must trip.
    CongestionSpike {
        /// Routability iteration at which to spike the routed demand.
        route_iter: usize,
    },
}

/// Checkpoint/resume and fault-injection hooks for [`run_flow_with`].
#[derive(Default)]
pub struct FlowControl<'a> {
    /// Resume from this checkpoint instead of running phase 1.
    pub resume: Option<FlowCheckpoint>,
    /// Called with a fresh checkpoint at the top of every routability
    /// iteration (before that iteration's routing).
    pub on_checkpoint: Option<&'a mut dyn FnMut(&FlowCheckpoint)>,
    /// Polled at the top of every routability iteration, right after
    /// `on_checkpoint`. Returning `Some(err)` aborts the flow with that
    /// error — the service layer uses this for deadlines, cancellation,
    /// and drain, so the last persisted checkpoint is at most one
    /// iteration stale when the flow stops.
    pub interrupt: Option<&'a mut dyn FnMut(usize) -> Option<RdpError>>,
    /// Deterministic one-shot fault injection (robustness suite).
    pub fault: Option<FlowFault>,
    /// Observability sink (disabled by default): every flow stage gets a
    /// span, per-iteration convergence series are recorded, and each
    /// [`Warning`]/rollback is mirrored as a structured event the moment
    /// it happens. The collector only records — timestamps never feed
    /// computation — so results are bitwise identical either way.
    pub obs: Collector,
}

/// Complete flow state captured at the top of a routability iteration.
///
/// A flow resumed from a checkpoint reproduces the uninterrupted run
/// bit-for-bit: the checkpoint lands exactly where
/// [`GpSession::restart_momentum`] resets the Nesterov momentum, so the
/// optimizer scalars plus positions are the whole state. Everything that
/// is *not* stored here (PG rails, base γ, first-step distance) is
/// recomputed deterministically from the design.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowCheckpoint {
    /// Routability iteration the resumed flow starts at (1-based).
    pub next_route_iter: usize,
    /// Wirelength-phase iterations already completed.
    pub gp_iterations: usize,
    /// All cell positions (fixed cells included) at checkpoint time.
    pub positions: Vec<Point>,
    /// Optimizer scalars + movable positions of the GP session.
    pub session: GpSnapshot,
    /// Inflation controller state (MCI momentum etc.).
    pub inflation: InflationSnapshot,
    /// Best stopping-rule score seen so far.
    pub best_penalty: f64,
    /// Consecutive non-improving iterations.
    pub stale: usize,
    /// Best-snapshot guard: (score, all-cell positions).
    pub best: Option<(f64, Vec<Point>)>,
    /// Per-iteration log accumulated so far.
    pub log: Vec<RouteIterLog>,
    /// Warnings accumulated so far.
    pub warnings: Vec<Warning>,
    /// Rollbacks performed so far.
    pub rollbacks: usize,
    /// Congestion-predictor state (normal equations, weights, schedule)
    /// when the prediction fast-path is active; resuming restores it so
    /// the substitution schedule and fitted model continue bitwise.
    pub predictor: Option<CongestionPredictor>,
}

fn stage_code(s: Stage) -> u64 {
    match s {
        Stage::Parse => 0,
        Stage::Design => 1,
        Stage::WirelengthGp => 2,
        Stage::Routability => 3,
        Stage::Routing => 4,
        Stage::Poisson => 5,
        Stage::NetMoving => 6,
        Stage::Inflation => 7,
        Stage::Dpa => 8,
        Stage::Checkpoint => 9,
    }
}

fn stage_from_code(c: u64) -> Result<Stage, RdpError> {
    Ok(match c {
        0 => Stage::Parse,
        1 => Stage::Design,
        2 => Stage::WirelengthGp,
        3 => Stage::Routability,
        4 => Stage::Routing,
        5 => Stage::Poisson,
        6 => Stage::NetMoving,
        7 => Stage::Inflation,
        8 => Stage::Dpa,
        9 => Stage::Checkpoint,
        _ => return Err(RdpError::checkpoint(format!("unknown stage code {c}"))),
    })
}

impl FlowCheckpoint {
    /// Current checkpoint format version. Version 2 added the per-entry
    /// `predicted` flag in the log and the optional predictor section;
    /// version-1 checkpoints still load (no predictor, all-real log).
    pub const VERSION: u32 = 2;

    /// Serializes into the versioned, checksummed `RDPSNAP` binary format.
    /// All floats are stored bit-exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(Self::VERSION);
        w.put_u64(self.next_route_iter as u64);
        w.put_u64(self.gp_iterations as u64);
        w.put_points(&self.positions);
        w.put_points(&self.session.positions);
        w.put_f64(self.session.lambda1);
        w.put_f64(self.session.last_overflow);
        w.put_f64(self.session.gamma_boost);
        w.put_u64(self.session.steps_done);
        w.put_f64s(&self.inflation.r);
        w.put_f64s(&self.inflation.effective);
        w.put_f64s(&self.inflation.delta_r);
        w.put_f64s(&self.inflation.c_prev);
        w.put_f64(self.inflation.mean_prev);
        w.put_u64(self.inflation.t);
        w.put_f64(self.best_penalty);
        w.put_u64(self.stale as u64);
        match &self.best {
            Some((score, positions)) => {
                w.put_u64(1);
                w.put_f64(*score);
                w.put_points(positions);
            }
            None => w.put_u64(0),
        }
        w.put_u64(self.log.len() as u64);
        for l in &self.log {
            w.put_u64(l.iter as u64);
            w.put_f64(l.overflow);
            w.put_f64(l.max_congestion);
            w.put_f64(l.c_penalty);
            w.put_f64(l.lambda2);
            w.put_u64(l.virtual_cells as u64);
            w.put_f64(l.hpwl);
            w.put_u64(u64::from(l.predicted));
        }
        w.put_u64(self.warnings.len() as u64);
        for warn in &self.warnings {
            w.put_u64(stage_code(warn.stage));
            w.put_u64(warn.iteration as u64);
            w.put_str(&warn.message);
        }
        w.put_u64(self.rollbacks as u64);
        match &self.predictor {
            Some(p) => {
                w.put_u64(1);
                p.write_into(&mut w);
            }
            None => w.put_u64(0),
        }
        w.finish()
    }

    /// Deserializes [`FlowCheckpoint::to_bytes`] output, validating magic,
    /// version, checksum, and exact length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RdpError> {
        let mut r = SnapshotReader::new(bytes, Self::VERSION)?;
        let version = r.version();
        let next_route_iter = r.take_u64()? as usize;
        let gp_iterations = r.take_u64()? as usize;
        let positions = r.take_points()?;
        let session = GpSnapshot {
            positions: r.take_points()?,
            lambda1: r.take_f64()?,
            last_overflow: r.take_f64()?,
            gamma_boost: r.take_f64()?,
            steps_done: r.take_u64()?,
        };
        let inflation = InflationSnapshot {
            r: r.take_f64s()?,
            effective: r.take_f64s()?,
            delta_r: r.take_f64s()?,
            c_prev: r.take_f64s()?,
            mean_prev: r.take_f64()?,
            t: r.take_u64()?,
        };
        let best_penalty = r.take_f64()?;
        let stale = r.take_u64()? as usize;
        let best = match r.take_u64()? {
            0 => None,
            1 => Some((r.take_f64()?, r.take_points()?)),
            other => {
                return Err(RdpError::checkpoint(format!(
                    "invalid best-snapshot flag {other}"
                )))
            }
        };
        let n_log = r.take_u64()? as usize;
        if n_log > bytes.len() {
            return Err(RdpError::checkpoint(format!(
                "implausible log length {n_log}"
            )));
        }
        let mut log = Vec::with_capacity(n_log);
        for _ in 0..n_log {
            log.push(RouteIterLog {
                iter: r.take_u64()? as usize,
                overflow: r.take_f64()?,
                max_congestion: r.take_f64()?,
                c_penalty: r.take_f64()?,
                lambda2: r.take_f64()?,
                virtual_cells: r.take_u64()? as usize,
                hpwl: r.take_f64()?,
                predicted: if version >= 2 {
                    r.take_u64()? != 0
                } else {
                    false
                },
            });
        }
        let n_warn = r.take_u64()? as usize;
        if n_warn > bytes.len() {
            return Err(RdpError::checkpoint(format!(
                "implausible warning count {n_warn}"
            )));
        }
        let mut warnings = Vec::with_capacity(n_warn);
        for _ in 0..n_warn {
            let stage = stage_from_code(r.take_u64()?)?;
            let iteration = r.take_u64()? as usize;
            let message = r.take_str()?;
            warnings.push(Warning {
                stage,
                iteration,
                message,
            });
        }
        let rollbacks = r.take_u64()? as usize;
        let predictor = if version >= 2 {
            match r.take_u64()? {
                0 => None,
                1 => Some(CongestionPredictor::read_from(&mut r)?),
                other => {
                    return Err(RdpError::checkpoint(format!(
                        "invalid predictor flag {other}"
                    )))
                }
            }
        } else {
            None
        };
        r.finish()?;
        Ok(FlowCheckpoint {
            next_route_iter,
            gp_iterations,
            positions,
            session,
            inflation,
            best_penalty,
            stale,
            best,
            log,
            warnings,
            rollbacks,
            predictor,
        })
    }
}

/// Records a degraded-mode warning in the report **and** mirrors it into
/// the trace as a `guard_warning` instant at emission time (satisfying the
/// report/trace parity contract — see `tests/obs_integration.rs`).
fn note_warning(obs: &Collector, warnings: &mut Vec<Warning>, w: Warning) {
    obs.instant("guard_warning", w.iteration as i64, w.to_string());
    obs.counter_add("guard_warnings", 1);
    warnings.push(w);
}

/// Consumes `fault` if it is a [`FlowFault::NanReference`] aimed at this
/// exact (routability iteration, GP step) pair.
fn take_fault(fault: &mut Option<FlowFault>, route_iter: usize, gp_iter: usize) -> bool {
    match *fault {
        Some(FlowFault::NanReference {
            route_iter: rt,
            gp_iter: gi,
        }) if rt == route_iter && gi == gp_iter => {
            *fault = None;
            true
        }
        _ => false,
    }
}

/// Runs the full global-placement flow on the design (Fig. 2), mutating
/// cell positions. Legalization/detailed placement and routing evaluation
/// live in `rdp-legal` / `rdp-drc`.
///
/// Numerical blow-ups roll back and re-tune automatically (up to
/// `cfg.gp.health.max_rollbacks`); unrecoverable divergence or invalid
/// configuration returns a typed [`RdpError`] instead of panicking.
pub fn run_flow(design: &mut Design, cfg: &RoutabilityConfig) -> Result<FlowReport, RdpError> {
    run_flow_with(design, cfg, FlowControl::default())
}

/// [`run_flow`] with checkpoint/resume and fault-injection hooks.
pub fn run_flow_with(
    design: &mut Design,
    cfg: &RoutabilityConfig,
    mut ctrl: FlowControl<'_>,
) -> Result<FlowReport, RdpError> {
    let t0 = Instant::now();
    let health = cfg.gp.health;
    let grid = design.gcell_grid();

    let resume = ctrl.resume.take();
    let resumed_from = resume.as_ref().map(|cp| cp.next_route_iter);
    let mut fault = ctrl.fault;
    let obs = ctrl.obs.clone();
    let mut warnings: Vec<Warning> = Vec::new();
    let mut rollbacks = 0usize;

    // Degraded mode: a design with no movable cells (all-fixed netlists
    // and similar adversarial inputs) has nothing to optimize. Report the
    // placement as-is with a warning instead of diverging or panicking on
    // the empty optimizer state.
    if design.movable_cells().next().is_none() {
        note_warning(
            &obs,
            &mut warnings,
            Warning::new(
                Stage::WirelengthGp,
                0,
                "no movable cells; skipping placement (degraded mode)",
            ),
        );
        if obs.is_enabled() {
            obs.gauge_set("final_hpwl", design.hpwl());
            obs.gauge_set("final_density_overflow", 0.0);
        }
        return Ok(FlowReport {
            place_seconds: t0.elapsed().as_secs_f64(),
            gp_iterations: 0,
            route_iterations: 0,
            predicted_iterations: 0,
            hpwl: design.hpwl(),
            density_overflow: 0.0,
            log: Vec::new(),
            inflation_ratios: None,
            warnings,
            rollbacks: 0,
            resumed_from,
        });
    }

    // PG rail selection (before placement, Fig. 2 top). Rails and macro
    // outlines are fixed, so this is position-independent and recomputes
    // identically on resume. A non-finite track density (degenerate rail
    // geometry) skips the D^PG addend instead of poisoning the density.
    let pg = match cfg.dpa {
        Some(_) => {
            let degenerate_rail = design.rails().iter().any(|r| {
                !(r.rect.lo.x.is_finite()
                    && r.rect.lo.y.is_finite()
                    && r.rect.hi.x.is_finite()
                    && r.rect.hi.y.is_finite())
            });
            let derived = if degenerate_rail {
                Err(RdpError::non_finite(
                    Stage::Dpa,
                    "PG rail geometry",
                    None,
                    0,
                    f64::NAN,
                ))
            } else {
                let p = PgDensity::new(design, &grid, &cfg.dpa_cfg);
                health
                    .check_map(Stage::Dpa, "PG track density", None, &p.density_map(None))
                    .map(|()| p)
            };
            match derived {
                Ok(p) => Some(p),
                Err(e) => {
                    if resume.is_none() {
                        note_warning(
                            &obs,
                            &mut warnings,
                            Warning::new(Stage::Dpa, 0, format!("{e}; skipping the D^PG addend")),
                        );
                    }
                    None
                }
            }
        }
        None => None,
    };
    let static_pg = match (cfg.dpa, &pg) {
        (Some(DpaMode::Static), Some(p)) => Some(p.density_map(None)),
        _ => None,
    };

    let mut inflation = InflationState::new(
        design.num_cells(),
        cfg.inflation,
        InflationBounds::default(),
    );
    let mut gp_iterations = 0usize;
    let mut log: Vec<RouteIterLog> = Vec::new();
    let mut best_penalty = f64::INFINITY;
    let mut stale = 0usize;
    let mut route_iterations = 0usize;
    let mut predicted_iterations = 0usize;
    let mut best_positions: Option<(f64, Vec<Point>)> = None;
    // Congestion-prediction fast-path: the extractor's static features
    // are position-independent and recompute identically on resume; the
    // predictor itself (model + schedule) is checkpoint state.
    let mut predictor: Option<CongestionPredictor> = None;
    let extractor = cfg.predict.as_ref().map(|_| {
        // Same capacity model the router measures overflow against, so
        // predicted and routed QoR share units.
        let caps = CapacityMaps::build(design, &cfg.router.capacity);
        FeatureExtractor::new(design, &caps)
    });
    // Rollback target: the last optimizer state that passed the health
    // checks. Re-captured after every successful step (allocation-free).
    let mut good = GpSnapshot::default();
    let start_iter;

    let mut session = match resume {
        Some(cp) => {
            if cp.positions.len() != design.num_cells() {
                return Err(RdpError::checkpoint(format!(
                    "checkpoint carries {} cell positions, design has {}",
                    cp.positions.len(),
                    design.num_cells()
                )));
            }
            design.set_positions(&cp.positions);
            let mut session = GpSession::resume(design, cfg.gp.clone(), &cp.session)?;
            session.set_obs(obs.clone());
            inflation.restore_state(&cp.inflation)?;
            gp_iterations = cp.gp_iterations;
            log = cp.log;
            best_penalty = cp.best_penalty;
            stale = cp.stale;
            best_positions = cp.best;
            route_iterations = cp.next_route_iter.saturating_sub(1);
            predicted_iterations = log.iter().filter(|l| l.predicted).count();
            warnings = cp.warnings;
            rollbacks = cp.rollbacks;
            if let Some(pc) = &cfg.predict {
                // Restore the fitted model + schedule; a checkpoint from a
                // predict-less run starts the predictor fresh.
                predictor = Some(
                    cp.predictor
                        .unwrap_or_else(|| CongestionPredictor::new(pc.clone())),
                );
            }
            start_iter = cp.next_route_iter;
            session
        }
        None => {
            // Phase 1: wirelength-driven global placement, guarded.
            let _wl_span = obs.span("wirelength_gp", "flow");
            let mut session = GpSession::new(design, cfg.gp.clone());
            session.set_obs(obs.clone());
            session.save_state_into(&mut good);
            let mut i = 0usize;
            while i < cfg.gp.max_iters {
                if take_fault(&mut fault, 0, i) {
                    session.inject_nan_reference();
                }
                let extras = StepExtras {
                    extra_density: static_pg.as_ref(),
                    ..Default::default()
                };
                match session.step(design, &extras) {
                    Ok(report) if !health.is_blowup(good.last_overflow, report.overflow) => {
                        gp_iterations = i + 1;
                        session.save_state_into(&mut good);
                        if i >= 20 && report.overflow < cfg.gp.stop_overflow {
                            break;
                        }
                        i += 1;
                    }
                    outcome => {
                        let detail = match outcome {
                            Err(e) => e.to_string(),
                            Ok(r) => format!("density overflow blew up to {:.3e}", r.overflow),
                        };
                        if rollbacks >= health.max_rollbacks {
                            return Err(RdpError::Diverged {
                                stage: Stage::WirelengthGp,
                                iteration: i,
                                rollbacks,
                                detail,
                            });
                        }
                        session.restore_state(design, &good)?;
                        session.retune_after_rollback();
                        rollbacks += 1;
                        obs.instant("rollback", 0, format!("wirelength GP step {i}: {detail}"));
                        obs.counter_add("rollbacks", 1);
                        note_warning(
                            &obs,
                            &mut warnings,
                            Warning::new(
                                Stage::WirelengthGp,
                                0,
                                format!(
                                    "step {i} rolled back ({detail}); γ ×{:.2}, λ₁ damped",
                                    session.gamma_boost()
                                ),
                            ),
                        );
                    }
                }
            }
            start_iter = 1;
            if let Some(pc) = &cfg.predict {
                predictor = Some(CongestionPredictor::new(pc.clone()));
            }
            session
        }
    };

    // Phase 2: routability-driven iterations.
    session.set_stage(Stage::Routability);
    let router = GlobalRouter::new(cfg.router.clone());
    let checkpointing = ctrl.on_checkpoint.is_some();
    // Optional incremental re-routing between iterations. Resuming from a
    // checkpoint starts with empty incremental state, so the first call
    // after a resume is a full re-route (documented on the config flag).
    let mut inc_router = if cfg.incremental_routing {
        let thr = cfg.incremental_move_threshold * grid.bin_w().min(grid.bin_h());
        Some(IncrementalRouter::new(
            GlobalRouter::new(cfg.router.clone()),
            IncrementalConfig {
                move_threshold: thr,
                resync_every: cfg.incremental_resync_every,
                drift_frac: cfg.incremental_drift_frac,
            },
        ))
    } else {
        None
    };
    // Best-so-far snapshot: the routability iterations can regress (or,
    // with aggressive settings, diverge), so the flow keeps the placement
    // with the lowest observed score and restores it at the end. Total
    // overflow alone would reward scattering (spreading cells thins the
    // per-G-cell demand while total wirelength explodes), so the score
    // adds the routed wirelength in G-cell pitches with a small weight.
    // Overlapped intermediate placements route deceptively well (stacked
    // cells make nets short), so the score also penalizes real-area
    // density overflow beyond what legalization absorbs cheaply.
    let pitch = 0.5 * (grid.bin_w() + grid.bin_h());
    let overflow_allowance = (1.5 * cfg.gp.stop_overflow).max(0.12);
    let snapshot_score = |route: &rdp_route::RouteResult, real_density_overflow: f64| {
        route.maps.total_overflow()
            + 0.02 * route.wirelength / pitch
            + 1e6 * (real_density_overflow - overflow_allowance).max(0.0)
    };
    let real_density_overflow = |session: &GpSession, design: &Design| {
        session
            .model()
            .compute(design, None, None, cfg.gp.target_density)
            .overflow
    };

    for t in start_iter..=cfg.max_route_iters {
        let _iter_span = obs.span_iter("route_iter", "flow", t as i64);
        if let Some(cb) = ctrl.on_checkpoint.as_mut() {
            let _cp_span = obs.span_iter("checkpoint", "flow", t as i64);
            obs.instant("checkpoint", t as i64, format!("routability iteration {t}"));
            let cp = FlowCheckpoint {
                next_route_iter: t,
                gp_iterations,
                positions: design.positions().to_vec(),
                session: session.save_state(),
                inflation: inflation.save_state(),
                best_penalty,
                stale,
                best: best_positions.clone(),
                log: log.clone(),
                warnings: warnings.clone(),
                rollbacks,
                predictor: predictor.clone(),
            };
            cb(&cp);
        }
        if let Some(poll) = ctrl.interrupt.as_mut() {
            if let Some(e) = poll(t) {
                return Err(e);
            }
        }

        // Prediction fast-path: when the schedule allows it (model warmed
        // up, drift gate open, alternation streak not exhausted),
        // substitute the learned congestion map and skip the router.
        let pool = Pool::global();
        let mut predicted_field: Option<(rdp_predict::PredictedCongestion, CongestionField)> = None;
        if let (Some(p), Some(fx)) = (predictor.as_mut(), extractor.as_ref()) {
            if p.want_predicted() {
                let _eval_span = obs.span_iter("predict_eval", "predict", t as i64);
                let feats = fx.extract(design, p.prev_util(), pool.clone());
                if let Some(pred) = p.predict(&feats, fx.capacity(), pool.clone()) {
                    match CongestionField::try_from_charge(design, &pred.util, &health) {
                        Ok(f) => predicted_field = Some((pred, f)),
                        Err(e) => {
                            // Degraded mode: an unusable prediction falls
                            // back to real routing this iteration.
                            obs.counter_add("predict_fallbacks", 1);
                            note_warning(
                                &obs,
                                &mut warnings,
                                Warning::new(
                                    Stage::Routing,
                                    t,
                                    format!("predicted congestion unusable ({e}); routing instead"),
                                ),
                            );
                        }
                    }
                }
            }
        }

        let (route, field, pred_qor) = if let Some((pred, f)) = predicted_field {
            let p = predictor.as_mut().expect("fast-path requires predictor");
            p.note_predicted();
            predicted_iterations += 1;
            obs.counter_add("predict_substituted", 1);
            obs.instant(
                "predict_substituted",
                t as i64,
                format!("iteration {t}: predicted congestion substituted for routing"),
            );
            (None, f, Some(pred))
        } else {
            let mut route = {
                let _route_span = obs.span_iter("route", "route", t as i64);
                match inc_router.as_mut() {
                    Some(inc) => {
                        // Checkpointed flows must resume bitwise: a resumed run
                        // starts with empty incremental state, so force the
                        // uninterrupted run onto the same all-dirty path by
                        // resyncing at every checkpoint boundary. The speedup
                        // is preserved for non-checkpointed runs.
                        if checkpointing {
                            inc.reset();
                        }
                        let r = inc.route_obs(design, &obs);
                        if let Some(st) = inc.last_stats() {
                            if st.full_resync {
                                obs.counter_add("route_resyncs", 1);
                                obs.instant(
                                    "route_resync",
                                    t as i64,
                                    format!(
                                        "{} resync ({}/{} nets dirty)",
                                        st.reason.label(),
                                        st.dirty_nets,
                                        st.total_nets
                                    ),
                                );
                            }
                            // Periodic/drift bails are degraded-mode events the
                            // report should carry; forced and first-call resyncs
                            // are expected and stay trace-only so resumed runs
                            // keep identical warning lists.
                            if matches!(st.reason, ResyncReason::Periodic | ResyncReason::Drift) {
                                note_warning(
                                &obs,
                                &mut warnings,
                                Warning::new(
                                    Stage::Routing,
                                    t,
                                    format!(
                                        "incremental routing bailed to a full re-route ({}; {}/{} nets dirty)",
                                        st.reason.label(),
                                        st.dirty_nets,
                                        st.total_nets
                                    ),
                                ),
                            );
                            }
                        }
                        r
                    }
                    None => router.route_obs(design, &obs),
                }
            };
            // Fault hook: spike the routed demand to simulate a regime
            // shift the fitted model cannot anticipate (the drift gate
            // below must catch it).
            if matches!(fault, Some(FlowFault::CongestionSpike { route_iter }) if route_iter == t) {
                fault = None;
                route.maps.h_demand.scale_in_place(3.0);
                route.maps.v_demand.scale_in_place(3.0);
                route.congestion = route.maps.congestion_eq3();
            }
            // Predictor upkeep on every real route: measure drift of the
            // *pre-fit* model against routed reality (the substitution
            // error a predicted iteration would have incurred), then learn
            // from the route. Features are extracted before `observe` so
            // the drift check sees the same prev_util a substituted
            // iteration would have used.
            if let (Some(p), Some(fx)) = (predictor.as_mut(), extractor.as_ref()) {
                let feats = fx.extract(design, p.prev_util(), pool.clone());
                if p.fits() >= p.cfg().warmup_routes as u64 {
                    let _eval_span = obs.span_iter("predict_eval", "predict", t as i64);
                    if let Some(pred) = p.predict(&feats, fx.capacity(), pool.clone()) {
                        let routed = RoutedQor {
                            total_overflow: route.maps.total_overflow(),
                            max_congestion: route.max_congestion(),
                            overflowed_gcells: route.maps.overflowed_gcells(),
                        };
                        let drift = qor_drift(&pred, &routed);
                        if obs.is_enabled() {
                            obs.series_push("predict_drift", t as u64, drift);
                        }
                        if drift > p.cfg().drift_tol {
                            let cooldown = p.cfg().cooldown_routes;
                            p.trip_gate();
                            obs.counter_add("predict_fallbacks", 1);
                            note_warning(
                                &obs,
                                &mut warnings,
                                Warning::new(
                                    Stage::Routing,
                                    t,
                                    format!(
                                        "prediction drift {drift:.2} exceeds gate {:.2}; \
                                         full routing for the next {cooldown} route(s)",
                                        p.cfg().drift_tol
                                    ),
                                ),
                            );
                        }
                    }
                }
                p.note_real();
                {
                    let _fit_span = obs.span_iter("predict_fit", "predict", t as i64);
                    p.observe(&feats, &route.maps.charge_density(), pool.clone());
                    obs.counter_add("predict_fits", 1);
                }
            }
            let field = {
                let _field_span = obs.span_iter("congestion_field", "flow", t as i64);
                match cfg.dc_source {
                    DcSource::Router => {
                        match CongestionField::try_from_route(design, &route, &health) {
                            Ok(f) => f,
                            Err(e) => {
                                // Degraded mode: an unusable routed congestion map
                                // (e.g. zero-capacity layers ⇒ Eq. (3) = +∞) falls
                                // back to the RUDY estimate, which clamps capacity.
                                note_warning(
                            &obs,
                            &mut warnings,
                            Warning::new(
                                Stage::Routing,
                                t,
                                format!("router congestion unusable ({e}); falling back to RUDY"),
                            ),
                        );
                                CongestionField::try_from_rudy(design, &health)?
                            }
                        }
                    }
                    DcSource::Rudy => CongestionField::try_from_rudy(design, &health)?,
                }
            };
            (Some(route), field, None)
        };
        // One density evaluation serves both the snapshot score and the
        // per-iteration frame capture, so traced runs perform exactly the
        // same arithmetic as untraced ones (frames only *read* the field).
        let dens = session
            .model()
            .compute(design, None, None, cfg.gp.target_density);
        if obs.is_enabled() {
            // Predicted iterations frame the model's congestion estimate
            // (field.cmap IS the predicted Eq. (3) map on those iters).
            let cmap = match &route {
                Some(r) => &r.congestion,
                None => &field.cmap,
            };
            obs.frame(
                "congestion",
                t as i64,
                cmap.nx(),
                cmap.ny(),
                cmap.as_slice(),
            );
            obs.frame(
                "density",
                t as i64,
                dens.density.nx(),
                dens.density.ny(),
                dens.density.as_slice(),
            );
        }
        // The best-snapshot guard only trusts *routed* scores: a predicted
        // iteration has no ground truth to rank the placement by.
        if let Some(r) = &route {
            let score_now = snapshot_score(r, dens.overflow);
            if best_positions
                .as_ref()
                .map(|(s, _)| score_now < *s)
                .unwrap_or(true)
            {
                best_positions = Some((score_now, design.positions().to_vec()));
            }
        }

        // MCI.
        {
            let _mci_span = obs.span_iter("mci_update", "flow", t as i64);
            inflation.update(design, &field);
        }
        let ratios = match cfg.inflation {
            InflationPolicy::None => None,
            _ => Some(inflation.ratios()),
        };

        // DPA.
        let pg_map = {
            let _dpa_span = obs.span_iter("dpa_density", "flow", t as i64);
            match (cfg.dpa, &pg) {
                (Some(DpaMode::Dynamic), Some(p)) => {
                    let m = p.density_map(Some(&field));
                    match health.check_map(Stage::Dpa, "dynamic PG density", Some(t), &m) {
                        Ok(()) => Some(m),
                        Err(e) => {
                            note_warning(
                                &obs,
                                &mut warnings,
                                Warning::new(
                                    Stage::Dpa,
                                    t,
                                    format!("{e}; skipping the D^PG addend this iteration"),
                                ),
                            );
                            None
                        }
                    }
                }
                (Some(DpaMode::Static), _) => static_pg.clone(),
                _ => None,
            }
        };

        // DC: net-moving congestion gradients + λ₂. A non-finite gradient
        // skips net moving for this iteration (degraded mode) rather than
        // feeding NaN into the optimizer.
        let (cgrad, l2, c_penalty, virtual_cells) = if cfg.enable_dc {
            let _nm_span = obs.span_iter("netmove", "flow", t as i64);
            let mut g = congestion_gradients(design, &field, &cfg.netmove);
            if matches!(fault, Some(FlowFault::NanCongestionGrad { route_iter }) if route_iter == t)
            {
                fault = None;
                if let Some(p) = g.grad.first_mut() {
                    p.x = f64::NAN;
                }
            }
            match health.check_points(Stage::NetMoving, "congestion gradient", Some(t), &g.grad) {
                Err(e) => {
                    note_warning(
                        &obs,
                        &mut warnings,
                        Warning::new(
                            Stage::NetMoving,
                            t,
                            format!("{e}; skipping net moving this iteration"),
                        ),
                    );
                    (None, 0.0, 0.0, 0)
                }
                Ok(()) => {
                    let l2 = cfg.lambda2_scale * lambda2(design, &field, &g);
                    if l2.is_finite() {
                        if obs.is_enabled() {
                            // Net-moving displacement pressure: L1 norm of
                            // the congestion gradient over all cells.
                            let grad_l1: f64 = g.grad.iter().map(|p| p.x.abs() + p.y.abs()).sum();
                            obs.series_push("netmove_grad_l1", t as u64, grad_l1);
                        }
                        let pen = g.penalty;
                        let vc = g.virtual_cells;
                        (Some(g), l2, pen, vc)
                    } else {
                        note_warning(
                            &obs,
                            &mut warnings,
                            Warning::new(
                                Stage::NetMoving,
                                t,
                                format!("λ₂ evaluated to {l2}; skipping net moving this iteration"),
                            ),
                        );
                        (None, 0.0, 0.0, 0)
                    }
                }
            }
        } else {
            (None, 0.0, 0.0, 0)
        };

        // Solve problem (5) for a burst of Nesterov steps, re-anchoring
        // the density weight so wirelength stays in the objective.
        let burst_span = obs.span_iter("gp_burst", "gp", t as i64);
        session.restart_momentum();
        {
            let extras = StepExtras {
                inflation: ratios,
                extra_density: pg_map.as_ref(),
                congestion_grad: cgrad.as_ref().map(|g| (g.grad.as_slice(), l2)),
            };
            session.rebalance_lambda1(design, &extras, cfg.lambda1_rebalance)?;
        }
        session.save_state_into(&mut good);
        let mut k = 0usize;
        let mut last_gamma = f64::NAN;
        while k < cfg.gp_iters_per_route {
            if take_fault(&mut fault, t, k) {
                session.inject_nan_reference();
            }
            let extras = StepExtras {
                inflation: ratios,
                extra_density: pg_map.as_ref(),
                congestion_grad: cgrad.as_ref().map(|g| (g.grad.as_slice(), l2)),
            };
            match session.step(design, &extras) {
                Ok(report) if !health.is_blowup(good.last_overflow, report.overflow) => {
                    last_gamma = report.gamma;
                    session.save_state_into(&mut good);
                    k += 1;
                }
                outcome => {
                    let detail = match outcome {
                        Err(e) => e.to_string(),
                        Ok(r) => format!("density overflow blew up to {:.3e}", r.overflow),
                    };
                    if rollbacks >= health.max_rollbacks {
                        return Err(RdpError::Diverged {
                            stage: Stage::Routability,
                            iteration: t,
                            rollbacks,
                            detail,
                        });
                    }
                    session.restore_state(design, &good)?;
                    session.retune_after_rollback();
                    rollbacks += 1;
                    obs.instant("rollback", t as i64, format!("GP step {k}: {detail}"));
                    obs.counter_add("rollbacks", 1);
                    note_warning(
                        &obs,
                        &mut warnings,
                        Warning::new(
                            Stage::Routability,
                            t,
                            format!(
                                "GP step {k} rolled back ({detail}); γ ×{:.2}, λ₁ damped",
                                session.gamma_boost()
                            ),
                        ),
                    );
                }
            }
        }
        drop(burst_span);

        route_iterations = t;
        let hpwl_now = design.hpwl();
        // Predicted iterations log the model's QoR estimates (flagged).
        let (iter_overflow, iter_maxc) = match (&route, &pred_qor) {
            (Some(r), _) => (r.maps.total_overflow(), r.max_congestion()),
            (None, Some(p)) => (p.total_overflow, p.max_congestion),
            (None, None) => unreachable!("iteration produced neither route nor prediction"),
        };
        log.push(RouteIterLog {
            iter: t,
            overflow: iter_overflow,
            max_congestion: iter_maxc,
            c_penalty,
            lambda2: l2,
            virtual_cells,
            hpwl: hpwl_now,
            predicted: route.is_none(),
        });
        if obs.is_enabled() {
            // Per-iteration convergence telemetry (recorded, never read).
            // Routed series carry only router-measured values so a
            // predict-on run diffs cleanly against a predict-off run;
            // predicted iterations get their own series.
            let step = t as u64;
            obs.series_push("hpwl", step, hpwl_now);
            match (&route, &pred_qor) {
                (Some(r), _) => {
                    obs.series_push("route_overflow", step, r.maps.total_overflow());
                    obs.series_push("max_congestion", step, r.max_congestion());
                    obs.series_push("overflowed_gcells", step, r.maps.overflowed_gcells() as f64);
                }
                (None, Some(p)) => {
                    obs.series_push("predict_overflow", step, p.total_overflow);
                }
                (None, None) => {}
            }
            obs.series_push("c_penalty", step, c_penalty);
            obs.series_push("lambda2", step, l2);
            obs.series_push("virtual_cells", step, virtual_cells as f64);
            obs.series_push("density_overflow", step, session.overflow());
            obs.series_push("lambda1", step, session.lambda1());
            if last_gamma.is_finite() {
                obs.series_push("gamma", step, last_gamma);
            }
            if let Some(r) = ratios {
                obs.series_push("inflation_total", step, r.iter().sum::<f64>());
            }
        }

        // Stop when the congestion objective no longer decreases
        // (C(x, y) when DC is active; routing overflow otherwise — the
        // model estimate stands in on predicted iterations).
        let score = if cfg.enable_dc {
            c_penalty
        } else {
            iter_overflow
        };
        if score < best_penalty - 1e-9 {
            best_penalty = score;
            stale = 0;
        } else {
            stale += 1;
            if stale >= cfg.stop_patience {
                break;
            }
        }
    }

    // Score the final placement too, then restore the best snapshot.
    if cfg.max_route_iters > 0 {
        let _final_span = obs.span("final_route", "route");
        let final_score = snapshot_score(
            &router.route_obs(design, &obs),
            real_density_overflow(&session, design),
        );
        if let Some((best_score, positions)) = &best_positions {
            if *best_score < final_score {
                design.set_positions(positions);
            }
        }
    }

    let inflation_ratios = match cfg.inflation {
        InflationPolicy::None => None,
        _ if cfg.max_route_iters == 0 => None,
        _ => Some(inflation.ratios().to_vec()),
    };

    if obs.is_enabled() {
        obs.gauge_set("final_hpwl", design.hpwl());
        obs.gauge_set("final_density_overflow", session.overflow());
        obs.counter_add("gp_iterations", gp_iterations as u64);
        obs.counter_add("route_iterations", route_iterations as u64);
    }

    Ok(FlowReport {
        place_seconds: t0.elapsed().as_secs_f64(),
        gp_iterations,
        route_iterations,
        predicted_iterations,
        hpwl: design.hpwl(),
        density_overflow: session.overflow(),
        log,
        inflation_ratios,
        warnings,
        rollbacks,
        resumed_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn congested_design(seed: u64) -> Design {
        generate(
            "flow",
            &GenParams {
                num_cells: 400,
                num_macros: 2,
                macro_fraction: 0.12,
                utilization: 0.6,
                congestion_margin: 0.8,
                io_terminals: 8,
                high_fanout_nets: 3,
                rail_pitch: 1.0,
                seed,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn xplace_preset_runs_no_routability_iters() {
        let mut d = congested_design(1);
        let r = run_flow(&mut d, &RoutabilityConfig::preset(PlacerPreset::Xplace)).unwrap();
        assert_eq!(r.route_iterations, 0);
        assert!(r.log.is_empty());
        assert!(r.gp_iterations > 20);
        assert!(r.hpwl > 0.0);
        assert!(r.warnings.is_empty());
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.resumed_from, None);
    }

    #[test]
    fn ours_preset_runs_and_logs() {
        let mut d = congested_design(2);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 120;
        cfg.max_route_iters = 4;
        cfg.gp_iters_per_route = 10;
        let r = run_flow(&mut d, &cfg).unwrap();
        assert!(r.route_iterations >= 1);
        assert_eq!(r.log.len(), r.route_iterations);
        // DC is active: λ₂ and virtual cells appear once congestion exists.
        let any_virtual = r.log.iter().any(|l| l.virtual_cells > 0);
        assert!(any_virtual, "log: {:?}", r.log);
        assert!(r.place_seconds > 0.0);
    }

    #[test]
    fn ours_reduces_routing_overflow_vs_xplace() {
        // The headline claim in miniature: the routability flow must not
        // route worse than the wirelength-only flow on a congested design.
        let mut d_x = congested_design(3);
        let mut d_o = congested_design(3);

        let mut xcfg = RoutabilityConfig::preset(PlacerPreset::Xplace);
        xcfg.gp.max_iters = 150;
        run_flow(&mut d_x, &xcfg).unwrap();

        let mut ocfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        ocfg.gp.max_iters = 150;
        ocfg.max_route_iters = 5;
        ocfg.gp_iters_per_route = 12;
        run_flow(&mut d_o, &ocfg).unwrap();

        let router = GlobalRouter::default();
        let over_x = router.route(&d_x).maps.total_overflow();
        let over_o = router.route(&d_o).maps.total_overflow();
        assert!(over_o <= over_x * 1.05, "ours {over_o} vs xplace {over_x}");
    }

    #[test]
    fn flow_is_deterministic() {
        let mut d1 = congested_design(4);
        let mut d2 = congested_design(4);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 80;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 6;
        let r1 = run_flow(&mut d1, &cfg).unwrap();
        let r2 = run_flow(&mut d2, &cfg).unwrap();
        assert_eq!(d1.positions(), d2.positions());
        assert_eq!(r1.route_iterations, r2.route_iterations);
    }

    /// The health sentinels are on by default and must not perturb a
    /// healthy run: disabling them entirely yields bit-identical results.
    #[test]
    fn health_monitoring_does_not_change_healthy_runs() {
        let mut d1 = congested_design(4);
        let mut d2 = congested_design(4);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 6;
        let r1 = run_flow(&mut d1, &cfg).unwrap();
        cfg.gp.health = rdp_guard::HealthPolicy::disabled();
        let r2 = run_flow(&mut d2, &cfg).unwrap();
        assert_eq!(d1.positions(), d2.positions());
        assert_eq!(r1.hpwl.to_bits(), r2.hpwl.to_bits());
        assert_eq!(r1.rollbacks, 0);
        assert!(r1.warnings.is_empty());
    }

    /// The best-snapshot guard: the final placement's routed overflow is
    /// never dramatically worse than the best iteration observed in the
    /// log (catches the divergence failure mode).
    #[test]
    fn snapshot_restore_bounds_final_overflow() {
        let mut d = congested_design(6);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 120;
        cfg.max_route_iters = 8;
        cfg.gp_iters_per_route = 16;
        cfg.stop_patience = 99; // never stop early: stress the guard
        let r = run_flow(&mut d, &cfg).unwrap();
        let best_logged = r
            .log
            .iter()
            .map(|l| l.overflow)
            .fold(f64::INFINITY, f64::min);
        let final_overflow = GlobalRouter::new(cfg.router.clone())
            .route(&d)
            .maps
            .total_overflow();
        assert!(
            final_overflow <= best_logged * 1.5 + 10.0,
            "final {final_overflow} vs best logged {best_logged}"
        );
    }

    #[test]
    fn inflation_ratios_reported_only_with_inflation() {
        let mut d = congested_design(7);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::XplaceRoute);
        cfg.gp.max_iters = 80;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 6;
        let r = run_flow(&mut d, &cfg).unwrap();
        let ratios = r.inflation_ratios.expect("monotone inflation ran");
        assert_eq!(ratios.len(), d.num_cells());
        assert!(ratios.iter().all(|&x| x >= 0.9 && x <= 2.0));
    }

    #[test]
    fn log_csv_has_one_row_per_iteration() {
        let mut d = congested_design(9);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 3;
        cfg.gp_iters_per_route = 4;
        let r = run_flow(&mut d, &cfg).unwrap();
        let csv = r.log_csv();
        assert_eq!(csv.lines().count(), r.route_iterations + 1);
        assert!(csv.starts_with("iter,overflow"));
        // Every row parses back to the right column count.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 8, "{line}");
        }
    }

    #[test]
    fn flow_report_display_is_informative() {
        let mut d = congested_design(8);
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 4;
        let r = run_flow(&mut d, &cfg).unwrap();
        let shown = format!("{r}");
        assert!(shown.contains("routability iters"));
        assert!(shown.contains("HPWL"));
        assert!(shown.contains("virtual cells"));
    }

    #[test]
    fn presets_differ() {
        let x = RoutabilityConfig::preset(PlacerPreset::Xplace);
        let xr = RoutabilityConfig::preset(PlacerPreset::XplaceRoute);
        let ours = RoutabilityConfig::preset(PlacerPreset::Ours);
        assert_eq!(x.max_route_iters, 0);
        assert!(!xr.enable_dc && ours.enable_dc);
        assert_eq!(xr.dpa, Some(DpaMode::Static));
        assert_eq!(ours.dpa, Some(DpaMode::Dynamic));
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let cp = FlowCheckpoint {
            next_route_iter: 3,
            gp_iterations: 42,
            positions: vec![Point::new(1.5, -2.25), Point::new(0.0, 7.0)],
            session: GpSnapshot {
                positions: vec![Point::new(1.5, -2.25)],
                lambda1: 0.125,
                last_overflow: 0.3,
                gamma_boost: 1.5,
                steps_done: 99,
            },
            inflation: InflationSnapshot {
                r: vec![1.0, 1.1],
                effective: vec![1.0, 1.05],
                delta_r: vec![0.0, 0.1],
                c_prev: vec![0.2, 0.0],
                mean_prev: 0.1,
                t: 2,
            },
            best_penalty: 12.5,
            stale: 1,
            best: Some((3.75, vec![Point::new(4.0, 4.0), Point::new(5.0, 5.0)])),
            log: vec![
                RouteIterLog {
                    iter: 1,
                    overflow: 10.0,
                    max_congestion: 1.5,
                    c_penalty: 0.4,
                    lambda2: 0.01,
                    virtual_cells: 7,
                    hpwl: 1234.5,
                    predicted: false,
                },
                RouteIterLog {
                    iter: 2,
                    overflow: 9.0,
                    max_congestion: 1.25,
                    c_penalty: 0.35,
                    lambda2: 0.01,
                    virtual_cells: 5,
                    hpwl: 1230.0,
                    predicted: true,
                },
            ],
            warnings: vec![Warning::new(Stage::Routing, 2, "fell back to RUDY")],
            rollbacks: 1,
            predictor: Some({
                let mut p = CongestionPredictor::new(PredictConfig::default());
                p.note_predicted();
                p.trip_gate();
                p
            }),
        };
        let bytes = cp.to_bytes();
        let back = FlowCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn corrupted_checkpoint_is_a_typed_error() {
        let cp = FlowCheckpoint {
            next_route_iter: 1,
            gp_iterations: 0,
            positions: vec![Point::new(1.0, 2.0)],
            session: GpSnapshot::default(),
            inflation: InflationSnapshot::default(),
            best_penalty: f64::INFINITY,
            stale: 0,
            best: None,
            log: Vec::new(),
            warnings: Vec::new(),
            rollbacks: 0,
            predictor: None,
        };
        let mut bytes = cp.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        let err = FlowCheckpoint::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.stage(), Some(Stage::Checkpoint), "{err}");
        // Truncation is also caught.
        let cut = cp.to_bytes();
        let err2 = FlowCheckpoint::from_bytes(&cut[..cut.len() - 3]).unwrap_err();
        assert_eq!(err2.stage(), Some(Stage::Checkpoint), "{err2}");
    }

    /// Kill-and-resume: a flow checkpointed at a routability iteration and
    /// resumed in a fresh process state reproduces the uninterrupted run's
    /// final HPWL and overflow **bitwise**.
    #[test]
    fn resume_from_checkpoint_is_bitwise_identical() {
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 3;
        cfg.gp_iters_per_route = 6;
        cfg.stop_patience = 99;

        // Uninterrupted run, capturing a checkpoint at iteration 2.
        let mut d_full = congested_design(11);
        let mut captured: Option<Vec<u8>> = None;
        let mut cb = |cp: &FlowCheckpoint| {
            if cp.next_route_iter == 2 {
                captured = Some(cp.to_bytes());
            }
        };
        let r_full = run_flow_with(
            &mut d_full,
            &cfg,
            FlowControl {
                on_checkpoint: Some(&mut cb),
                ..Default::default()
            },
        )
        .unwrap();
        let bytes = captured.expect("checkpoint at iteration 2");

        // "Killed" run: a fresh design resumed from the serialized bytes.
        let mut d_res = congested_design(11);
        let cp = FlowCheckpoint::from_bytes(&bytes).unwrap();
        let r_res = run_flow_with(
            &mut d_res,
            &cfg,
            FlowControl {
                resume: Some(cp),
                ..Default::default()
            },
        )
        .unwrap();

        assert_eq!(r_res.resumed_from, Some(2));
        assert_eq!(r_full.hpwl.to_bits(), r_res.hpwl.to_bits());
        assert_eq!(
            r_full.density_overflow.to_bits(),
            r_res.density_overflow.to_bits()
        );
        assert_eq!(d_full.positions(), d_res.positions());
        assert_eq!(r_full.route_iterations, r_res.route_iterations);
        assert_eq!(r_full.log, r_res.log);
    }

    /// A NaN injected mid-flow is caught by the sentinels, rolled back,
    /// and the flow still completes with a report (not a panic, not an
    /// error) while recording the rollback.
    #[test]
    fn injected_nan_rolls_back_and_completes() {
        let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
        cfg.gp.max_iters = 60;
        cfg.max_route_iters = 2;
        cfg.gp_iters_per_route = 6;
        let mut d = congested_design(12);
        let r = run_flow_with(
            &mut d,
            &cfg,
            FlowControl {
                fault: Some(FlowFault::NanReference {
                    route_iter: 1,
                    gp_iter: 2,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.rollbacks >= 1, "{r}");
        assert!(!r.warnings.is_empty());
        assert!(r.hpwl.is_finite());
        assert!(d
            .positions()
            .iter()
            .all(|p| p.x.is_finite() && p.y.is_finite()));
    }
}
