//! Dynamic pin-accessibility density optimization (Section III-C).
//!
//! Cells placed under M2 power/ground rails are hard to connect on M1, so
//! the paper raises placement density under *selected* rails wherever the
//! routing congestion is above average, pushing cells out and reserving
//! pin-access space:
//!
//! 1. **PG rail selection** (Fig. 4): every macro bounding box is expanded
//!    by 10 %, the rails are cut by the expanded boxes, and only cut rails
//!    at least 0.2× the placement region's extent survive.
//! 2. **Dynamic density** (Eqs. (13)–(15)): each bin covered by a selected
//!    rail gains `η_b·(1 + C_b)·A_{PG∩b}/A_b`, with `η_b = 1` iff the
//!    bin's congestion exceeds the average.

use rdp_db::{Design, Dir, GridSpec, Map2d, PgRail, Rect};

use crate::congestion::CongestionField;

/// Configuration for the DPA technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpaConfig {
    /// Macro bounding-box expansion fraction (0.1 = 10 %, per the paper).
    pub macro_expand: f64,
    /// Minimum surviving rail length as a fraction of the die extent in
    /// the rail's direction (0.2 per the paper).
    pub min_length_fraction: f64,
}

impl Default for DpaConfig {
    fn default() -> Self {
        DpaConfig {
            macro_expand: 0.1,
            min_length_fraction: 0.2,
        }
    }
}

/// Pre-processed PG-rail density state: the selected rails and their
/// per-bin overlap fractions.
#[derive(Debug, Clone)]
pub struct PgDensity {
    selected: Vec<PgRail>,
    /// Σ A_{PG∩b} / A_b per bin.
    overlap: Map2d<f64>,
}

impl PgDensity {
    /// Runs PG-rail selection on the design and precomputes bin overlaps
    /// on `grid`.
    pub fn new(design: &Design, grid: &GridSpec, cfg: &DpaConfig) -> Self {
        let selected = select_rails(design, cfg);
        let mut overlap = Map2d::new(grid.nx(), grid.ny());
        let bin_area = grid.bin_area();
        for rail in &selected {
            let Some((x0, y0, x1, y1)) = grid.bins_overlapping(&rail.rect) else {
                continue;
            };
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    overlap[(ix, iy)] += grid.bin_rect(ix, iy).overlap_area(&rail.rect) / bin_area;
                }
            }
        }
        PgDensity { selected, overlap }
    }

    /// The rails that survived selection.
    pub fn selected_rails(&self) -> &[PgRail] {
        &self.selected
    }

    /// The static per-bin rail coverage Σ A_{PG∩b}/A_b.
    pub fn overlap_map(&self) -> &Map2d<f64> {
        &self.overlap
    }

    /// The density addend `D^PG` of Eq. (14).
    ///
    /// With a congestion field, the dynamic weighting of Eq. (15) is
    /// applied: only bins with above-average congestion receive density,
    /// scaled by `1 + C_b`. Without one (the Xplace-Route baseline's
    /// static pre-placement adjustment) the raw coverage is returned.
    pub fn density_map(&self, field: Option<&CongestionField>) -> Map2d<f64> {
        let mut out = self.overlap.clone();
        if let Some(f) = field {
            let mean = f.cmap.mean();
            for iy in 0..out.ny() {
                for ix in 0..out.nx() {
                    let c = f.cmap[(ix, iy)];
                    let eta = if c > mean { 1.0 } else { 0.0 };
                    out[(ix, iy)] *= eta * (1.0 + c);
                }
            }
        }
        out
    }
}

/// PG-rail selection (Fig. 4): cut rails by expanded macro boxes, keep
/// long survivors.
pub fn select_rails(design: &Design, cfg: &DpaConfig) -> Vec<PgRail> {
    let die = design.die();
    let boxes: Vec<Rect> = design
        .macros()
        .map(|m| design.cell_rect(m).expanded_fraction(cfg.macro_expand))
        .collect();
    let mut out = Vec::new();
    for rail in design.rails() {
        let min_len = match rail.dir {
            Dir::Horizontal => cfg.min_length_fraction * die.width(),
            Dir::Vertical => cfg.min_length_fraction * die.height(),
        };
        for piece in cut_rail(rail, &boxes) {
            if piece.length() >= min_len {
                out.push(piece);
            }
        }
    }
    out
}

/// Cuts one rail by a set of blocking boxes, returning the uncovered
/// pieces.
fn cut_rail(rail: &PgRail, boxes: &[Rect]) -> Vec<PgRail> {
    // Blocked intervals along the rail's running axis.
    let (lo, hi) = match rail.dir {
        Dir::Horizontal => (rail.rect.lo.x, rail.rect.hi.x),
        Dir::Vertical => (rail.rect.lo.y, rail.rect.hi.y),
    };
    let mut blocked: Vec<(f64, f64)> = boxes
        .iter()
        .filter(|b| b.intersects(&rail.rect))
        .map(|b| match rail.dir {
            Dir::Horizontal => (b.lo.x.max(lo), b.hi.x.min(hi)),
            Dir::Vertical => (b.lo.y.max(lo), b.hi.y.min(hi)),
        })
        .collect();
    blocked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for iv in blocked {
        match merged.last_mut() {
            Some(last) if iv.0 <= last.1 => last.1 = last.1.max(iv.1),
            _ => merged.push(iv),
        }
    }
    let mut pieces = Vec::new();
    let mut cursor = lo;
    let push = |a: f64, b: f64, pieces: &mut Vec<PgRail>| {
        if b > a {
            let rect = match rail.dir {
                Dir::Horizontal => Rect::new(a, rail.rect.lo.y, b, rail.rect.hi.y),
                Dir::Vertical => Rect::new(rail.rect.lo.x, a, rail.rect.hi.x, b),
            };
            pieces.push(PgRail {
                layer: rail.layer,
                dir: rail.dir,
                rect,
            });
        }
    };
    for (a, b) in merged {
        push(cursor, a, &mut pieces);
        cursor = cursor.max(b);
    }
    push(cursor, hi, &mut pieces);
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, RoutingSpec};

    /// 100×100 die, one macro in the center, vertical rails every 10 µm.
    fn rail_design() -> Design {
        let mut b = DesignBuilder::new("r", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_cell(Cell::fixed_macro("m", 30.0, 30.0), Point::new(50.0, 50.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(10.0, 10.0));
        b.add_net("n", vec![(m, Point::default()), (a, Point::default())]);
        for i in 0..10 {
            let x = 5.0 + 10.0 * i as f64;
            b.add_rail(PgRail {
                layer: 1,
                dir: Dir::Vertical,
                rect: Rect::new(x - 0.2, 0.0, x + 0.2, 100.0),
            });
        }
        b.routing(RoutingSpec::uniform(4, 10.0, 16, 16));
        b.build().unwrap()
    }

    #[test]
    fn rails_clear_of_macro_survive_whole() {
        let d = rail_design();
        let rails = select_rails(&d, &DpaConfig::default());
        // Expanded macro box: 30×30 +10% per side → spans x ∈ [32, 68].
        // Rails at x=5..25 and 75..95 are untouched (length 100); rails at
        // 35..65 are cut into two 33.5-length pieces (≥ 20) → survive too.
        let whole = rails.iter().filter(|r| (r.length() - 100.0).abs() < 1e-9);
        assert_eq!(whole.count(), 6);
        assert!(rails.len() > 6, "cut pieces should survive");
        for r in &rails {
            assert!(r.length() >= 20.0);
        }
    }

    #[test]
    fn cut_pieces_avoid_expanded_macro() {
        let d = rail_design();
        let rails = select_rails(&d, &DpaConfig::default());
        let expanded = d.cell_rect(rdp_db::CellId(0)).expanded_fraction(0.1);
        for r in &rails {
            assert!(
                !r.rect.intersects(&expanded),
                "rail {:?} overlaps expanded macro",
                r.rect
            );
        }
    }

    #[test]
    fn short_pieces_are_dropped() {
        let d = rail_design();
        let cfg = DpaConfig {
            min_length_fraction: 0.4,
            ..DpaConfig::default()
        };
        let rails = select_rails(&d, &cfg);
        // Cut pieces are ~33.5 < 40: only untouched rails survive.
        assert_eq!(rails.len(), 6);
    }

    #[test]
    fn static_density_matches_coverage() {
        let d = rail_design();
        let grid = d.gcell_grid();
        let pg = PgDensity::new(&d, &grid, &DpaConfig::default());
        let dm = pg.density_map(None);
        assert_eq!(&dm, pg.overlap_map());
        assert!(dm.sum() > 0.0);
    }

    #[test]
    fn dynamic_density_gated_by_congestion() {
        let d = rail_design();
        let grid = d.gcell_grid();
        let pg = PgDensity::new(&d, &grid, &DpaConfig::default());
        // Synthetic congestion field: congested stripe in bins iy ∈ {4}.
        let route = rdp_route::GlobalRouter::default().route(&d);
        let mut field = CongestionField::from_route(&d, &route);
        field.cmap.clear();
        for ix in 0..16 {
            field.cmap[(ix, 4)] = 1.0;
        }
        let dm = pg.density_map(Some(&field));
        // Rows without congestion get zero PG density.
        for ix in 0..16 {
            assert_eq!(dm[(ix, 10)], 0.0, "ix={ix}");
        }
        // Congested row gets coverage × (1 + C) = coverage × 2.
        let cov = pg.overlap_map();
        for ix in 0..16 {
            assert!((dm[(ix, 4)] - cov[(ix, 4)] * 2.0).abs() < 1e-12);
        }
    }
}
