//! Weighted-average (WA) wirelength model (Hsu, Chang, Balabanov, DAC'11)
//! — the smooth HPWL surrogate of Section II-A.
//!
//! Per net and per axis:
//!
//! ```text
//!   WA_x(e) = Σᵢ xᵢ·e^{xᵢ/γ} / Σᵢ e^{xᵢ/γ}  −  Σᵢ xᵢ·e^{−xᵢ/γ} / Σᵢ e^{−xᵢ/γ}
//! ```
//!
//! γ controls smoothness: WA → HPWL as γ → 0. All exponentials are
//! computed on max-shifted coordinates for numerical stability.

use rdp_db::{Design, NetId, Point};
use rdp_par::{chunk_len, Pool};

/// Reusable buffers for WA evaluations. One instance amortizes every
/// allocation of [`WaModel::accumulate_gradient_with`] across Nesterov
/// iterations: `pin_grad` holds one gradient contribution per pin, the
/// small vectors hold per-net coordinates and 1-D gradients.
#[derive(Debug, Clone, Default)]
pub struct WaScratch {
    /// Per-pin ∂WA/∂pin contributions (net weight folded in).
    pin_grad: Vec<Point>,
}

impl WaScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        WaScratch::default()
    }
}

/// Nets per chunk: at most 128 chunks, at least 32 nets per chunk, so
/// chunk boundaries (and the partial-sum grouping) depend only on the
/// net count.
fn net_chunk(num_nets: usize) -> usize {
    chunk_len(num_nets, 128, 32)
}

/// The WA wirelength model with a fixed smoothing parameter γ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaModel {
    /// Smoothing parameter γ (microns).
    pub gamma: f64,
}

impl WaModel {
    /// Creates a model with the given γ.
    ///
    /// # Panics
    ///
    /// Panics if γ is not positive.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        WaModel { gamma }
    }

    /// Smooth wirelength of one net.
    pub fn net_wirelength(&self, design: &Design, net: NetId) -> f64 {
        let mut coords = Vec::new();
        self.net_wirelength_scratch(design, net, &mut coords)
    }

    /// [`net_wirelength`](WaModel::net_wirelength) with a caller-owned
    /// coordinate buffer (no per-call allocation).
    fn net_wirelength_scratch(&self, design: &Design, net: NetId, coords: &mut Vec<f64>) -> f64 {
        let pins = &design.net(net).pins;
        if pins.len() < 2 {
            return 0.0;
        }
        coords.clear();
        coords.extend(pins.iter().map(|&p| design.pin_position(p).x));
        let wx = wa_1d(coords, self.gamma);
        coords.clear();
        coords.extend(pins.iter().map(|&p| design.pin_position(p).y));
        let wy = wa_1d(coords, self.gamma);
        (wx + wy) * design.net(net).weight
    }

    /// Total smooth wirelength Σₑ WAₑ on the global pool.
    pub fn wirelength(&self, design: &Design) -> f64 {
        self.wirelength_with(design, Pool::global())
    }

    /// Total smooth wirelength on an explicit pool. Per-net values are
    /// summed within fixed chunks and the partial sums are folded in
    /// chunk order, so the result is bit-identical for any thread count.
    pub fn wirelength_with(&self, design: &Design, pool: Pool) -> f64 {
        let n = design.num_nets();
        pool.map_chunks_scratch(n, net_chunk(n), Vec::new, |coords, _ci, range| {
            range
                .map(|ni| self.net_wirelength_scratch(design, NetId::from_index(ni), coords))
                .sum::<f64>()
        })
        .into_iter()
        .sum()
    }

    /// Accumulates ∂WA/∂(cell position) into `grad` (one entry per cell,
    /// indexed by cell id). `grad` is **not** cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != design.num_cells()`.
    pub fn accumulate_gradient(&self, design: &Design, grad: &mut [Point]) {
        let mut scratch = WaScratch::new();
        self.accumulate_gradient_with(design, grad, Pool::global(), &mut scratch);
    }

    /// [`accumulate_gradient`](WaModel::accumulate_gradient) on an
    /// explicit pool with reusable scratch.
    ///
    /// The fan-out phase computes every pin's contribution in parallel
    /// (pins of one net are contiguous, so net chunks map to disjoint
    /// windows of the pin buffer); a sequential scatter then folds the
    /// contributions into `grad` in pin order. Because each pin value is
    /// computed independently and the scatter order is fixed, the result
    /// is bit-identical to the serial evaluation for any thread count.
    pub fn accumulate_gradient_with(
        &self,
        design: &Design,
        grad: &mut [Point],
        pool: Pool,
        scratch: &mut WaScratch,
    ) {
        assert_eq!(grad.len(), design.num_cells(), "gradient buffer size");
        let num_nets = design.num_nets();
        let num_pins = design.num_pins();
        scratch.pin_grad.clear();
        scratch.pin_grad.resize(num_pins, Point::default());

        // Chunk boundaries over nets, expressed as pin offsets. Pins are
        // created net-by-net (see `DesignBuilder::build`), so every
        // net's pins occupy one contiguous ascending id range.
        let chunk = net_chunk(num_nets);
        let nchunks = num_nets.div_ceil(chunk);
        let bounds: Vec<usize> = (0..=nchunks)
            .map(|ci| {
                let net = (ci * chunk).min(num_nets);
                if net == num_nets {
                    num_pins
                } else {
                    design.net(NetId::from_index(net)).pins[0].index()
                }
            })
            .collect();

        let gamma = self.gamma;
        pool.for_uneven_chunks_mut(
            &mut scratch.pin_grad,
            &bounds,
            || (Vec::new(), Vec::new()),
            |(coords, grads), ci, offset, window| {
                let net_end = ((ci + 1) * chunk).min(num_nets);
                for ni in ci * chunk..net_end {
                    let net = design.net(NetId::from_index(ni));
                    if net.pins.len() < 2 {
                        continue;
                    }
                    let w = net.weight;
                    let start = net.pins[0].index() - offset;
                    debug_assert!(net
                        .pins
                        .iter()
                        .enumerate()
                        .all(|(k, p)| p.index() == offset + start + k));
                    // x axis
                    coords.clear();
                    coords.extend(net.pins.iter().map(|&p| design.pin_position(p).x));
                    grads.clear();
                    grads.resize(coords.len(), 0.0);
                    wa_grad_1d(coords, gamma, grads);
                    for (k, g) in grads.iter().enumerate() {
                        window[start + k].x = w * g;
                    }
                    // y axis
                    coords.clear();
                    coords.extend(net.pins.iter().map(|&p| design.pin_position(p).y));
                    grads.clear();
                    grads.resize(coords.len(), 0.0);
                    wa_grad_1d(coords, gamma, grads);
                    for (k, g) in grads.iter().enumerate() {
                        window[start + k].y = w * g;
                    }
                }
            },
        );

        // Sequential deterministic scatter: pin order matches the serial
        // per-net accumulation order exactly.
        for ni in 0..num_nets {
            let net = design.net(NetId::from_index(ni));
            if net.pins.len() < 2 {
                continue;
            }
            for &p in &net.pins {
                let cell = design.pin(p).cell.index();
                let pg = scratch.pin_grad[p.index()];
                grad[cell].x += pg.x;
                grad[cell].y += pg.y;
            }
        }
    }
}

/// One-dimensional WA value, max-shifted for stability.
fn wa_1d(v: &[f64], gamma: f64) -> f64 {
    let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let (mut sp, mut ap, mut sn, mut an) = (0.0, 0.0, 0.0, 0.0);
    for &x in v {
        let ep = ((x - hi) / gamma).exp();
        let en = ((lo - x) / gamma).exp();
        sp += ep;
        ap += x * ep;
        sn += en;
        an += x * en;
    }
    ap / sp - an / sn
}

/// One-dimensional WA gradient: out[i] = ∂WA/∂v[i].
fn wa_grad_1d(v: &[f64], gamma: f64, out: &mut [f64]) {
    let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let (mut sp, mut ap, mut sn, mut an) = (0.0, 0.0, 0.0, 0.0);
    for &x in v {
        let ep = ((x - hi) / gamma).exp();
        let en = ((lo - x) / gamma).exp();
        sp += ep;
        ap += x * ep;
        sn += en;
        an += x * en;
    }
    for (i, &x) in v.iter().enumerate() {
        let ep = ((x - hi) / gamma).exp();
        let en = ((lo - x) / gamma).exp();
        // d(ap/sp)/dxi = ep(1 + xi/γ)/sp − ap·ep/(γ·sp²)
        let dmax = ep * (1.0 + x / gamma) / sp - ap * ep / (gamma * sp * sp);
        // d(an/sn)/dxi = en(1 − xi/γ)/sn + an·en/(γ·sn²)
        let dmin = en * (1.0 - x / gamma) / sn + an * en / (gamma * sn * sn);
        out[i] = dmax - dmin;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Rect, RoutingSpec};

    fn two_cell_design(a: Point, b: Point) -> Design {
        let mut db = DesignBuilder::new("w", Rect::new(-100.0, -100.0, 200.0, 200.0));
        let c1 = db.add_cell(Cell::std("a", 1.0, 1.0), a);
        let c2 = db.add_cell(Cell::std("b", 1.0, 1.0), b);
        db.add_net("n", vec![(c1, Point::default()), (c2, Point::default())]);
        db.routing(RoutingSpec::uniform(2, 1.0, 4, 4));
        db.build().unwrap()
    }

    #[test]
    fn wa_lower_bounds_hpwl_and_converges() {
        let d = two_cell_design(Point::new(0.0, 0.0), Point::new(10.0, 7.0));
        let hpwl = d.hpwl();
        for gamma in [4.0, 1.0, 0.25, 0.05] {
            let wa = WaModel::new(gamma).wirelength(&d);
            assert!(wa <= hpwl + 1e-9, "gamma={gamma}: wa {wa} > hpwl {hpwl}");
        }
        // Tight for small gamma.
        let wa = WaModel::new(0.05).wirelength(&d);
        assert!((wa - hpwl).abs() < 0.5, "wa {wa} vs hpwl {hpwl}");
    }

    #[test]
    fn wa_zero_for_coincident_pins() {
        let d = two_cell_design(Point::new(5.0, 5.0), Point::new(5.0, 5.0));
        let wa = WaModel::new(1.0).wirelength(&d);
        assert!(wa.abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut d = two_cell_design(Point::new(2.0, 3.0), Point::new(11.0, 5.0));
        let model = WaModel::new(1.5);
        let mut grad = vec![Point::default(); d.num_cells()];
        model.accumulate_gradient(&d, &mut grad);

        let h = 1e-6;
        for ci in 0..2 {
            let id = rdp_db::CellId::from_index(ci);
            let p0 = d.pos(id);
            d.set_pos(id, Point::new(p0.x + h, p0.y));
            let fp = model.wirelength(&d);
            d.set_pos(id, Point::new(p0.x - h, p0.y));
            let fm = model.wirelength(&d);
            d.set_pos(id, p0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[ci].x - fd).abs() < 1e-6,
                "cell {ci}: analytic {} vs fd {fd}",
                grad[ci].x
            );

            d.set_pos(id, Point::new(p0.x, p0.y + h));
            let fp = model.wirelength(&d);
            d.set_pos(id, Point::new(p0.x, p0.y - h));
            let fm = model.wirelength(&d);
            d.set_pos(id, p0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[ci].y - fd).abs() < 1e-6,
                "cell {ci}: analytic {} vs fd {fd}",
                grad[ci].y
            );
        }
    }

    #[test]
    fn gradient_pulls_pins_together() {
        let d = two_cell_design(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let mut grad = vec![Point::default(); 2];
        WaModel::new(1.0).accumulate_gradient(&d, &mut grad);
        // Descent direction −grad moves the left cell right and the right
        // cell left.
        assert!(grad[0].x < 0.0);
        assert!(grad[1].x > 0.0);
        assert!(grad[0].y.abs() < 1e-12);
    }

    #[test]
    fn multi_pin_gradient_consistent() {
        let mut db = DesignBuilder::new("w", Rect::new(0.0, 0.0, 100.0, 100.0));
        let ids: Vec<_> = (0..5)
            .map(|i| {
                db.add_cell(
                    Cell::std(format!("c{i}"), 1.0, 1.0),
                    Point::new(10.0 * i as f64, (i * i) as f64),
                )
            })
            .collect();
        db.add_net(
            "n",
            ids.iter().map(|&c| (c, Point::new(0.3, -0.2))).collect(),
        );
        db.routing(RoutingSpec::uniform(2, 1.0, 4, 4));
        let mut d = db.build().unwrap();
        let model = WaModel::new(2.0);
        let mut grad = vec![Point::default(); d.num_cells()];
        model.accumulate_gradient(&d, &mut grad);
        let h = 1e-6;
        for ci in 0..5 {
            let id = rdp_db::CellId::from_index(ci);
            let p0 = d.pos(id);
            d.set_pos(id, Point::new(p0.x + h, p0.y));
            let fp = model.wirelength(&d);
            d.set_pos(id, Point::new(p0.x - h, p0.y));
            let fm = model.wirelength(&d);
            d.set_pos(id, p0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[ci].x - fd).abs() < 1e-5,
                "cell {ci}: analytic {} vs fd {fd}",
                grad[ci].x
            );
        }
    }

    #[test]
    fn weighted_net_scales_value_and_gradient() {
        let mut db = DesignBuilder::new("w", Rect::new(0.0, 0.0, 100.0, 100.0));
        let a = db.add_cell(Cell::std("a", 1.0, 1.0), Point::new(0.0, 0.0));
        let b = db.add_cell(Cell::std("b", 1.0, 1.0), Point::new(10.0, 0.0));
        db.add_weighted_net("n", 3.0, vec![(a, Point::default()), (b, Point::default())]);
        db.routing(RoutingSpec::uniform(2, 1.0, 4, 4));
        let d = db.build().unwrap();
        let m = WaModel::new(1.0);
        let base = wa_1d(&[0.0, 10.0], 1.0);
        assert!((m.wirelength(&d) - 3.0 * base).abs() < 1e-12);
        let mut grad = vec![Point::default(); 2];
        m.accumulate_gradient(&d, &mut grad);
        let d1 = two_cell_design(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let mut g1 = vec![Point::default(); 2];
        m.accumulate_gradient(&d1, &mut g1);
        assert!((grad[0].x - 3.0 * g1[0].x).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn zero_gamma_rejected() {
        WaModel::new(0.0);
    }
}
