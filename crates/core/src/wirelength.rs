//! Weighted-average (WA) wirelength model (Hsu, Chang, Balabanov, DAC'11)
//! — the smooth HPWL surrogate of Section II-A.
//!
//! Per net and per axis:
//!
//! ```text
//!   WA_x(e) = Σᵢ xᵢ·e^{xᵢ/γ} / Σᵢ e^{xᵢ/γ}  −  Σᵢ xᵢ·e^{−xᵢ/γ} / Σᵢ e^{−xᵢ/γ}
//! ```
//!
//! γ controls smoothness: WA → HPWL as γ → 0. All exponentials are
//! computed on max-shifted coordinates for numerical stability.

use rdp_db::{Design, NetId, Point};
use rdp_par::{chunk_len, fast_exp, Pool};

/// Fixed accumulator lane width for the 1-D WA kernels. Four independent
/// partial sums give LLVM a clean `f64x4`-shaped reduction (two SSE2
/// registers, one AVX register) while keeping the fold order a pure
/// function of the element count — the same fixed-width-lane policy the
/// chunked pool applies across threads, applied inside one chunk.
/// Changing this constant changes last-bit results and requires a bench
/// re-baseline (DESIGN.md §11).
const LANES: usize = 4;

/// Reusable buffers for WA evaluations. One instance amortizes every
/// allocation of [`WaModel::accumulate_gradient_with`] across Nesterov
/// iterations: `pin_grad` holds one gradient contribution per pin, and
/// `pin_cell` caches the pin → cell index map (netlist topology is fixed
/// within a placement session, so it is built once and keyed on the pin
/// count — a scratch must not be shared across *different* designs).
#[derive(Debug, Clone, Default)]
pub struct WaScratch {
    /// Per-pin ∂WA/∂pin contributions (net weight folded in).
    pin_grad: Vec<Point>,
    /// Owning cell index of every pin (scatter target).
    pin_cell: Vec<u32>,
}

impl WaScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        WaScratch::default()
    }
}

/// Nets per chunk: at most 128 chunks, at least 32 nets per chunk, so
/// chunk boundaries (and the partial-sum grouping) depend only on the
/// net count.
fn net_chunk(num_nets: usize) -> usize {
    chunk_len(num_nets, 128, 32)
}

/// The WA wirelength model with a fixed smoothing parameter γ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaModel {
    /// Smoothing parameter γ (microns).
    pub gamma: f64,
}

impl WaModel {
    /// Creates a model with the given γ.
    ///
    /// # Panics
    ///
    /// Panics if γ is not positive.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        WaModel { gamma }
    }

    /// Smooth wirelength of one net.
    pub fn net_wirelength(&self, design: &Design, net: NetId) -> f64 {
        let mut coords = Vec::new();
        self.net_wirelength_scratch(design, net, &mut coords)
    }

    /// [`net_wirelength`](WaModel::net_wirelength) with a caller-owned
    /// coordinate buffer (no per-call allocation).
    fn net_wirelength_scratch(&self, design: &Design, net: NetId, coords: &mut Vec<f64>) -> f64 {
        let pins = &design.net(net).pins;
        if pins.len() < 2 {
            return 0.0;
        }
        coords.clear();
        coords.extend(pins.iter().map(|&p| design.pin_position(p).x));
        let wx = wa_1d(coords, self.gamma);
        coords.clear();
        coords.extend(pins.iter().map(|&p| design.pin_position(p).y));
        let wy = wa_1d(coords, self.gamma);
        (wx + wy) * design.net(net).weight
    }

    /// Total smooth wirelength Σₑ WAₑ on the global pool.
    pub fn wirelength(&self, design: &Design) -> f64 {
        self.wirelength_with(design, Pool::global())
    }

    /// Total smooth wirelength on an explicit pool. Per-net values are
    /// summed within fixed chunks and the partial sums are folded in
    /// chunk order, so the result is bit-identical for any thread count.
    pub fn wirelength_with(&self, design: &Design, pool: Pool) -> f64 {
        let n = design.num_nets();
        pool.map_chunks_scratch(n, net_chunk(n), Vec::new, |coords, _ci, range| {
            range
                .map(|ni| self.net_wirelength_scratch(design, NetId::from_index(ni), coords))
                .sum::<f64>()
        })
        .into_iter()
        .sum()
    }

    /// Accumulates ∂WA/∂(cell position) into `grad` (one entry per cell,
    /// indexed by cell id). `grad` is **not** cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != design.num_cells()`.
    pub fn accumulate_gradient(&self, design: &Design, grad: &mut [Point]) {
        let mut scratch = WaScratch::new();
        self.accumulate_gradient_with(design, grad, Pool::global(), &mut scratch);
    }

    /// [`accumulate_gradient`](WaModel::accumulate_gradient) on an
    /// explicit pool with reusable scratch.
    ///
    /// The fan-out phase computes every pin's contribution in parallel
    /// (pins of one net are contiguous, so net chunks map to disjoint
    /// windows of the pin buffer); a sequential scatter then folds the
    /// contributions into `grad` in pin order. Because each pin value is
    /// computed independently and the scatter order is fixed, the result
    /// is bit-identical to the serial evaluation for any thread count.
    pub fn accumulate_gradient_with(
        &self,
        design: &Design,
        grad: &mut [Point],
        pool: Pool,
        scratch: &mut WaScratch,
    ) {
        assert_eq!(grad.len(), design.num_cells(), "gradient buffer size");
        let num_nets = design.num_nets();
        let num_pins = design.num_pins();
        scratch.pin_grad.clear();
        scratch.pin_grad.resize(num_pins, Point::default());

        // Chunk boundaries over nets, expressed as pin offsets. Pins are
        // created net-by-net (see `DesignBuilder::build`), so every
        // net's pins occupy one contiguous ascending id range.
        let chunk = net_chunk(num_nets);
        let nchunks = num_nets.div_ceil(chunk);
        let bounds: Vec<usize> = (0..=nchunks)
            .map(|ci| {
                let net = (ci * chunk).min(num_nets);
                if net == num_nets {
                    num_pins
                } else {
                    design.net(NetId::from_index(net)).pins[0].index()
                }
            })
            .collect();

        let gamma = self.gamma;
        let inv_g = 1.0 / gamma;
        pool.for_uneven_chunks_mut(
            &mut scratch.pin_grad,
            &bounds,
            || (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()),
            |(xs, ys, ep, en, grads), ci, offset, window| {
                let net_end = ((ci + 1) * chunk).min(num_nets);
                for ni in ci * chunk..net_end {
                    let net = design.net(NetId::from_index(ni));
                    if net.pins.len() < 2 {
                        continue;
                    }
                    let w = net.weight;
                    let start = net.pins[0].index() - offset;
                    debug_assert!(net
                        .pins
                        .iter()
                        .enumerate()
                        .all(|(k, p)| p.index() == offset + start + k));
                    // Two-pin nets dominate real netlists (≈⅔ here); the
                    // register-only closed form skips every buffer.
                    if net.pins.len() == 2 {
                        let p0 = design.pin_position(net.pins[0]);
                        let p1 = design.pin_position(net.pins[1]);
                        let (gx0, gx1) = wa_grad_2(p0.x, p1.x, inv_g);
                        let (gy0, gy1) = wa_grad_2(p0.y, p1.y, inv_g);
                        window[start] = Point::new(w * gx0, w * gy0);
                        window[start + 1] = Point::new(w * gx1, w * gy1);
                        continue;
                    }
                    // Gather both axes in one pass over the pins: the
                    // pin-table walk (id → cell → position + offset) is a
                    // real fraction of the kernel on small nets.
                    xs.clear();
                    ys.clear();
                    for &p in &net.pins {
                        let pos = design.pin_position(p);
                        xs.push(pos.x);
                        ys.push(pos.y);
                    }
                    grads.clear();
                    grads.resize(xs.len(), 0.0);
                    wa_grad_1d(xs, gamma, ep, en, grads);
                    for (k, g) in grads.iter().enumerate() {
                        window[start + k].x = w * g;
                    }
                    wa_grad_1d(ys, gamma, ep, en, grads);
                    for (k, g) in grads.iter().enumerate() {
                        window[start + k].y = w * g;
                    }
                }
            },
        );

        // Sequential deterministic scatter in pin order. Pins of skipped
        // (< 2-pin) nets carry a zeroed contribution, so one flat pass
        // over the cached pin → cell map replaces the per-net pin-table
        // walk without reordering any non-trivial addition.
        if scratch.pin_cell.len() != num_pins {
            scratch.pin_cell.clear();
            scratch.pin_cell.extend(
                (0..num_pins).map(|p| design.pin(rdp_db::PinId::from_index(p)).cell.index() as u32),
            );
        }
        for (pg, &cell) in scratch.pin_grad.iter().zip(scratch.pin_cell.iter()) {
            let g = &mut grad[cell as usize];
            g.x += pg.x;
            g.y += pg.y;
        }
    }
}

/// Max-shift bounds of `v` with [`LANES`] independent lanes. `max`/`min`
/// are order-insensitive, but the lane structure is kept identical to
/// the sum kernels so every 1-D pass walks memory the same way.
fn minmax_1d(v: &[f64]) -> (f64, f64) {
    let mut hi = [f64::NEG_INFINITY; LANES];
    let mut lo = [f64::INFINITY; LANES];
    let mut chunks = v.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            hi[l] = hi[l].max(c[l]);
            lo[l] = lo[l].min(c[l]);
        }
    }
    for (l, &x) in chunks.remainder().iter().enumerate() {
        hi[l] = hi[l].max(x);
        lo[l] = lo[l].min(x);
    }
    (
        (hi[0].max(hi[1])).max(hi[2].max(hi[3])),
        (lo[0].min(lo[1])).min(lo[2].min(lo[3])),
    )
}

/// One-dimensional WA value, max-shifted for stability. Lane-chunked:
/// four fixed-width partial accumulators folded in a fixed pairwise
/// order, then the scalar remainder — the operation sequence depends
/// only on `v.len()`, so the kernel is trivially thread-count invariant
/// and autovectorizes (the exponential is the branch-free
/// [`fast_exp`]).
fn wa_1d(v: &[f64], gamma: f64) -> f64 {
    let (hi, lo) = minmax_1d(v);
    let inv_g = 1.0 / gamma;
    let (mut sp, mut ap) = ([0.0f64; LANES], [0.0f64; LANES]);
    let (mut sn, mut an) = ([0.0f64; LANES], [0.0f64; LANES]);
    let mut chunks = v.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            let x = c[l];
            let ep = fast_exp((x - hi) * inv_g);
            let en = fast_exp((lo - x) * inv_g);
            sp[l] += ep;
            ap[l] += x * ep;
            sn[l] += en;
            an[l] += x * en;
        }
    }
    for (l, &x) in chunks.remainder().iter().enumerate() {
        let ep = fast_exp((x - hi) * inv_g);
        let en = fast_exp((lo - x) * inv_g);
        sp[l] += ep;
        ap[l] += x * ep;
        sn[l] += en;
        an[l] += x * en;
    }
    let sp = (sp[0] + sp[1]) + (sp[2] + sp[3]);
    let ap = (ap[0] + ap[1]) + (ap[2] + ap[3]);
    let sn = (sn[0] + sn[1]) + (sn[2] + sn[3]);
    let an = (an[0] + an[1]) + (an[2] + an[3]);
    ap / sp - an / sn
}

/// One-dimensional WA gradient: out[i] = ∂WA/∂v[i].
///
/// The exponentials are computed **once** into the caller's `ep`/`en`
/// scratch (the scalar reference recomputed them in the output pass —
/// exp is the dominant cost of the whole GP step), the four sums use the
/// same fixed-lane accumulators as [`wa_1d`], and the output pass is the
/// hoisted two-coefficient form
///
/// ```text
///   out[i] = ep[i]·(a0 + a1·v[i]) − en[i]·(b0 − b1·v[i])
///   a0 = 1/sp − ap/(γ·sp²)   a1 = 1/(γ·sp)
///   b0 = 1/sn + an/(γ·sn²)   b1 = 1/(γ·sn)
/// ```
///
/// which is algebraically identical to the reference formula but
/// division-free per element, so the pass vectorizes cleanly.
fn wa_grad_1d(v: &[f64], gamma: f64, ep: &mut Vec<f64>, en: &mut Vec<f64>, out: &mut [f64]) {
    let (hi, lo) = minmax_1d(v);
    let inv_g = 1.0 / gamma;
    ep.clear();
    ep.extend(v.iter().map(|&x| fast_exp((x - hi) * inv_g)));
    en.clear();
    en.extend(v.iter().map(|&x| fast_exp((lo - x) * inv_g)));

    let (mut sp, mut ap) = ([0.0f64; LANES], [0.0f64; LANES]);
    let (mut sn, mut an) = ([0.0f64; LANES], [0.0f64; LANES]);
    let mut i = 0;
    while i + LANES <= v.len() {
        for l in 0..LANES {
            let x = v[i + l];
            sp[l] += ep[i + l];
            ap[l] += x * ep[i + l];
            sn[l] += en[i + l];
            an[l] += x * en[i + l];
        }
        i += LANES;
    }
    let mut l = 0;
    while i < v.len() {
        let x = v[i];
        sp[l] += ep[i];
        ap[l] += x * ep[i];
        sn[l] += en[i];
        an[l] += x * en[i];
        i += 1;
        l += 1;
    }
    let sp = (sp[0] + sp[1]) + (sp[2] + sp[3]);
    let ap = (ap[0] + ap[1]) + (ap[2] + ap[3]);
    let sn = (sn[0] + sn[1]) + (sn[2] + sn[3]);
    let an = (an[0] + an[1]) + (an[2] + an[3]);

    let inv_sp = 1.0 / sp;
    let inv_sn = 1.0 / sn;
    let a1 = inv_g * inv_sp;
    let a0 = inv_sp - ap * a1 * inv_sp;
    let b1 = inv_g * inv_sn;
    let b0 = inv_sn + an * b1 * inv_sn;
    for (i, &x) in v.iter().enumerate() {
        out[i] = ep[i] * (a0 + a1 * x) - en[i] * (b0 - b1 * x);
    }
}

/// Closed-form 1-D WA gradient for a two-pin net (the [`wa_grad_1d`]
/// arithmetic with the buffers and loops evaporated). With the pair
/// ordered, the max-shifted exponent of the larger coordinate is exactly
/// 0 (e⁰ = 1) and the remaining positive/negative exponents coincide, so
/// a **single** `fast_exp` serves all four terms, and `sp = sn` leaves
/// one reciprocal. Two-pin nets are the majority of any real netlist,
/// so this path carries most of the gradient call count.
#[inline]
fn wa_grad_2(x0: f64, x1: f64, inv_g: f64) -> (f64, f64) {
    let swap = x0 < x1;
    let (hi, lo) = if swap { (x1, x0) } else { (x0, x1) };
    let e = fast_exp((lo - hi) * inv_g);
    // sp = 1 + e = sn; ap = hi + lo·e; an = hi·e + lo.
    let s = 1.0 + e;
    let ap = hi + lo * e;
    let an = hi * e + lo;
    let inv_s = 1.0 / s;
    let a1 = inv_g * inv_s;
    let a0 = inv_s - ap * a1 * inv_s;
    let b0 = inv_s + an * a1 * inv_s;
    let g_hi = (a0 + a1 * hi) - e * (b0 - a1 * hi);
    let g_lo = e * (a0 + a1 * lo) - (b0 - a1 * lo);
    if swap {
        (g_lo, g_hi)
    } else {
        (g_hi, g_lo)
    }
}

/// Scalar pre-vectorization reference kernels, kept for two reasons:
/// the `wa_*_scalar_ref` benches in `crates/bench` record the
/// before/after speedup trajectory in `BENCH_kernels.json`, and the
/// unit tests cross-check the lane kernels against them (the two differ
/// only by summation order and the ≈2-ulp [`fast_exp`], so agreement is
/// tight).
pub mod reference {
    /// Scalar 1-D WA value (libm `exp`, single accumulator).
    pub fn wa_1d(v: &[f64], gamma: f64) -> f64 {
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let (mut sp, mut ap, mut sn, mut an) = (0.0, 0.0, 0.0, 0.0);
        for &x in v {
            let ep = ((x - hi) / gamma).exp();
            let en = ((lo - x) / gamma).exp();
            sp += ep;
            ap += x * ep;
            sn += en;
            an += x * en;
        }
        ap / sp - an / sn
    }

    /// Scalar 1-D WA gradient (libm `exp` recomputed in the output pass).
    pub fn wa_grad_1d(v: &[f64], gamma: f64, out: &mut [f64]) {
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let (mut sp, mut ap, mut sn, mut an) = (0.0, 0.0, 0.0, 0.0);
        for &x in v {
            let ep = ((x - hi) / gamma).exp();
            let en = ((lo - x) / gamma).exp();
            sp += ep;
            ap += x * ep;
            sn += en;
            an += x * en;
        }
        for (i, &x) in v.iter().enumerate() {
            let ep = ((x - hi) / gamma).exp();
            let en = ((lo - x) / gamma).exp();
            // d(ap/sp)/dxi = ep(1 + xi/γ)/sp − ap·ep/(γ·sp²)
            let dmax = ep * (1.0 + x / gamma) / sp - ap * ep / (gamma * sp * sp);
            // d(an/sn)/dxi = en(1 − xi/γ)/sn + an·en/(γ·sn²)
            let dmin = en * (1.0 - x / gamma) / sn + an * en / (gamma * sn * sn);
            out[i] = dmax - dmin;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Rect, RoutingSpec};

    fn two_cell_design(a: Point, b: Point) -> Design {
        let mut db = DesignBuilder::new("w", Rect::new(-100.0, -100.0, 200.0, 200.0));
        let c1 = db.add_cell(Cell::std("a", 1.0, 1.0), a);
        let c2 = db.add_cell(Cell::std("b", 1.0, 1.0), b);
        db.add_net("n", vec![(c1, Point::default()), (c2, Point::default())]);
        db.routing(RoutingSpec::uniform(2, 1.0, 4, 4));
        db.build().unwrap()
    }

    #[test]
    fn wa_lower_bounds_hpwl_and_converges() {
        let d = two_cell_design(Point::new(0.0, 0.0), Point::new(10.0, 7.0));
        let hpwl = d.hpwl();
        for gamma in [4.0, 1.0, 0.25, 0.05] {
            let wa = WaModel::new(gamma).wirelength(&d);
            assert!(wa <= hpwl + 1e-9, "gamma={gamma}: wa {wa} > hpwl {hpwl}");
        }
        // Tight for small gamma.
        let wa = WaModel::new(0.05).wirelength(&d);
        assert!((wa - hpwl).abs() < 0.5, "wa {wa} vs hpwl {hpwl}");
    }

    #[test]
    fn wa_zero_for_coincident_pins() {
        let d = two_cell_design(Point::new(5.0, 5.0), Point::new(5.0, 5.0));
        let wa = WaModel::new(1.0).wirelength(&d);
        assert!(wa.abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut d = two_cell_design(Point::new(2.0, 3.0), Point::new(11.0, 5.0));
        let model = WaModel::new(1.5);
        let mut grad = vec![Point::default(); d.num_cells()];
        model.accumulate_gradient(&d, &mut grad);

        let h = 1e-6;
        for ci in 0..2 {
            let id = rdp_db::CellId::from_index(ci);
            let p0 = d.pos(id);
            d.set_pos(id, Point::new(p0.x + h, p0.y));
            let fp = model.wirelength(&d);
            d.set_pos(id, Point::new(p0.x - h, p0.y));
            let fm = model.wirelength(&d);
            d.set_pos(id, p0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[ci].x - fd).abs() < 1e-6,
                "cell {ci}: analytic {} vs fd {fd}",
                grad[ci].x
            );

            d.set_pos(id, Point::new(p0.x, p0.y + h));
            let fp = model.wirelength(&d);
            d.set_pos(id, Point::new(p0.x, p0.y - h));
            let fm = model.wirelength(&d);
            d.set_pos(id, p0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[ci].y - fd).abs() < 1e-6,
                "cell {ci}: analytic {} vs fd {fd}",
                grad[ci].y
            );
        }
    }

    #[test]
    fn gradient_pulls_pins_together() {
        let d = two_cell_design(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let mut grad = vec![Point::default(); 2];
        WaModel::new(1.0).accumulate_gradient(&d, &mut grad);
        // Descent direction −grad moves the left cell right and the right
        // cell left.
        assert!(grad[0].x < 0.0);
        assert!(grad[1].x > 0.0);
        assert!(grad[0].y.abs() < 1e-12);
    }

    #[test]
    fn multi_pin_gradient_consistent() {
        let mut db = DesignBuilder::new("w", Rect::new(0.0, 0.0, 100.0, 100.0));
        let ids: Vec<_> = (0..5)
            .map(|i| {
                db.add_cell(
                    Cell::std(format!("c{i}"), 1.0, 1.0),
                    Point::new(10.0 * i as f64, (i * i) as f64),
                )
            })
            .collect();
        db.add_net(
            "n",
            ids.iter().map(|&c| (c, Point::new(0.3, -0.2))).collect(),
        );
        db.routing(RoutingSpec::uniform(2, 1.0, 4, 4));
        let mut d = db.build().unwrap();
        let model = WaModel::new(2.0);
        let mut grad = vec![Point::default(); d.num_cells()];
        model.accumulate_gradient(&d, &mut grad);
        let h = 1e-6;
        for ci in 0..5 {
            let id = rdp_db::CellId::from_index(ci);
            let p0 = d.pos(id);
            d.set_pos(id, Point::new(p0.x + h, p0.y));
            let fp = model.wirelength(&d);
            d.set_pos(id, Point::new(p0.x - h, p0.y));
            let fm = model.wirelength(&d);
            d.set_pos(id, p0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[ci].x - fd).abs() < 1e-5,
                "cell {ci}: analytic {} vs fd {fd}",
                grad[ci].x
            );
        }
    }

    #[test]
    fn weighted_net_scales_value_and_gradient() {
        let mut db = DesignBuilder::new("w", Rect::new(0.0, 0.0, 100.0, 100.0));
        let a = db.add_cell(Cell::std("a", 1.0, 1.0), Point::new(0.0, 0.0));
        let b = db.add_cell(Cell::std("b", 1.0, 1.0), Point::new(10.0, 0.0));
        db.add_weighted_net("n", 3.0, vec![(a, Point::default()), (b, Point::default())]);
        db.routing(RoutingSpec::uniform(2, 1.0, 4, 4));
        let d = db.build().unwrap();
        let m = WaModel::new(1.0);
        let base = wa_1d(&[0.0, 10.0], 1.0);
        assert!((m.wirelength(&d) - 3.0 * base).abs() < 1e-12);
        let mut grad = vec![Point::default(); 2];
        m.accumulate_gradient(&d, &mut grad);
        let d1 = two_cell_design(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let mut g1 = vec![Point::default(); 2];
        m.accumulate_gradient(&d1, &mut g1);
        assert!((grad[0].x - 3.0 * g1[0].x).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn zero_gamma_rejected() {
        WaModel::new(0.0);
    }

    #[test]
    fn lane_kernels_match_scalar_reference() {
        // The lane kernels differ from the scalar reference only by
        // summation order and the ≈2-ulp fast_exp, so values agree to
        // ~1e-13 relative across awkward lengths (remainder lanes).
        for n in [2usize, 3, 4, 5, 7, 8, 13, 64, 129] {
            let v: Vec<f64> = (0..n)
                .map(|i| ((i * 37) % 23) as f64 * 1.7 - 11.0)
                .collect();
            for gamma in [0.25, 1.5, 8.0] {
                let got = wa_1d(&v, gamma);
                let want = reference::wa_1d(&v, gamma);
                assert!(
                    (got - want).abs() <= 1e-12 * (1.0 + want.abs()),
                    "wa_1d n={n} gamma={gamma}: {got} vs {want}"
                );

                let mut out = vec![0.0; n];
                let mut want_out = vec![0.0; n];
                let (mut ep, mut en) = (Vec::new(), Vec::new());
                wa_grad_1d(&v, gamma, &mut ep, &mut en, &mut out);
                reference::wa_grad_1d(&v, gamma, &mut want_out);
                for i in 0..n {
                    assert!(
                        (out[i] - want_out[i]).abs() <= 1e-12,
                        "wa_grad_1d n={n} gamma={gamma} i={i}: {} vs {}",
                        out[i],
                        want_out[i]
                    );
                }
            }
        }
    }
}
