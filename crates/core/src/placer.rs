//! The electrostatic global-placement engine.
//!
//! [`GpSession`] is one optimization session of the analytical model: the
//! WA wirelength term, the electro-density term, and (optionally) the
//! paper's routability extras — inflated areas, the DPA density addend,
//! and the net-moving congestion gradient with its λ₂ weight. The plain
//! wirelength-driven placer ([`GlobalPlacer`], the "Xplace" baseline of
//! Table I) is a session run with no extras until the density overflow
//! target is reached.

use rdp_db::{CellId, Design, Map2d, Point};

use crate::density::{DensityField, DensityModel};
use crate::nesterov::NesterovSolver;
use crate::wirelength::{WaModel, WaScratch};
use rdp_par::Pool;

/// Configuration of the global-placement engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Target bin utilization for the overflow metric and stop criterion.
    pub target_density: f64,
    /// Hard iteration cap of the wirelength-driven phase.
    pub max_iters: usize,
    /// Stop when density overflow drops below this value.
    pub stop_overflow: f64,
    /// Base γ of the WA model, in units of mean bin extent.
    pub gamma_factor: f64,
    /// Multiplicative growth of the density weight λ₁ per iteration.
    pub lambda_growth: f64,
    /// Spread movable cells around the die center before optimizing
    /// (the ePlace/Xplace initialization). When false the current
    /// positions are used as the starting point.
    pub center_init: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            target_density: 0.9,
            max_iters: 500,
            stop_overflow: 0.08,
            gamma_factor: 0.5,
            lambda_growth: 1.05,
            center_init: true,
        }
    }
}

/// Optional routability inputs for one optimization step (the Eq. (5)
/// extras).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepExtras<'a> {
    /// Per-cell area inflation ratios (MCI), indexed by cell id.
    pub inflation: Option<&'a [f64]>,
    /// Additive density map (DPA's `D^PG`).
    pub extra_density: Option<&'a Map2d<f64>>,
    /// Pre-computed congestion gradient per cell (Algorithm 2) and its
    /// weight λ₂.
    pub congestion_grad: Option<(&'a [Point], f64)>,
}

/// Result snapshot of a session step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Density overflow after the step.
    pub overflow: f64,
    /// Density penalty D(x, y).
    pub density_penalty: f64,
    /// Current λ₁.
    pub lambda1: f64,
    /// γ used this step.
    pub gamma: f64,
}

/// One live global-placement optimization session.
#[derive(Debug)]
pub struct GpSession {
    cfg: PlacerConfig,
    model: DensityModel,
    movable: Vec<CellId>,
    solver: NesterovSolver,
    lambda1: f64,
    base_gamma: f64,
    last_overflow: f64,
    /// Full-design gradient scratch reused across iterations.
    full_grad: Vec<Point>,
    /// WA per-pin scratch reused across iterations.
    wa_scratch: WaScratch,
}

impl GpSession {
    /// Starts a session on the design. When `cfg.center_init` is set, the
    /// movable cells are gathered around the die center with a small
    /// deterministic jitter first.
    pub fn new(design: &mut Design, cfg: PlacerConfig) -> Self {
        let model = DensityModel::new(design);
        let movable: Vec<CellId> = design.movable_cells().collect();
        let grid = model.grid();
        let base_gamma = cfg.gamma_factor * 0.5 * (grid.bin_w() + grid.bin_h());

        if cfg.center_init {
            let c = design.die().center();
            let amp = 1.0 * (grid.bin_w() + grid.bin_h());
            for (k, &id) in movable.iter().enumerate() {
                // Deterministic jitter from a tiny splitmix-style hash.
                let h = splitmix(k as u64 ^ 0x9e37_79b9_7f4a_7c15);
                let jx = ((h & 0xffff) as f64 / 65535.0 - 0.5) * amp;
                let jy = (((h >> 16) & 0xffff) as f64 / 65535.0 - 0.5) * amp;
                design.set_pos(id, design.die().clamp_point(c.offset(jx, jy)));
            }
        }

        // Initial λ₁ = ‖∇WA‖₁ / ‖∇D‖₁ (ePlace).
        let field = model.compute(design, None, None, cfg.target_density);
        let mut gw = vec![Point::default(); design.num_cells()];
        WaModel::new(base_gamma * gamma_scale(field.overflow)).accumulate_gradient(design, &mut gw);
        let mut gd = vec![Point::default(); design.num_cells()];
        model.accumulate_gradient(design, &field, None, 1.0, &mut gd);
        let l1_w: f64 = movable.iter().map(|&c| l1(gw[c.index()])).sum();
        let l1_d: f64 = movable.iter().map(|&c| l1(gd[c.index()])).sum();
        let lambda1 = if l1_d > 1e-12 { l1_w / l1_d } else { 1.0 };

        let init: Vec<Point> = movable.iter().map(|&c| design.pos(c)).collect();
        let first_step = grid.bin_w().min(grid.bin_h());
        let last_overflow = field.overflow;

        let num_cells = design.num_cells();
        GpSession {
            cfg,
            model,
            movable,
            solver: NesterovSolver::new(init, first_step),
            lambda1,
            base_gamma,
            last_overflow,
            full_grad: vec![Point::default(); num_cells],
            wa_scratch: WaScratch::new(),
        }
    }

    /// The density model (shared bin grid).
    pub fn model(&self) -> &DensityModel {
        &self.model
    }

    /// Movable cell ids in optimization order.
    pub fn movable(&self) -> &[CellId] {
        &self.movable
    }

    /// Density overflow observed at the most recent gradient evaluation.
    pub fn overflow(&self) -> f64 {
        self.last_overflow
    }

    /// Current λ₁.
    pub fn lambda1(&self) -> f64 {
        self.lambda1
    }

    /// Restarts Nesterov momentum from the current positions (used at
    /// routability-iteration boundaries where the objective jumps).
    pub fn restart_momentum(&mut self) {
        self.solver.reset_momentum();
    }

    /// Re-balances λ₁ to `factor · ‖∇WA‖₁ / ‖∇D‖₁` at the current
    /// positions. The wirelength-driven phase grows λ₁ geometrically; by
    /// the routability phase the density term would otherwise dwarf the
    /// wirelength and congestion terms, so each routability iteration
    /// re-anchors it (with `factor` > 1 keeping density dominant enough
    /// to realize the inflation-driven spreading).
    pub fn rebalance_lambda1(&mut self, design: &Design, extras: &StepExtras<'_>, factor: f64) {
        let gamma = self.base_gamma * gamma_scale(self.last_overflow);
        let field = self.model.compute(
            design,
            extras.inflation,
            extras.extra_density,
            self.cfg.target_density,
        );
        let mut gw = vec![Point::default(); design.num_cells()];
        WaModel::new(gamma).accumulate_gradient(design, &mut gw);
        let mut gd = vec![Point::default(); design.num_cells()];
        self.model
            .accumulate_gradient(design, &field, extras.inflation, 1.0, &mut gd);
        let l1_w: f64 = self.movable.iter().map(|&c| l1(gw[c.index()])).sum();
        let l1_d: f64 = self.movable.iter().map(|&c| l1(gd[c.index()])).sum();
        if l1_d > 1e-12 {
            self.lambda1 = factor * l1_w / l1_d;
        }
    }

    /// Runs one Nesterov step of problem (2)/(5) and writes the updated
    /// positions back into the design.
    pub fn step(&mut self, design: &mut Design, extras: &StepExtras<'_>) -> StepReport {
        let die = design.die();
        let gamma = self.base_gamma * gamma_scale(self.last_overflow);
        let wa = WaModel::new(gamma);
        let target = self.cfg.target_density;

        let mut overflow = self.last_overflow;
        let mut density_penalty = 0.0;
        let lambda1 = self.lambda1;
        let pool = Pool::global();
        let GpSession {
            model,
            movable,
            solver,
            full_grad,
            wa_scratch,
            ..
        } = self;

        solver.step(
            |v, g| {
                // Scatter reference positions into the design.
                for (k, &id) in movable.iter().enumerate() {
                    design.set_pos(id, v[k]);
                }
                let field: DensityField =
                    model.compute(design, extras.inflation, extras.extra_density, target);
                overflow = field.overflow;
                density_penalty = field.penalty;

                full_grad.iter_mut().for_each(|p| *p = Point::default());
                wa.accumulate_gradient_with(design, full_grad, pool, wa_scratch);
                model.accumulate_gradient(design, &field, extras.inflation, lambda1, full_grad);
                if let Some((cgrad, lambda2)) = extras.congestion_grad {
                    for &id in movable.iter() {
                        full_grad[id.index()].x += lambda2 * cgrad[id.index()].x;
                        full_grad[id.index()].y += lambda2 * cgrad[id.index()].y;
                    }
                }
                for (k, &id) in movable.iter().enumerate() {
                    g[k] = full_grad[id.index()];
                }
            },
            |p| die.clamp_point(p),
        );

        // Commit the major solution.
        for (k, &id) in self.movable.iter().enumerate() {
            design.set_pos(id, self.solver.positions()[k]);
        }
        self.last_overflow = overflow;
        self.lambda1 *= self.cfg.lambda_growth;
        StepReport {
            overflow,
            density_penalty,
            lambda1: self.lambda1,
            gamma,
        }
    }
}

/// γ annealing: large γ early (heavy smoothing) while overflow is high,
/// tightening toward the base value as the placement spreads.
fn gamma_scale(overflow: f64) -> f64 {
    1.0 + 9.0 * overflow.clamp(0.0, 1.0)
}

fn l1(p: Point) -> f64 {
    p.x.abs() + p.y.abs()
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Statistics of a completed wirelength-driven placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Final HPWL.
    pub hpwl: f64,
    /// Final density overflow.
    pub overflow: f64,
}

/// The wirelength-driven analytical global placer (problem (2)): the
/// "Xplace" baseline of the paper's Table I.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    cfg: PlacerConfig,
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(cfg: PlacerConfig) -> Self {
        GlobalPlacer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.cfg
    }

    /// Places the design, mutating cell positions, and returns statistics.
    pub fn place(&self, design: &mut Design) -> PlaceStats {
        let mut session = GpSession::new(design, self.cfg.clone());
        let mut iterations = 0;
        for i in 0..self.cfg.max_iters {
            let report = session.step(design, &StepExtras::default());
            iterations = i + 1;
            if i >= 20 && report.overflow < self.cfg.stop_overflow {
                break;
            }
        }
        PlaceStats {
            iterations,
            hpwl: design.hpwl(),
            overflow: session.overflow(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn small() -> Design {
        generate(
            "p",
            &GenParams {
                num_cells: 250,
                num_macros: 0,
                utilization: 0.55,
                io_terminals: 8,
                high_fanout_nets: 2,
                rail_pitch: 0.0,
                seed: 11,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn placement_reduces_overflow_below_target() {
        let mut d = small();
        let placer = GlobalPlacer::new(PlacerConfig {
            max_iters: 300,
            ..PlacerConfig::default()
        });
        let stats = placer.place(&mut d);
        assert!(
            stats.overflow < 0.12,
            "overflow {} after {} iters",
            stats.overflow,
            stats.iterations
        );
    }

    #[test]
    fn placement_beats_center_blob_hpwl_growth() {
        // After spreading from the center the HPWL must stay well below a
        // random-like scatter: compare to the tile placement baseline.
        let mut d = small();
        let tile_hpwl = d.hpwl();
        let placer = GlobalPlacer::default();
        let stats = placer.place(&mut d);
        // Analytic GP on a clustered netlist should land within a small
        // multiple of the compact tile placement's HPWL.
        assert!(
            stats.hpwl < tile_hpwl * 3.0,
            "hpwl {} vs tile {}",
            stats.hpwl,
            tile_hpwl
        );
    }

    #[test]
    fn all_cells_stay_inside_die() {
        let mut d = small();
        GlobalPlacer::default().place(&mut d);
        let die = d.die();
        for c in d.movable_cells() {
            assert!(die.contains(d.pos(c)), "{c} at {} outside", d.pos(c));
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let mut d1 = small();
        let mut d2 = small();
        GlobalPlacer::default().place(&mut d1);
        GlobalPlacer::default().place(&mut d2);
        assert_eq!(d1.positions(), d2.positions());
    }

    #[test]
    fn extras_congestion_gradient_shifts_cells() {
        let mut d = small();
        GlobalPlacer::default().place(&mut d);
        // A uniform rightward descent-gradient (negative x) pushes cells
        // right when applied via extras.
        let mut session = GpSession::new(
            &mut d,
            PlacerConfig {
                center_init: false,
                ..PlacerConfig::default()
            },
        );
        let before: f64 = session.movable().iter().map(|&c| d.pos(c).x).sum::<f64>();
        let cgrad = vec![Point::new(-1.0, 0.0); d.num_cells()];
        let extras = StepExtras {
            congestion_grad: Some((&cgrad, 1e3)),
            ..Default::default()
        };
        for _ in 0..5 {
            session.step(&mut d, &extras);
        }
        let after: f64 = session.movable().iter().map(|&c| d.pos(c).x).sum::<f64>();
        assert!(after > before, "after {after} !> before {before}");
    }

    #[test]
    fn rebalance_lambda1_scales_linearly_with_factor() {
        let mut d = small();
        let mut session = GpSession::new(&mut d, PlacerConfig::default());
        for _ in 0..10 {
            session.step(&mut d, &StepExtras::default());
        }
        session.rebalance_lambda1(&d, &StepExtras::default(), 1.0);
        let base = session.lambda1();
        assert!(base > 0.0 && base.is_finite());
        session.rebalance_lambda1(&d, &StepExtras::default(), 3.0);
        let tripled = session.lambda1();
        assert!(
            (tripled - 3.0 * base).abs() < 1e-9 * tripled,
            "{tripled} vs 3x{base}"
        );
    }

    #[test]
    fn gamma_scale_monotone() {
        assert!(gamma_scale(1.0) > gamma_scale(0.5));
        assert!(gamma_scale(0.5) > gamma_scale(0.0));
        assert_eq!(gamma_scale(0.0), 1.0);
        assert_eq!(gamma_scale(2.0), 10.0);
    }
}
