//! The electrostatic global-placement engine.
//!
//! [`GpSession`] is one optimization session of the analytical model: the
//! WA wirelength term, the electro-density term, and (optionally) the
//! paper's routability extras — inflated areas, the DPA density addend,
//! and the net-moving congestion gradient with its λ₂ weight. The plain
//! wirelength-driven placer ([`GlobalPlacer`], the "Xplace" baseline of
//! Table I) is a session run with no extras until the density overflow
//! target is reached.

use rdp_db::{CellId, Design, Map2d, Point};
use rdp_guard::{HealthPolicy, RdpError, Stage};
use rdp_obs::Collector;

use crate::density::{DensityField, DensityModel};
use crate::nesterov::NesterovSolver;
use crate::wirelength::{WaModel, WaScratch};
use rdp_par::Pool;

/// Configuration of the global-placement engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Target bin utilization for the overflow metric and stop criterion.
    pub target_density: f64,
    /// Hard iteration cap of the wirelength-driven phase.
    pub max_iters: usize,
    /// Stop when density overflow drops below this value.
    pub stop_overflow: f64,
    /// Base γ of the WA model, in units of mean bin extent.
    pub gamma_factor: f64,
    /// Multiplicative growth of the density weight λ₁ per iteration.
    pub lambda_growth: f64,
    /// Spread movable cells around the die center before optimizing
    /// (the ePlace/Xplace initialization). When false the current
    /// positions are used as the starting point.
    pub center_init: bool,
    /// Numerical-health monitor policy (sentinels + rollback budget).
    pub health: HealthPolicy,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            target_density: 0.9,
            max_iters: 500,
            stop_overflow: 0.08,
            gamma_factor: 0.5,
            lambda_growth: 1.05,
            center_init: true,
            health: HealthPolicy::default(),
        }
    }
}

/// Optional routability inputs for one optimization step (the Eq. (5)
/// extras).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepExtras<'a> {
    /// Per-cell area inflation ratios (MCI), indexed by cell id.
    pub inflation: Option<&'a [f64]>,
    /// Additive density map (DPA's `D^PG`).
    pub extra_density: Option<&'a Map2d<f64>>,
    /// Pre-computed congestion gradient per cell (Algorithm 2) and its
    /// weight λ₂.
    pub congestion_grad: Option<(&'a [Point], f64)>,
}

/// Result snapshot of a session step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Density overflow after the step.
    pub overflow: f64,
    /// Density penalty D(x, y).
    pub density_penalty: f64,
    /// Current λ₁.
    pub lambda1: f64,
    /// γ used this step.
    pub gamma: f64,
}

/// Portable capture of a session's evolving optimizer state, taken with
/// [`GpSession::save_state`] and applied with [`GpSession::restore_state`].
/// Positions are in movable-cell order. Used both as the per-step
/// last-good state for divergence rollback and as part of the flow
/// checkpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GpSnapshot {
    /// Committed positions of the movable cells (optimization order).
    pub positions: Vec<Point>,
    /// Density weight λ₁.
    pub lambda1: f64,
    /// Overflow at the most recent gradient evaluation.
    pub last_overflow: f64,
    /// Rollback γ boost (1.0 until a rollback re-tunes the session).
    pub gamma_boost: f64,
    /// Total Nesterov steps executed.
    pub steps_done: u64,
}

/// One live global-placement optimization session.
#[derive(Debug)]
pub struct GpSession {
    cfg: PlacerConfig,
    model: DensityModel,
    movable: Vec<CellId>,
    solver: NesterovSolver,
    lambda1: f64,
    base_gamma: f64,
    /// Multiplier on the base γ, raised by divergence rollbacks to smooth
    /// the WA model. 1.0 on healthy runs, so results are untouched.
    gamma_boost: f64,
    last_overflow: f64,
    /// Total steps executed (error/warning context).
    steps_done: u64,
    /// Stage label attached to health errors (the flow switches it to
    /// `Routability` for phase 2).
    stage: Stage,
    /// Full-design gradient scratch reused across iterations.
    full_grad: Vec<Point>,
    /// WA per-pin scratch reused across iterations.
    wa_scratch: WaScratch,
    /// Observability sink (disabled by default). Records spans and
    /// convergence telemetry only; nothing here is ever read back, so
    /// results are identical with tracing on or off.
    obs: Collector,
}

impl GpSession {
    /// Starts a session on the design. When `cfg.center_init` is set, the
    /// movable cells are gathered around the die center with a small
    /// deterministic jitter first.
    pub fn new(design: &mut Design, cfg: PlacerConfig) -> Self {
        let model = DensityModel::new(design);
        let movable: Vec<CellId> = design.movable_cells().collect();
        let grid = model.grid();
        let base_gamma = cfg.gamma_factor * 0.5 * (grid.bin_w() + grid.bin_h());

        if cfg.center_init {
            let c = design.die().center();
            let amp = 1.0 * (grid.bin_w() + grid.bin_h());
            for (k, &id) in movable.iter().enumerate() {
                // Deterministic jitter from a tiny splitmix-style hash.
                let h = splitmix(k as u64 ^ 0x9e37_79b9_7f4a_7c15);
                let jx = ((h & 0xffff) as f64 / 65535.0 - 0.5) * amp;
                let jy = (((h >> 16) & 0xffff) as f64 / 65535.0 - 0.5) * amp;
                design.set_pos(id, design.die().clamp_point(c.offset(jx, jy)));
            }
        }

        // Initial λ₁ = ‖∇WA‖₁ / ‖∇D‖₁ (ePlace).
        let field = model.compute(design, None, None, cfg.target_density);
        let mut gw = vec![Point::default(); design.num_cells()];
        WaModel::new(base_gamma * gamma_scale(field.overflow)).accumulate_gradient(design, &mut gw);
        let mut gd = vec![Point::default(); design.num_cells()];
        model.accumulate_gradient(design, &field, None, 1.0, &mut gd);
        let l1_w: f64 = movable.iter().map(|&c| l1(gw[c.index()])).sum();
        let l1_d: f64 = movable.iter().map(|&c| l1(gd[c.index()])).sum();
        let lambda1 = if l1_d > 1e-12 { l1_w / l1_d } else { 1.0 };

        let init: Vec<Point> = movable.iter().map(|&c| design.pos(c)).collect();
        let first_step = grid.bin_w().min(grid.bin_h());
        let last_overflow = field.overflow;

        let num_cells = design.num_cells();
        GpSession {
            cfg,
            model,
            movable,
            solver: NesterovSolver::new(init, first_step),
            lambda1,
            base_gamma,
            gamma_boost: 1.0,
            last_overflow,
            steps_done: 0,
            stage: Stage::WirelengthGp,
            full_grad: vec![Point::default(); num_cells],
            wa_scratch: WaScratch::new(),
            obs: Collector::disabled(),
        }
    }

    /// Rebuilds a session around the design's **current** positions with
    /// explicit optimizer scalars — the checkpoint-resume constructor.
    /// Unlike [`GpSession::new`] it never re-initializes positions and
    /// never recomputes λ₁, so a resumed flow continues bit-for-bit where
    /// the checkpointed one left off.
    pub fn resume(
        design: &mut Design,
        cfg: PlacerConfig,
        snap: &GpSnapshot,
    ) -> Result<Self, RdpError> {
        let model = DensityModel::new(design);
        let movable: Vec<CellId> = design.movable_cells().collect();
        if snap.positions.len() != movable.len() {
            return Err(RdpError::checkpoint(format!(
                "session snapshot has {} movable positions, design has {}",
                snap.positions.len(),
                movable.len()
            )));
        }
        let grid = model.grid();
        let base_gamma = cfg.gamma_factor * 0.5 * (grid.bin_w() + grid.bin_h());
        for (k, &id) in movable.iter().enumerate() {
            design.set_pos(id, snap.positions[k]);
        }
        let first_step = grid.bin_w().min(grid.bin_h());
        let num_cells = design.num_cells();
        Ok(GpSession {
            cfg,
            model,
            movable,
            solver: NesterovSolver::new(snap.positions.clone(), first_step),
            lambda1: snap.lambda1,
            base_gamma,
            gamma_boost: snap.gamma_boost,
            last_overflow: snap.last_overflow,
            steps_done: snap.steps_done,
            stage: Stage::WirelengthGp,
            full_grad: vec![Point::default(); num_cells],
            wa_scratch: WaScratch::new(),
            obs: Collector::disabled(),
        })
    }

    /// Attaches an observability collector to the session (and its density
    /// model): GP steps and the WA/density/Poisson kernels get spans, and
    /// per-step convergence gauges are recorded.
    pub fn set_obs(&mut self, obs: Collector) {
        self.model.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Captures the evolving optimizer state (positions + scalars).
    pub fn save_state(&self) -> GpSnapshot {
        let mut snap = GpSnapshot::default();
        self.save_state_into(&mut snap);
        snap
    }

    /// [`GpSession::save_state`] into an existing buffer — no allocation
    /// after the first call, cheap enough to run every step for the
    /// last-good rollback state.
    pub fn save_state_into(&self, snap: &mut GpSnapshot) {
        snap.positions.resize(self.movable.len(), Point::default());
        snap.positions.copy_from_slice(self.solver.positions());
        snap.lambda1 = self.lambda1;
        snap.last_overflow = self.last_overflow;
        snap.gamma_boost = self.gamma_boost;
        snap.steps_done = self.steps_done;
    }

    /// Restores a [`GpSession::save_state`] capture: positions are written
    /// back into the design, the Nesterov solver is rebuilt (momentum is
    /// deliberately discarded — the saved state is a restart point), and
    /// the optimizer scalars are reinstated.
    pub fn restore_state(
        &mut self,
        design: &mut Design,
        snap: &GpSnapshot,
    ) -> Result<(), RdpError> {
        if snap.positions.len() != self.movable.len() {
            return Err(RdpError::checkpoint(format!(
                "session snapshot has {} movable positions, session has {}",
                snap.positions.len(),
                self.movable.len()
            )));
        }
        for (k, &id) in self.movable.iter().enumerate() {
            design.set_pos(id, snap.positions[k]);
        }
        self.solver = NesterovSolver::new(snap.positions.clone(), self.solver.first_step_distance);
        self.lambda1 = snap.lambda1;
        self.last_overflow = snap.last_overflow;
        self.gamma_boost = snap.gamma_boost;
        self.steps_done = snap.steps_done;
        Ok(())
    }

    /// Re-tunes the model after a divergence rollback: boosts γ (smoother
    /// WA, tamer gradients) and damps λ₁ per the health policy.
    pub fn retune_after_rollback(&mut self) {
        self.gamma_boost *= self.cfg.health.gamma_boost_on_rollback;
        self.lambda1 *= self.cfg.health.lambda_damp_on_rollback;
    }

    /// Labels subsequent health errors with `stage` (the flow switches to
    /// [`Stage::Routability`] for phase 2).
    pub fn set_stage(&mut self, stage: Stage) {
        self.stage = stage;
    }

    /// Current rollback γ boost (1.0 when no rollback has occurred).
    pub fn gamma_boost(&self) -> f64 {
        self.gamma_boost
    }

    /// Fault-injection hook (robustness suite): poisons the solver's
    /// reference state with NaN so the next step fails exactly as a real
    /// numerical blow-up would.
    #[doc(hidden)]
    pub fn inject_nan_reference(&mut self) {
        self.solver.poison_reference();
    }

    /// The density model (shared bin grid).
    pub fn model(&self) -> &DensityModel {
        &self.model
    }

    /// Movable cell ids in optimization order.
    pub fn movable(&self) -> &[CellId] {
        &self.movable
    }

    /// Density overflow observed at the most recent gradient evaluation.
    pub fn overflow(&self) -> f64 {
        self.last_overflow
    }

    /// Current λ₁.
    pub fn lambda1(&self) -> f64 {
        self.lambda1
    }

    /// Restarts Nesterov momentum from the current positions (used at
    /// routability-iteration boundaries where the objective jumps).
    pub fn restart_momentum(&mut self) {
        self.solver.reset_momentum();
    }

    /// Re-balances λ₁ to `factor · ‖∇WA‖₁ / ‖∇D‖₁` at the current
    /// positions. The wirelength-driven phase grows λ₁ geometrically; by
    /// the routability phase the density term would otherwise dwarf the
    /// wirelength and congestion terms, so each routability iteration
    /// re-anchors it (with `factor` > 1 keeping density dominant enough
    /// to realize the inflation-driven spreading).
    pub fn rebalance_lambda1(
        &mut self,
        design: &Design,
        extras: &StepExtras<'_>,
        factor: f64,
    ) -> Result<(), RdpError> {
        let gamma = self.gamma_boost * self.base_gamma * gamma_scale(self.last_overflow);
        let field = self.model.compute(
            design,
            extras.inflation,
            extras.extra_density,
            self.cfg.target_density,
        );
        let mut gw = vec![Point::default(); design.num_cells()];
        WaModel::new(gamma).accumulate_gradient(design, &mut gw);
        let mut gd = vec![Point::default(); design.num_cells()];
        self.model
            .accumulate_gradient(design, &field, extras.inflation, 1.0, &mut gd);
        let l1_w: f64 = self.movable.iter().map(|&c| l1(gw[c.index()])).sum();
        let l1_d: f64 = self.movable.iter().map(|&c| l1(gd[c.index()])).sum();
        let it = Some(self.steps_done as usize);
        let health = &self.cfg.health;
        health.check_scalar(self.stage, "wirelength gradient norm", it, l1_w)?;
        health.check_scalar(self.stage, "density gradient norm", it, l1_d)?;
        if l1_d > 1e-12 {
            self.lambda1 = factor * l1_w / l1_d;
        }
        Ok(())
    }

    /// Runs one Nesterov step of problem (2)/(5) and writes the updated
    /// positions back into the design.
    ///
    /// With the health monitor enabled, the WA + density + congestion
    /// gradient, the density metrics, and the proposed positions are
    /// sentinel-checked; a trip returns a typed [`RdpError`] and leaves
    /// the design in an **undefined intermediate state** — callers must
    /// either roll back via [`GpSession::restore_state`] or abandon the
    /// session (the flow does the former).
    pub fn step(
        &mut self,
        design: &mut Design,
        extras: &StepExtras<'_>,
    ) -> Result<StepReport, RdpError> {
        let die = design.die();
        let gamma = self.gamma_boost * self.base_gamma * gamma_scale(self.last_overflow);
        let wa = WaModel::new(gamma);
        let target = self.cfg.target_density;
        let health = self.cfg.health;
        let stage = self.stage;
        let iteration = Some(self.steps_done as usize);

        let mut overflow = self.last_overflow;
        let mut density_penalty = 0.0;
        let mut health_err: Option<RdpError> = None;
        let lambda1 = self.lambda1;
        let pool = Pool::global();
        let obs = self.obs.clone();
        let _step_span = obs.span("gp_step", "gp");
        let GpSession {
            model,
            movable,
            solver,
            full_grad,
            wa_scratch,
            ..
        } = self;

        solver.step(
            |v, g| {
                // A poisoned reference (NaN/Inf coordinate) would send the
                // density model indexing bins out of range; screen it
                // before any physics runs. With the check tripped the
                // gradient stays zero and the error surfaces after the
                // solver update, which the caller then rolls back.
                if health.enabled && health_err.is_none() {
                    health_err = health
                        .check_points(stage, "reference positions", iteration, v)
                        .err();
                }
                if health_err.is_some() {
                    return;
                }
                // Scatter reference positions into the design.
                for (k, &id) in movable.iter().enumerate() {
                    design.set_pos(id, v[k]);
                }
                let field: DensityField =
                    model.compute(design, extras.inflation, extras.extra_density, target);
                overflow = field.overflow;
                density_penalty = field.penalty;

                full_grad.iter_mut().for_each(|p| *p = Point::default());
                {
                    let _wa_span = obs.span("wa_grad", "gp");
                    wa.accumulate_gradient_with(design, full_grad, pool, wa_scratch);
                }
                {
                    let _dg_span = obs.span("density_grad", "gp");
                    model.accumulate_gradient(design, &field, extras.inflation, lambda1, full_grad);
                }
                if let Some((cgrad, lambda2)) = extras.congestion_grad {
                    for &id in movable.iter() {
                        full_grad[id.index()].x += lambda2 * cgrad[id.index()].x;
                        full_grad[id.index()].y += lambda2 * cgrad[id.index()].y;
                    }
                }
                for (k, &id) in movable.iter().enumerate() {
                    g[k] = full_grad[id.index()];
                }

                // One O(movable) scan covers the summed WA + density +
                // congestion gradient; the two scalars cover the field.
                if health.enabled && health_err.is_none() {
                    health_err = health
                        .check_scalar(stage, "density overflow", iteration, field.overflow)
                        .and_then(|_| {
                            health.check_scalar(stage, "density penalty", iteration, field.penalty)
                        })
                        .and_then(|_| {
                            health.check_points(stage, "objective gradient", iteration, g)
                        })
                        .err();
                }
            },
            |p| die.clamp_point(p),
        );

        if let Some(e) = health_err {
            return Err(e);
        }
        // Catches step-length blow-ups that turn finite gradients into
        // non-finite proposals (projection keeps NaN as NaN).
        self.cfg.health.check_points(
            stage,
            "cell positions",
            iteration,
            self.solver.positions(),
        )?;

        // Commit the major solution.
        for (k, &id) in self.movable.iter().enumerate() {
            design.set_pos(id, self.solver.positions()[k]);
        }
        self.last_overflow = overflow;
        self.lambda1 *= self.cfg.lambda_growth;
        self.steps_done += 1;
        if obs.is_enabled() {
            obs.gauge_set("gamma", gamma);
            obs.gauge_set("lambda1", self.lambda1);
            obs.gauge_set("nesterov_alpha", self.solver.last_alpha());
            obs.series_push("gp_overflow", self.steps_done, overflow);
            obs.observe("gp_step_overflow", overflow);
        }
        Ok(StepReport {
            overflow,
            density_penalty,
            lambda1: self.lambda1,
            gamma,
        })
    }
}

/// γ annealing: large γ early (heavy smoothing) while overflow is high,
/// tightening toward the base value as the placement spreads.
fn gamma_scale(overflow: f64) -> f64 {
    1.0 + 9.0 * overflow.clamp(0.0, 1.0)
}

fn l1(p: Point) -> f64 {
    p.x.abs() + p.y.abs()
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Statistics of a completed wirelength-driven placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Final HPWL.
    pub hpwl: f64,
    /// Final density overflow.
    pub overflow: f64,
}

/// The wirelength-driven analytical global placer (problem (2)): the
/// "Xplace" baseline of the paper's Table I.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    cfg: PlacerConfig,
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(cfg: PlacerConfig) -> Self {
        GlobalPlacer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.cfg
    }

    /// Places the design, mutating cell positions, and returns statistics.
    ///
    /// # Errors
    ///
    /// Propagates health-monitor trips ([`RdpError::NonFinite`]); the
    /// rollback/retry policy lives in the flow (`run_flow`), not here.
    pub fn place(&self, design: &mut Design) -> Result<PlaceStats, RdpError> {
        let mut session = GpSession::new(design, self.cfg.clone());
        let mut iterations = 0;
        for i in 0..self.cfg.max_iters {
            let report = session.step(design, &StepExtras::default())?;
            iterations = i + 1;
            if i >= 20 && report.overflow < self.cfg.stop_overflow {
                break;
            }
        }
        Ok(PlaceStats {
            iterations,
            hpwl: design.hpwl(),
            overflow: session.overflow(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn small() -> Design {
        generate(
            "p",
            &GenParams {
                num_cells: 250,
                num_macros: 0,
                utilization: 0.55,
                io_terminals: 8,
                high_fanout_nets: 2,
                rail_pitch: 0.0,
                seed: 11,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn placement_reduces_overflow_below_target() {
        let mut d = small();
        let placer = GlobalPlacer::new(PlacerConfig {
            max_iters: 300,
            ..PlacerConfig::default()
        });
        let stats = placer.place(&mut d).unwrap();
        assert!(
            stats.overflow < 0.12,
            "overflow {} after {} iters",
            stats.overflow,
            stats.iterations
        );
    }

    #[test]
    fn placement_beats_center_blob_hpwl_growth() {
        // After spreading from the center the HPWL must stay well below a
        // random-like scatter: compare to the tile placement baseline.
        let mut d = small();
        let tile_hpwl = d.hpwl();
        let placer = GlobalPlacer::default();
        let stats = placer.place(&mut d).unwrap();
        // Analytic GP on a clustered netlist should land within a small
        // multiple of the compact tile placement's HPWL.
        assert!(
            stats.hpwl < tile_hpwl * 3.0,
            "hpwl {} vs tile {}",
            stats.hpwl,
            tile_hpwl
        );
    }

    #[test]
    fn all_cells_stay_inside_die() {
        let mut d = small();
        GlobalPlacer::default().place(&mut d).unwrap();
        let die = d.die();
        for c in d.movable_cells() {
            assert!(die.contains(d.pos(c)), "{c} at {} outside", d.pos(c));
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let mut d1 = small();
        let mut d2 = small();
        GlobalPlacer::default().place(&mut d1).unwrap();
        GlobalPlacer::default().place(&mut d2).unwrap();
        assert_eq!(d1.positions(), d2.positions());
    }

    #[test]
    fn extras_congestion_gradient_shifts_cells() {
        let mut d = small();
        GlobalPlacer::default().place(&mut d).unwrap();
        // A uniform rightward descent-gradient (negative x) pushes cells
        // right when applied via extras.
        let mut session = GpSession::new(
            &mut d,
            PlacerConfig {
                center_init: false,
                ..PlacerConfig::default()
            },
        );
        let before: f64 = session.movable().iter().map(|&c| d.pos(c).x).sum::<f64>();
        let cgrad = vec![Point::new(-1.0, 0.0); d.num_cells()];
        let extras = StepExtras {
            congestion_grad: Some((&cgrad, 1e3)),
            ..Default::default()
        };
        for _ in 0..5 {
            session.step(&mut d, &extras).unwrap();
        }
        let after: f64 = session.movable().iter().map(|&c| d.pos(c).x).sum::<f64>();
        assert!(after > before, "after {after} !> before {before}");
    }

    #[test]
    fn rebalance_lambda1_scales_linearly_with_factor() {
        let mut d = small();
        let mut session = GpSession::new(&mut d, PlacerConfig::default());
        for _ in 0..10 {
            session.step(&mut d, &StepExtras::default()).unwrap();
        }
        session
            .rebalance_lambda1(&d, &StepExtras::default(), 1.0)
            .unwrap();
        let base = session.lambda1();
        assert!(base > 0.0 && base.is_finite());
        session
            .rebalance_lambda1(&d, &StepExtras::default(), 3.0)
            .unwrap();
        let tripled = session.lambda1();
        assert!(
            (tripled - 3.0 * base).abs() < 1e-9 * tripled,
            "{tripled} vs 3x{base}"
        );
    }

    #[test]
    fn gamma_scale_monotone() {
        assert!(gamma_scale(1.0) > gamma_scale(0.5));
        assert!(gamma_scale(0.5) > gamma_scale(0.0));
        assert_eq!(gamma_scale(0.0), 1.0);
        assert_eq!(gamma_scale(2.0), 10.0);
    }
}
