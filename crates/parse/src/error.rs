//! Parse error type shared by the Bookshelf and DEF readers.

use std::error::Error;
use std::fmt;

/// Error produced while parsing a design file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseDesignError {
    /// Which file/section failed.
    pub context: String,
    /// Line number (1-based) when known.
    pub line: Option<usize>,
    /// Description of the problem.
    pub message: String,
}

impl ParseDesignError {
    pub(crate) fn new(context: &str, line: Option<usize>, message: impl Into<String>) -> Self {
        ParseDesignError {
            context: context.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "{} line {}: {}", self.context, l, self.message),
            None => write!(f, "{}: {}", self.context, self.message),
        }
    }
}

impl Error for ParseDesignError {}

impl From<ParseDesignError> for rdp_guard::RdpError {
    fn from(e: ParseDesignError) -> Self {
        rdp_guard::RdpError::Parse {
            context: e.context,
            line: e.line,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context_and_line() {
        let e = ParseDesignError::new("nodes", Some(3), "bad token");
        assert_eq!(format!("{e}"), "nodes line 3: bad token");
        let e2 = ParseDesignError::new("aux", None, "missing file");
        assert_eq!(format!("{e2}"), "aux: missing file");
    }
}
