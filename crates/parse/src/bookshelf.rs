//! Bookshelf-lite reader and writer.
//!
//! The classic GSRC Bookshelf placement format (.nodes/.nets/.pl/.scl)
//! extended with two small files the format lacks but the routability
//! flow needs:
//!
//! * `.route` — G-cell grid dimensions and per-layer directions/capacities,
//! * `.pg`    — power/ground rail rectangles.
//!
//! All geometry is written in microns with cell positions as **lower-left
//! corners** (the Bookshelf convention; the database stores centers).

use std::collections::HashMap;

use rdp_db::{
    Cell, CellId, CellKind, Design, DesignBuilder, Dir, PgRail, Point, Rect, RoutingLayer,
    RoutingSpec, Row,
};

use crate::error::ParseDesignError;

/// The in-memory contents of a Bookshelf-lite design bundle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BookshelfFiles {
    /// `.nodes` — cell names and sizes.
    pub nodes: String,
    /// `.nets` — hyperedges with pin offsets.
    pub nets: String,
    /// `.pl` — placements (lower-left corners).
    pub pl: String,
    /// `.scl` — placement rows.
    pub scl: String,
    /// `.route` — routing grid + layer stack (extension).
    pub route: String,
    /// `.pg` — PG rails (extension).
    pub pg: String,
}

/// Serializes a design to Bookshelf-lite strings.
pub fn write_bookshelf(design: &Design) -> BookshelfFiles {
    let mut nodes = String::new();
    nodes.push_str("UCLA nodes 1.0\n");
    nodes.push_str(&format!("NumNodes : {}\n", design.num_cells()));
    let n_fixed = design.cells().iter().filter(|c| c.fixed).count();
    nodes.push_str(&format!("NumTerminals : {n_fixed}\n"));
    for c in design.cells() {
        if c.fixed {
            nodes.push_str(&format!("{} {} {} terminal\n", c.name, c.w, c.h));
        } else {
            nodes.push_str(&format!("{} {} {}\n", c.name, c.w, c.h));
        }
    }

    let mut nets = String::new();
    nets.push_str("UCLA nets 1.0\n");
    nets.push_str(&format!("NumNets : {}\n", design.num_nets()));
    nets.push_str(&format!("NumPins : {}\n", design.num_pins()));
    for net in design.nets() {
        nets.push_str(&format!("NetDegree : {} {}\n", net.pins.len(), net.name));
        for &p in &net.pins {
            let pin = design.pin(p);
            let cell = design.cell(pin.cell);
            nets.push_str(&format!(
                "  {} B : {} {}\n",
                cell.name, pin.offset.x, pin.offset.y
            ));
        }
    }

    let mut pl = String::new();
    pl.push_str("UCLA pl 1.0\n");
    for (i, c) in design.cells().iter().enumerate() {
        let p = design.positions()[i];
        let (x, y) = (p.x - c.w / 2.0, p.y - c.h / 2.0);
        if c.fixed {
            pl.push_str(&format!("{} {} {} : N /FIXED\n", c.name, x, y));
        } else {
            pl.push_str(&format!("{} {} {} : N\n", c.name, x, y));
        }
    }

    let mut scl = String::new();
    scl.push_str("UCLA scl 1.0\n");
    scl.push_str(&format!("NumRows : {}\n", design.rows().len()));
    let die = design.die();
    scl.push_str(&format!(
        "DieArea : {} {} {} {}\n",
        die.lo.x, die.lo.y, die.hi.x, die.hi.y
    ));
    for r in design.rows() {
        scl.push_str(&format!(
            "CoreRow {} {} {} {} {}\n",
            r.y, r.height, r.x0, r.x1, r.site_w
        ));
    }

    let spec = design.routing();
    let mut route = String::new();
    route.push_str(&format!("Grid : {} {}\n", spec.gx, spec.gy));
    route.push_str(&format!("NumLayers : {}\n", spec.num_layers()));
    for l in &spec.layers {
        // Pitch is an optional trailing token so pitch-free designs keep
        // emitting byte-identical files (the determinism-guard contract).
        if l.pitch > 0.0 {
            route.push_str(&format!(
                "Layer {} {} {} {}\n",
                l.name, l.dir, l.capacity, l.pitch
            ));
        } else {
            route.push_str(&format!("Layer {} {} {}\n", l.name, l.dir, l.capacity));
        }
    }

    let mut pg = String::new();
    pg.push_str(&format!("NumRails : {}\n", design.rails().len()));
    for r in design.rails() {
        pg.push_str(&format!(
            "Rail {} {} {} {} {} {}\n",
            r.layer, r.dir, r.rect.lo.x, r.rect.lo.y, r.rect.hi.x, r.rect.hi.y
        ));
    }

    BookshelfFiles {
        nodes,
        nets,
        pl,
        scl,
        route,
        pg,
    }
}

/// Parses a Bookshelf-lite bundle back into a design.
///
/// # Errors
///
/// Returns [`ParseDesignError`] on malformed content, unknown cell
/// references, or inconsistent counts.
pub fn read_bookshelf(name: &str, files: &BookshelfFiles) -> Result<Design, ParseDesignError> {
    read_bookshelf_obs(name, files, &rdp_obs::Collector::disabled())
}

/// [`read_bookshelf`] with parsing timed under a `parse_bookshelf` span,
/// so `--profile` covers input parsing too.
///
/// # Errors
///
/// Same as [`read_bookshelf`].
pub fn read_bookshelf_obs(
    name: &str,
    files: &BookshelfFiles,
    obs: &rdp_obs::Collector,
) -> Result<Design, ParseDesignError> {
    let _span = obs.span("parse_bookshelf", "parse");
    // --- scl: die + rows -------------------------------------------------
    let mut die: Option<Rect> = None;
    let mut rows: Vec<Row> = Vec::new();
    for (ln, line) in files.scl.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["DieArea", ":", a, b, c, d] => {
                die = Some(Rect::new(
                    num("scl", ln, a)?,
                    num("scl", ln, b)?,
                    num("scl", ln, c)?,
                    num("scl", ln, d)?,
                ));
            }
            ["CoreRow", y, h, x0, x1, sw] => {
                let row = Row {
                    y: num("scl", ln, y)?,
                    height: num("scl", ln, h)?,
                    x0: num("scl", ln, x0)?,
                    x1: num("scl", ln, x1)?,
                    site_w: num("scl", ln, sw)?,
                };
                if row.height <= 0.0 || row.site_w <= 0.0 {
                    return Err(ParseDesignError::new(
                        "scl",
                        Some(ln + 1),
                        "row height and site width must be positive",
                    ));
                }
                rows.push(row);
            }
            _ => {}
        }
    }
    let die = die.ok_or_else(|| ParseDesignError::new("scl", None, "missing DieArea"))?;

    // --- nodes ------------------------------------------------------------
    struct NodeRec {
        w: f64,
        h: f64,
        fixed: bool,
    }
    let mut node_names: Vec<String> = Vec::new();
    let mut node_recs: Vec<NodeRec> = Vec::new();
    let mut declared_nodes: Option<(usize, usize)> = None; // (count, header line)
    for (ln, line) in files.nodes.lines().enumerate() {
        if line.starts_with("UCLA") || line.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if let ["NumNodes", ":", n] = toks.as_slice() {
            declared_nodes = Some((count("nodes", ln, n)?, ln + 1));
            continue;
        }
        if line.contains(':') {
            continue;
        }
        if toks.len() < 3 {
            return Err(ParseDesignError::new("nodes", Some(ln + 1), "short line"));
        }
        let (w, h) = (num("nodes", ln, toks[1])?, num("nodes", ln, toks[2])?);
        if w < 0.0 || h < 0.0 {
            return Err(ParseDesignError::new(
                "nodes",
                Some(ln + 1),
                format!("negative cell size `{w} x {h}`"),
            ));
        }
        node_names.push(toks[0].to_string());
        node_recs.push(NodeRec {
            w,
            h,
            fixed: toks.get(3) == Some(&"terminal"),
        });
    }
    if let Some((n, header_ln)) = declared_nodes {
        if n != node_recs.len() {
            return Err(ParseDesignError::new(
                "nodes",
                Some(header_ln),
                format!("NumNodes declares {n} but {} parsed", node_recs.len()),
            ));
        }
    }

    // --- pl ----------------------------------------------------------------
    let mut pos: HashMap<String, Point> = HashMap::new();
    for (ln, line) in files.pl.lines().enumerate() {
        if line.starts_with("UCLA") || line.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 {
            return Err(ParseDesignError::new("pl", Some(ln + 1), "short line"));
        }
        pos.insert(
            toks[0].to_string(),
            Point::new(num("pl", ln, toks[1])?, num("pl", ln, toks[2])?),
        );
    }

    // --- builder with cells --------------------------------------------------
    let mut b = DesignBuilder::new(name, die);
    let mut ids: HashMap<String, CellId> = HashMap::new();
    let row_h = rows.first().map(|r| r.height).unwrap_or(1.0);
    for (nm, rec) in node_names.iter().zip(&node_recs) {
        let ll = pos.get(nm).copied().unwrap_or_default();
        let center = Point::new(ll.x + rec.w / 2.0, ll.y + rec.h / 2.0);
        let cell = if rec.fixed && rec.w == 0.0 && rec.h == 0.0 {
            Cell::terminal(nm.clone())
        } else if rec.fixed && rec.h > row_h * 1.5 {
            Cell::fixed_macro(nm.clone(), rec.w, rec.h)
        } else if rec.fixed {
            Cell {
                name: nm.clone(),
                kind: CellKind::Std,
                w: rec.w,
                h: rec.h,
                fixed: true,
            }
        } else {
            Cell::std(nm.clone(), rec.w, rec.h)
        };
        ids.insert(nm.clone(), b.add_cell(cell, center));
    }
    for r in rows {
        b.add_row(r);
    }

    // --- nets -----------------------------------------------------------------
    let mut current: Option<(String, Vec<(CellId, Point)>)> = None;
    let flush = |b: &mut DesignBuilder, cur: &mut Option<(String, Vec<(CellId, Point)>)>| {
        if let Some((name, pins)) = cur.take() {
            b.add_net(name, pins);
        }
    };
    let mut declared_nets: Option<(usize, usize)> = None;
    let mut parsed_nets = 0usize;
    for (ln, line) in files.nets.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["NumNets", ":", n] => declared_nets = Some((count("nets", ln, n)?, ln + 1)),
            ["NetDegree", ":", _k, name] => {
                flush(&mut b, &mut current);
                current = Some(((*name).to_string(), Vec::new()));
                parsed_nets += 1;
            }
            [cell, _dir, ":", ox, oy] => {
                let id = *ids.get(*cell).ok_or_else(|| {
                    ParseDesignError::new("nets", Some(ln + 1), format!("unknown cell `{cell}`"))
                })?;
                if let Some((_, pins)) = current.as_mut() {
                    pins.push((id, Point::new(num("nets", ln, ox)?, num("nets", ln, oy)?)));
                }
            }
            _ => {}
        }
    }
    flush(&mut b, &mut current);
    if let Some((n, header_ln)) = declared_nets {
        if n != parsed_nets {
            return Err(ParseDesignError::new(
                "nets",
                Some(header_ln),
                format!("NumNets declares {n} but {parsed_nets} parsed"),
            ));
        }
    }

    // --- pg ----------------------------------------------------------------------
    for (ln, line) in files.pg.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        if let ["Rail", layer, dir, a, c, d, e] = toks.as_slice() {
            b.add_rail(PgRail {
                layer: layer
                    .parse()
                    .map_err(|_| ParseDesignError::new("pg", Some(ln + 1), "bad layer index"))?,
                dir: parse_dir("pg", ln, dir)?,
                rect: Rect::new(
                    num("pg", ln, a)?,
                    num("pg", ln, c)?,
                    num("pg", ln, d)?,
                    num("pg", ln, e)?,
                ),
            });
        }
    }

    // --- route ---------------------------------------------------------------------
    let mut gx = 16usize;
    let mut gy = 16usize;
    let mut layers: Vec<RoutingLayer> = Vec::new();
    for (ln, line) in files.route.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["Grid", ":", a, bb] => {
                gx = a
                    .parse()
                    .map_err(|_| ParseDesignError::new("route", Some(ln + 1), "bad grid x"))?;
                gy = bb
                    .parse()
                    .map_err(|_| ParseDesignError::new("route", Some(ln + 1), "bad grid y"))?;
            }
            ["Layer", name, dir, cap] => layers.push(RoutingLayer {
                name: (*name).to_string(),
                dir: parse_dir("route", ln, dir)?,
                capacity: num("route", ln, cap)?,
                pitch: 0.0,
            }),
            ["Layer", name, dir, cap, pitch] => layers.push(RoutingLayer {
                name: (*name).to_string(),
                dir: parse_dir("route", ln, dir)?,
                capacity: num("route", ln, cap)?,
                pitch: num("route", ln, pitch)?,
            }),
            _ => {}
        }
    }
    if layers.is_empty() {
        return Err(ParseDesignError::new("route", None, "no layers"));
    }
    b.routing(RoutingSpec { layers, gx, gy });

    b.build()
        .map_err(|e| ParseDesignError::new("build", None, e.to_string()))
}

fn num(ctx: &str, line: usize, tok: &str) -> Result<f64, ParseDesignError> {
    let v: f64 = tok
        .parse()
        .map_err(|_| ParseDesignError::new(ctx, Some(line + 1), format!("bad number `{tok}`")))?;
    if !v.is_finite() {
        return Err(ParseDesignError::new(
            ctx,
            Some(line + 1),
            format!("non-finite number `{tok}`"),
        ));
    }
    Ok(v)
}

fn count(ctx: &str, line: usize, tok: &str) -> Result<usize, ParseDesignError> {
    tok.parse()
        .map_err(|_| ParseDesignError::new(ctx, Some(line + 1), format!("bad count `{tok}`")))
}

fn parse_dir(ctx: &str, line: usize, tok: &str) -> Result<Dir, ParseDesignError> {
    match tok {
        "H" => Ok(Dir::Horizontal),
        "V" => Ok(Dir::Vertical),
        _ => Err(ParseDesignError::new(
            ctx,
            Some(line + 1),
            format!("bad direction `{tok}`"),
        )),
    }
}

/// Writes a bundle to `<dir>/<base>.{nodes,nets,pl,scl,route,pg,aux}`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_bookshelf(design: &Design, dir: &std::path::Path, base: &str) -> std::io::Result<()> {
    let files = write_bookshelf(design);
    std::fs::create_dir_all(dir)?;
    let w = |ext: &str, content: &str| std::fs::write(dir.join(format!("{base}.{ext}")), content);
    w("nodes", &files.nodes)?;
    w("nets", &files.nets)?;
    w("pl", &files.pl)?;
    w("scl", &files.scl)?;
    w("route", &files.route)?;
    w("pg", &files.pg)?;
    w(
        "aux",
        &format!(
            "RowBasedPlacement : {base}.nodes {base}.nets {base}.pl {base}.scl {base}.route {base}.pg\n"
        ),
    )
}

/// Loads a bundle saved by [`save_bookshelf`].
///
/// # Errors
///
/// Returns an error for missing files or malformed content.
pub fn load_bookshelf(
    dir: &std::path::Path,
    base: &str,
) -> Result<Design, Box<dyn std::error::Error>> {
    load_bookshelf_obs(dir, base, &rdp_obs::Collector::disabled())
}

/// [`load_bookshelf`] with file reads and parsing timed under a
/// `parse_bookshelf` span.
///
/// # Errors
///
/// Same as [`load_bookshelf`].
pub fn load_bookshelf_obs(
    dir: &std::path::Path,
    base: &str,
    obs: &rdp_obs::Collector,
) -> Result<Design, Box<dyn std::error::Error>> {
    let _span = obs.span("parse_bookshelf", "parse");
    let r = |ext: &str| std::fs::read_to_string(dir.join(format!("{base}.{ext}")));
    let files = BookshelfFiles {
        nodes: r("nodes")?,
        nets: r("nets")?,
        pl: r("pl")?,
        scl: r("scl")?,
        route: r("route")?,
        pg: r("pg")?,
    };
    Ok(read_bookshelf(base, &files)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn sample() -> Design {
        generate(
            "bk",
            &GenParams {
                num_cells: 120,
                num_macros: 2,
                macro_fraction: 0.15,
                utilization: 0.5,
                io_terminals: 6,
                rail_pitch: 1.0,
                seed: 21,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let d = sample();
        let files = write_bookshelf(&d);
        let back = read_bookshelf("bk", &files).expect("parse");
        assert_eq!(back.num_cells(), d.num_cells());
        assert_eq!(back.num_nets(), d.num_nets());
        assert_eq!(back.num_pins(), d.num_pins());
        assert_eq!(back.rails().len(), d.rails().len());
        assert_eq!(back.rows().len(), d.rows().len());
        assert_eq!(back.routing(), d.routing());
        assert_eq!(back.die(), d.die());
    }

    #[test]
    fn roundtrip_preserves_geometry() {
        let d = sample();
        let back = read_bookshelf("bk", &write_bookshelf(&d)).unwrap();
        assert!((back.hpwl() - d.hpwl()).abs() < 1e-6);
        for i in 0..d.num_cells() {
            let a = d.positions()[i];
            let b = back.positions()[i];
            assert!(a.distance(b) < 1e-9, "cell {i}: {a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_preserves_kinds_and_fixedness() {
        let d = sample();
        let back = read_bookshelf("bk", &write_bookshelf(&d)).unwrap();
        for (a, b) in d.cells().iter().zip(back.cells()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.fixed, b.fixed, "{}", a.name);
            assert_eq!(a.kind, b.kind, "{}", a.name);
        }
    }

    #[test]
    fn unknown_cell_in_net_is_an_error() {
        let d = sample();
        let mut files = write_bookshelf(&d);
        files
            .nets
            .push_str("NetDegree : 2 broken\n  ghost B : 0 0\n  u0 B : 0 0\n");
        let err = read_bookshelf("bk", &files).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn missing_layers_is_an_error() {
        let d = sample();
        let mut files = write_bookshelf(&d);
        files.route.clear();
        assert!(read_bookshelf("bk", &files).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let d = sample();
        let dir = std::env::temp_dir().join("rdp_bookshelf_test");
        save_bookshelf(&d, &dir, "t").unwrap();
        let back = load_bookshelf(&dir, "t").unwrap();
        assert_eq!(back.num_cells(), d.num_cells());
        std::fs::remove_dir_all(&dir).ok();
    }
}
