//! # rdp-parse — design file formats
//!
//! Readers and writers so real benchmark data can flow in and out of the
//! `rdp` stack:
//!
//! * [`write_bookshelf`] / [`read_bookshelf`] — the GSRC Bookshelf
//!   placement format (.nodes/.nets/.pl/.scl) with two lite extensions
//!   (.route for the routing grid, .pg for power rails),
//! * [`write_lefdef`] / [`read_lefdef`] — a documented LEF/DEF subset,
//! * [`save_bookshelf`] / [`load_bookshelf`] — filesystem convenience
//!   wrappers.
//!
//! Both formats round-trip: `read(write(design))` preserves the netlist,
//! geometry (to 1/1000 µm for DEF), floorplan, and routing environment.
//!
//! ```
//! use rdp_gen::{generate, GenParams};
//! use rdp_parse::{read_bookshelf, write_bookshelf};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate("demo", &GenParams { num_cells: 50, ..GenParams::default() });
//! let files = write_bookshelf(&design);
//! let back = read_bookshelf("demo", &files)?;
//! assert_eq!(back.num_nets(), design.num_nets());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bookshelf;
mod deflite;
mod error;

pub use bookshelf::{
    load_bookshelf, load_bookshelf_obs, read_bookshelf, read_bookshelf_obs, save_bookshelf,
    write_bookshelf, BookshelfFiles,
};
pub use deflite::{read_lefdef, read_lefdef_obs, write_lefdef, LefDefFiles};
pub use error::ParseDesignError;
