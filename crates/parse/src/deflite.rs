//! LEF/DEF-lite writer and reader.
//!
//! A compact subset of the LEF/DEF pair that industry flows (and the ISPD
//! 2015 benchmarks) use, sufficient to carry everything the routability
//! flow needs. Deliberate simplifications, documented here:
//!
//! * LEF `MACRO`s carry only `CLASS` and `SIZE`; one macro is emitted per
//!   distinct (class, w, h) combination.
//! * DEF `NETS` list `( <component> <dx> <dy> )` pin triples with offsets
//!   from the component **center** instead of LEF pin names.
//! * PG rails are written as `SPECIALNETS` wire rectangles on their layer.
//! * A nonstandard `GCELLGRID`/`LAYERCAP` pair records the routing grid
//!   and per-layer capacities (DEF has no capacity construct).
//!
//! Distances are DEF database units at `UNITS DISTANCE MICRONS 1000`, so
//! geometry round-trips to 1/1000 µm.

use std::collections::HashMap;

use rdp_db::{
    Cell, CellId, CellKind, Design, DesignBuilder, Dir, PgRail, Point, Rect, RoutingLayer,
    RoutingSpec, Row,
};

use crate::error::ParseDesignError;

const DBU: f64 = 1000.0;

/// A LEF-lite + DEF-lite pair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LefDefFiles {
    /// The LEF-lite library (cell classes and sizes).
    pub lef: String,
    /// The DEF-lite design.
    pub def: String,
}

fn dbu(v: f64) -> i64 {
    (v * DBU).round() as i64
}

fn from_dbu(v: i64) -> f64 {
    v as f64 / DBU
}

/// Serializes a design to a LEF/DEF-lite pair.
pub fn write_lefdef(design: &Design) -> LefDefFiles {
    // Distinct cell types.
    let mut types: Vec<(CellKind, i64, i64)> = Vec::new();
    let mut type_of: Vec<usize> = Vec::with_capacity(design.num_cells());
    for c in design.cells() {
        let key = (c.kind, dbu(c.w), dbu(c.h));
        let idx = match types.iter().position(|t| *t == key) {
            Some(i) => i,
            None => {
                types.push(key);
                types.len() - 1
            }
        };
        type_of.push(idx);
    }

    let mut lef = String::from("VERSION 5.8 ;\nUNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n");
    for (i, (kind, w, h)) in types.iter().enumerate() {
        let class = match kind {
            CellKind::Std => "CORE",
            CellKind::Macro => "BLOCK",
            CellKind::Terminal => "PAD",
        };
        lef.push_str(&format!(
            "MACRO T{i}\n  CLASS {class} ;\n  SIZE {} BY {} ;\nEND T{i}\n",
            from_dbu(*w),
            from_dbu(*h)
        ));
    }
    lef.push_str("END LIBRARY\n");

    let die = design.die();
    let mut def = String::new();
    def.push_str("VERSION 5.8 ;\n");
    def.push_str(&format!("DESIGN {} ;\n", design.name()));
    def.push_str("UNITS DISTANCE MICRONS 1000 ;\n");
    def.push_str(&format!(
        "DIEAREA ( {} {} ) ( {} {} ) ;\n",
        dbu(die.lo.x),
        dbu(die.lo.y),
        dbu(die.hi.x),
        dbu(die.hi.y)
    ));
    for (i, r) in design.rows().iter().enumerate() {
        def.push_str(&format!(
            "ROW row_{i} core {} {} N DO {} BY 1 STEP {} 0 ;\n",
            dbu(r.x0),
            dbu(r.y),
            r.num_sites(),
            dbu(r.site_w)
        ));
    }
    def.push_str(&format!(
        "GCELLGRID {} {} ;\n",
        design.routing().gx,
        design.routing().gy
    ));
    for l in &design.routing().layers {
        def.push_str(&format!("LAYERCAP {} {} {} ;\n", l.name, l.dir, l.capacity));
    }

    def.push_str(&format!("COMPONENTS {} ;\n", design.num_cells()));
    for (i, c) in design.cells().iter().enumerate() {
        let p = design.positions()[i];
        let ll = (dbu(p.x - c.w / 2.0), dbu(p.y - c.h / 2.0));
        let state = if c.fixed { "FIXED" } else { "PLACED" };
        def.push_str(&format!(
            "- {} T{} + {state} ( {} {} ) N ;\n",
            c.name, type_of[i], ll.0, ll.1
        ));
    }
    def.push_str("END COMPONENTS\n");

    def.push_str(&format!("NETS {} ;\n", design.num_nets()));
    for net in design.nets() {
        def.push_str(&format!("- {}", net.name));
        for &p in &net.pins {
            let pin = design.pin(p);
            def.push_str(&format!(
                " ( {} {} {} )",
                design.cell(pin.cell).name,
                dbu(pin.offset.x),
                dbu(pin.offset.y)
            ));
        }
        def.push_str(" ;\n");
    }
    def.push_str("END NETS\n");

    def.push_str(&format!("SPECIALNETS {} ;\n", design.rails().len()));
    for r in design.rails() {
        def.push_str(&format!(
            "- PG M{} {} RECT ( {} {} ) ( {} {} ) ;\n",
            r.layer + 1,
            r.dir,
            dbu(r.rect.lo.x),
            dbu(r.rect.lo.y),
            dbu(r.rect.hi.x),
            dbu(r.rect.hi.y)
        ));
    }
    def.push_str("END SPECIALNETS\nEND DESIGN\n");

    LefDefFiles { lef, def }
}

/// Parses a LEF/DEF-lite pair back into a design.
///
/// # Errors
///
/// Returns [`ParseDesignError`] on malformed content or dangling
/// references.
pub fn read_lefdef(files: &LefDefFiles) -> Result<Design, ParseDesignError> {
    read_lefdef_obs(files, &rdp_obs::Collector::disabled())
}

/// [`read_lefdef`] with parsing timed under a `parse_lefdef` span, so
/// `--profile` covers input parsing too.
///
/// # Errors
///
/// Same as [`read_lefdef`].
pub fn read_lefdef_obs(
    files: &LefDefFiles,
    obs: &rdp_obs::Collector,
) -> Result<Design, ParseDesignError> {
    let _span = obs.span("parse_lefdef", "parse");
    // --- LEF: cell types -------------------------------------------------
    struct TypeRec {
        kind: CellKind,
        w: f64,
        h: f64,
    }
    let mut types: HashMap<String, TypeRec> = HashMap::new();
    let mut cur: Option<String> = None;
    for (ln, line) in files.lef.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["MACRO", name] => {
                cur = Some((*name).to_string());
                types.insert(
                    (*name).to_string(),
                    TypeRec {
                        kind: CellKind::Std,
                        w: 0.0,
                        h: 0.0,
                    },
                );
            }
            ["CLASS", class, ";"] => {
                if let Some(name) = &cur {
                    let rec = types.get_mut(name).ok_or_else(|| {
                        ParseDesignError::new("lef", Some(ln + 1), "CLASS outside MACRO")
                    })?;
                    rec.kind = match *class {
                        "CORE" => CellKind::Std,
                        "BLOCK" => CellKind::Macro,
                        "PAD" => CellKind::Terminal,
                        other => {
                            return Err(ParseDesignError::new(
                                "lef",
                                Some(ln + 1),
                                format!("unknown class `{other}`"),
                            ))
                        }
                    };
                }
            }
            ["SIZE", w, "BY", h, ";"] => {
                if let Some(name) = &cur {
                    let rec = types.get_mut(name).ok_or_else(|| {
                        ParseDesignError::new("lef", Some(ln + 1), "SIZE outside MACRO")
                    })?;
                    rec.w = num("lef", ln, w)?;
                    rec.h = num("lef", ln, h)?;
                }
            }
            ["END", name] if Some(*name) == cur.as_deref() => cur = None,
            _ => {}
        }
    }

    // --- DEF --------------------------------------------------------------
    let mut design_name = String::from("design");
    let mut die: Option<Rect> = None;
    let mut rows: Vec<Row> = Vec::new();
    let mut gx = 16usize;
    let mut gy = 16usize;
    let mut layers: Vec<RoutingLayer> = Vec::new();
    let mut comps: Vec<(String, String, Point, bool)> = Vec::new(); // name, type, ll(µm), fixed
    let mut nets: Vec<(String, Vec<(String, Point)>)> = Vec::new();
    let mut rails: Vec<PgRail> = Vec::new();
    let mut section = "";

    for (ln, line) in files.def.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["DESIGN", name, ";"] => design_name = (*name).to_string(),
            ["DIEAREA", "(", a, b, ")", "(", c, d, ")", ";"] => {
                die = Some(Rect::new(
                    from_dbu(int("def", ln, a)?),
                    from_dbu(int("def", ln, b)?),
                    from_dbu(int("def", ln, c)?),
                    from_dbu(int("def", ln, d)?),
                ));
            }
            ["ROW", _name, _site, x, y, "N", "DO", n, "BY", "1", "STEP", sw, "0", ";"] => {
                let x0 = from_dbu(int("def", ln, x)?);
                let site_w = from_dbu(int("def", ln, sw)?);
                let sites: usize = n
                    .parse()
                    .map_err(|_| ParseDesignError::new("def", Some(ln + 1), "bad site count"))?;
                rows.push(Row {
                    y: from_dbu(int("def", ln, y)?),
                    height: 0.0, // filled below from the row pitch
                    x0,
                    x1: x0 + sites as f64 * site_w,
                    site_w,
                });
            }
            ["GCELLGRID", a, b, ";"] => {
                gx = a
                    .parse()
                    .map_err(|_| ParseDesignError::new("def", Some(ln + 1), "bad gcell x"))?;
                gy = b
                    .parse()
                    .map_err(|_| ParseDesignError::new("def", Some(ln + 1), "bad gcell y"))?;
            }
            ["LAYERCAP", name, dir, cap, ";"] => layers.push(RoutingLayer {
                name: (*name).to_string(),
                dir: match *dir {
                    "H" => Dir::Horizontal,
                    "V" => Dir::Vertical,
                    other => {
                        return Err(ParseDesignError::new(
                            "def",
                            Some(ln + 1),
                            format!("bad dir `{other}`"),
                        ))
                    }
                },
                capacity: num("def", ln, cap)?,
            }),
            ["COMPONENTS", ..] => section = "components",
            ["NETS", ..] if section != "nets" && !line.starts_with('-') => section = "nets",
            ["SPECIALNETS", ..] => section = "specialnets",
            ["END", ..] => section = "",
            _ if line.starts_with('-') => match section {
                "components" => {
                    // - name Tk + STATE ( x y ) N ;
                    if toks.len() < 10 {
                        return Err(ParseDesignError::new(
                            "def",
                            Some(ln + 1),
                            "short component line",
                        ));
                    }
                    // - name Tk + STATE ( x y ) N ;
                    let fixed = toks[4] == "FIXED";
                    comps.push((
                        toks[1].to_string(),
                        toks[2].to_string(),
                        Point::new(
                            from_dbu(int("def", ln, toks[6])?),
                            from_dbu(int("def", ln, toks[7])?),
                        ),
                        fixed,
                    ));
                }
                "nets" => {
                    // - name ( comp dx dy ) ... ;
                    if toks.len() < 2 {
                        return Err(ParseDesignError::new("def", Some(ln + 1), "short net line"));
                    }
                    let name = toks[1].to_string();
                    let mut pins = Vec::new();
                    let mut i = 2;
                    while i + 4 < toks.len() {
                        if toks[i] == "(" {
                            pins.push((
                                toks[i + 1].to_string(),
                                Point::new(
                                    from_dbu(int("def", ln, toks[i + 2])?),
                                    from_dbu(int("def", ln, toks[i + 3])?),
                                ),
                            ));
                            i += 5;
                        } else {
                            i += 1;
                        }
                    }
                    nets.push((name, pins));
                }
                "specialnets" => {
                    // - PG M<k> <dir> RECT ( a b ) ( c d ) ;
                    if toks.len() >= 13 {
                        let layer: u8 = toks[2]
                            .trim_start_matches('M')
                            .parse::<u8>()
                            .ok()
                            .and_then(|m| m.checked_sub(1))
                            .ok_or_else(|| {
                                ParseDesignError::new("def", Some(ln + 1), "bad rail layer")
                            })?;
                        let dir = match toks[3] {
                            "H" => Dir::Horizontal,
                            _ => Dir::Vertical,
                        };
                        rails.push(PgRail {
                            layer,
                            dir,
                            rect: Rect::new(
                                from_dbu(int("def", ln, toks[6])?),
                                from_dbu(int("def", ln, toks[7])?),
                                from_dbu(int("def", ln, toks[10])?),
                                from_dbu(int("def", ln, toks[11])?),
                            ),
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    let die = die.ok_or_else(|| ParseDesignError::new("def", None, "missing DIEAREA"))?;

    // Row height = pitch between consecutive rows (or a default).
    let height = if rows.len() >= 2 {
        (rows[1].y - rows[0].y).abs()
    } else {
        2.0
    };
    for r in &mut rows {
        r.height = height;
    }

    let mut b = DesignBuilder::new(design_name, die);
    let mut ids: HashMap<String, CellId> = HashMap::new();
    for (name, ty, ll, fixed) in comps {
        let rec = types
            .get(&ty)
            .ok_or_else(|| ParseDesignError::new("def", None, format!("unknown type `{ty}`")))?;
        let center = Point::new(ll.x + rec.w / 2.0, ll.y + rec.h / 2.0);
        let cell = Cell {
            name: name.clone(),
            kind: rec.kind,
            w: rec.w,
            h: rec.h,
            fixed,
        };
        ids.insert(name, b.add_cell(cell, center));
    }
    for (name, pins) in nets {
        let mut resolved = Vec::with_capacity(pins.len());
        for (comp, off) in pins {
            let id = *ids.get(&comp).ok_or_else(|| {
                ParseDesignError::new("def", None, format!("net `{name}` references `{comp}`"))
            })?;
            resolved.push((id, off));
        }
        b.add_net(name, resolved);
    }
    for r in rows {
        b.add_row(r);
    }
    for r in rails {
        b.add_rail(r);
    }
    if layers.is_empty() {
        return Err(ParseDesignError::new("def", None, "no LAYERCAP entries"));
    }
    b.routing(RoutingSpec { layers, gx, gy });
    b.build()
        .map_err(|e| ParseDesignError::new("build", None, e.to_string()))
}

fn num(ctx: &str, line: usize, tok: &str) -> Result<f64, ParseDesignError> {
    let v: f64 = tok
        .parse()
        .map_err(|_| ParseDesignError::new(ctx, Some(line + 1), format!("bad number `{tok}`")))?;
    if !v.is_finite() {
        return Err(ParseDesignError::new(
            ctx,
            Some(line + 1),
            format!("non-finite number `{tok}`"),
        ));
    }
    Ok(v)
}

fn int(ctx: &str, line: usize, tok: &str) -> Result<i64, ParseDesignError> {
    tok.parse()
        .map_err(|_| ParseDesignError::new(ctx, Some(line + 1), format!("bad integer `{tok}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn sample() -> Design {
        generate(
            "ld",
            &GenParams {
                num_cells: 100,
                num_macros: 2,
                macro_fraction: 0.15,
                utilization: 0.5,
                io_terminals: 4,
                rail_pitch: 1.0,
                seed: 33,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn roundtrip_counts_and_structure() {
        let d = sample();
        let back = read_lefdef(&write_lefdef(&d)).expect("parse");
        assert_eq!(back.num_cells(), d.num_cells());
        assert_eq!(back.num_nets(), d.num_nets());
        assert_eq!(back.num_pins(), d.num_pins());
        assert_eq!(back.rails().len(), d.rails().len());
        assert_eq!(back.rows().len(), d.rows().len());
        assert_eq!(back.routing().gx, d.routing().gx);
        assert_eq!(back.routing().num_layers(), d.routing().num_layers());
    }

    #[test]
    fn roundtrip_geometry_within_dbu() {
        let d = sample();
        let back = read_lefdef(&write_lefdef(&d)).unwrap();
        for i in 0..d.num_cells() {
            let a = d.positions()[i];
            let b = back.positions()[i];
            assert!(a.distance(b) < 2e-3, "cell {i}: {a} vs {b}");
        }
        assert!((back.hpwl() - d.hpwl()).abs() / d.hpwl().max(1.0) < 1e-3);
    }

    #[test]
    fn roundtrip_kinds() {
        let d = sample();
        let back = read_lefdef(&write_lefdef(&d)).unwrap();
        for (a, b) in d.cells().iter().zip(back.cells()) {
            assert_eq!(a.kind, b.kind, "{}", a.name);
            assert_eq!(a.fixed, b.fixed, "{}", a.name);
        }
    }

    #[test]
    fn missing_diearea_is_error() {
        let d = sample();
        let mut files = write_lefdef(&d);
        files.def = files
            .def
            .lines()
            .filter(|l| !l.starts_with("DIEAREA"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(read_lefdef(&files).is_err());
    }

    #[test]
    fn unknown_component_type_is_error() {
        let d = sample();
        let mut files = write_lefdef(&d);
        files.lef = files.lef.replace("MACRO T0", "MACRO TX");
        // T0 components now reference a missing type — but only if TX
        // didn't leave an END mismatch; rebuild minimal check:
        let err = read_lefdef(&files);
        assert!(err.is_err());
    }
}
