//! LEF/DEF-lite writer and reader.
//!
//! A compact subset of the LEF/DEF pair that industry flows (and the ISPD
//! 2015 benchmarks) use, sufficient to carry everything the routability
//! flow needs. Deliberate simplifications, documented here:
//!
//! * LEF `MACRO`s carry `CLASS`, `SIZE`, and optional `OBS` routing
//!   blockage geometry; one macro is emitted per distinct (class, w, h)
//!   combination. `OBS` rectangles are materialized per placed component.
//! * LEF `LAYER` blocks carry `DIRECTION` and `PITCH` for each routing
//!   layer of the stack.
//! * DEF `NETS` list `( <component> <dx> <dy> )` pin triples with offsets
//!   from the component **center** instead of LEF pin names.
//! * DEF `TRACKS` statements record the track grid (origin/count/step) per
//!   layer; the step doubles as the layer pitch when the LEF omits it.
//! * DEF `BLOCKAGES` entries carry standalone routing blockages.
//! * PG rails are written as `SPECIALNETS` wire rectangles on their layer.
//! * A nonstandard `GCELLGRID`/`LAYERCAP` pair records the routing grid
//!   and per-layer capacities (DEF has no capacity construct). When the
//!   DEF has no `LAYERCAP` entries the stack is reconstructed from the
//!   LEF `LAYER` blocks, with capacity estimated from the track pitch.
//!
//! Distances are DEF database units at `UNITS DISTANCE MICRONS 1000`, so
//! geometry round-trips to 1/1000 µm.

use std::collections::{HashMap, HashSet};

use rdp_db::{
    Cell, CellId, CellKind, Design, DesignBuilder, Dir, Obstruction, PgRail, Point, Rect,
    RoutingLayer, RoutingSpec, Row,
};

use crate::error::ParseDesignError;

const DBU: f64 = 1000.0;

/// A LEF-lite + DEF-lite pair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LefDefFiles {
    /// The LEF-lite library (cell classes and sizes).
    pub lef: String,
    /// The DEF-lite design.
    pub def: String,
}

fn dbu(v: f64) -> i64 {
    (v * DBU).round() as i64
}

fn from_dbu(v: i64) -> f64 {
    v as f64 / DBU
}

/// Serializes a design to a LEF/DEF-lite pair.
pub fn write_lefdef(design: &Design) -> LefDefFiles {
    // Distinct cell types.
    let mut types: Vec<(CellKind, i64, i64)> = Vec::new();
    let mut type_of: Vec<usize> = Vec::with_capacity(design.num_cells());
    for c in design.cells() {
        let key = (c.kind, dbu(c.w), dbu(c.h));
        let idx = match types.iter().position(|t| *t == key) {
            Some(i) => i,
            None => {
                types.push(key);
                types.len() - 1
            }
        };
        type_of.push(idx);
    }

    let mut lef = String::from("VERSION 5.8 ;\nUNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n");
    for l in &design.routing().layers {
        let dir = match l.dir {
            Dir::Horizontal => "HORIZONTAL",
            Dir::Vertical => "VERTICAL",
        };
        lef.push_str(&format!(
            "LAYER {}\n  TYPE ROUTING ;\n  DIRECTION {dir} ;\n",
            l.name
        ));
        if l.pitch > 0.0 {
            lef.push_str(&format!("  PITCH {} ;\n", l.pitch));
        }
        lef.push_str(&format!("END {}\n", l.name));
    }
    for (i, (kind, w, h)) in types.iter().enumerate() {
        let class = match kind {
            CellKind::Std => "CORE",
            CellKind::Macro => "BLOCK",
            CellKind::Terminal => "PAD",
        };
        lef.push_str(&format!(
            "MACRO T{i}\n  CLASS {class} ;\n  SIZE {} BY {} ;\nEND T{i}\n",
            from_dbu(*w),
            from_dbu(*h)
        ));
    }
    lef.push_str("END LIBRARY\n");

    let die = design.die();
    let mut def = String::new();
    def.push_str("VERSION 5.8 ;\n");
    def.push_str(&format!("DESIGN {} ;\n", design.name()));
    def.push_str("UNITS DISTANCE MICRONS 1000 ;\n");
    def.push_str(&format!(
        "DIEAREA ( {} {} ) ( {} {} ) ;\n",
        dbu(die.lo.x),
        dbu(die.lo.y),
        dbu(die.hi.x),
        dbu(die.hi.y)
    ));
    for (i, r) in design.rows().iter().enumerate() {
        def.push_str(&format!(
            "ROW row_{i} core {} {} N DO {} BY 1 STEP {} 0 ;\n",
            dbu(r.x0),
            dbu(r.y),
            r.num_sites(),
            dbu(r.site_w)
        ));
    }
    def.push_str(&format!(
        "GCELLGRID {} {} ;\n",
        design.routing().gx,
        design.routing().gy
    ));
    for l in &design.routing().layers {
        def.push_str(&format!("LAYERCAP {} {} {} ;\n", l.name, l.dir, l.capacity));
    }
    for l in &design.routing().layers {
        if l.pitch <= 0.0 {
            continue;
        }
        // Vertical wires run at x positions (TRACKS X), horizontal at y.
        let (axis, lo, hi) = match l.dir {
            Dir::Vertical => ("X", die.lo.x, die.hi.x),
            Dir::Horizontal => ("Y", die.lo.y, die.hi.y),
        };
        // Track count in integer dbu space, so a 1-ULP wiggle of the
        // micron values after a round-trip cannot change the count.
        let step = dbu(l.pitch).max(1);
        let n = ((dbu(hi) - dbu(lo)) / step).max(1);
        def.push_str(&format!(
            "TRACKS {axis} {} DO {n} STEP {step} LAYER {} ;\n",
            dbu(lo + l.pitch / 2.0),
            l.name
        ));
    }

    def.push_str(&format!("COMPONENTS {} ;\n", design.num_cells()));
    for (i, c) in design.cells().iter().enumerate() {
        let p = design.positions()[i];
        let ll = (dbu(p.x - c.w / 2.0), dbu(p.y - c.h / 2.0));
        let state = if c.fixed { "FIXED" } else { "PLACED" };
        def.push_str(&format!(
            "- {} T{} + {state} ( {} {} ) N ;\n",
            c.name, type_of[i], ll.0, ll.1
        ));
    }
    def.push_str("END COMPONENTS\n");

    def.push_str(&format!("NETS {} ;\n", design.num_nets()));
    for net in design.nets() {
        def.push_str(&format!("- {}", net.name));
        for &p in &net.pins {
            let pin = design.pin(p);
            def.push_str(&format!(
                " ( {} {} {} )",
                design.cell(pin.cell).name,
                dbu(pin.offset.x),
                dbu(pin.offset.y)
            ));
        }
        def.push_str(" ;\n");
    }
    def.push_str("END NETS\n");

    if !design.obstructions().is_empty() {
        def.push_str(&format!("BLOCKAGES {} ;\n", design.obstructions().len()));
        for o in design.obstructions() {
            let lname = design
                .routing()
                .layers
                .get(o.layer as usize)
                .map(|l| l.name.clone())
                .unwrap_or_else(|| format!("M{}", o.layer + 1));
            def.push_str(&format!(
                "- LAYER {lname} RECT ( {} {} ) ( {} {} ) ;\n",
                dbu(o.rect.lo.x),
                dbu(o.rect.lo.y),
                dbu(o.rect.hi.x),
                dbu(o.rect.hi.y)
            ));
        }
        def.push_str("END BLOCKAGES\n");
    }

    def.push_str(&format!("SPECIALNETS {} ;\n", design.rails().len()));
    for r in design.rails() {
        def.push_str(&format!(
            "- PG M{} {} RECT ( {} {} ) ( {} {} ) ;\n",
            r.layer + 1,
            r.dir,
            dbu(r.rect.lo.x),
            dbu(r.rect.lo.y),
            dbu(r.rect.hi.x),
            dbu(r.rect.hi.y)
        ));
    }
    def.push_str("END SPECIALNETS\nEND DESIGN\n");

    LefDefFiles { lef, def }
}

/// Parses a LEF/DEF-lite pair back into a design.
///
/// # Errors
///
/// Returns [`ParseDesignError`] on malformed content or dangling
/// references.
pub fn read_lefdef(files: &LefDefFiles) -> Result<Design, ParseDesignError> {
    read_lefdef_obs(files, &rdp_obs::Collector::disabled())
}

/// [`read_lefdef`] with parsing timed under a `parse_lefdef` span, so
/// `--profile` covers input parsing too.
///
/// # Errors
///
/// Same as [`read_lefdef`].
pub fn read_lefdef_obs(
    files: &LefDefFiles,
    obs: &rdp_obs::Collector,
) -> Result<Design, ParseDesignError> {
    let _span = obs.span("parse_lefdef", "parse");
    // --- LEF: layer stack + cell types -----------------------------------
    struct TypeRec {
        kind: CellKind,
        w: f64,
        h: f64,
        /// OBS rectangles (layer name, rect relative to the macro's
        /// lower-left corner), materialized per placed component.
        obs: Vec<(String, Rect)>,
    }
    /// A LEF `LAYER` block: direction + pitch, capacity unknown.
    struct LayerRec {
        name: String,
        dir: Dir,
        pitch: f64,
    }
    let mut types: HashMap<String, TypeRec> = HashMap::new();
    let mut lef_layers: Vec<LayerRec> = Vec::new();
    let mut cur: Option<String> = None;
    let mut cur_layer: Option<usize> = None; // index into lef_layers
    let mut in_obs = false;
    let mut obs_layer: Option<String> = None;
    for (ln, line) in files.lef.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["MACRO", name] => {
                if types.contains_key(*name) {
                    return Err(ParseDesignError::new(
                        "lef",
                        Some(ln + 1),
                        format!("duplicate macro `{name}`"),
                    ));
                }
                cur = Some((*name).to_string());
                types.insert(
                    (*name).to_string(),
                    TypeRec {
                        kind: CellKind::Std,
                        w: 0.0,
                        h: 0.0,
                        obs: Vec::new(),
                    },
                );
            }
            ["LAYER", name] if cur.is_none() => {
                if lef_layers.iter().any(|l| l.name == *name) {
                    return Err(ParseDesignError::new(
                        "lef",
                        Some(ln + 1),
                        format!("duplicate layer `{name}`"),
                    ));
                }
                lef_layers.push(LayerRec {
                    name: (*name).to_string(),
                    dir: if lef_layers.len() % 2 == 0 {
                        Dir::Horizontal
                    } else {
                        Dir::Vertical
                    },
                    pitch: 0.0,
                });
                cur_layer = Some(lef_layers.len() - 1);
            }
            ["DIRECTION", dir, ";"] => {
                if let Some(i) = cur_layer {
                    lef_layers[i].dir = match *dir {
                        "HORIZONTAL" => Dir::Horizontal,
                        "VERTICAL" => Dir::Vertical,
                        other => {
                            return Err(ParseDesignError::new(
                                "lef",
                                Some(ln + 1),
                                format!("unknown direction `{other}`"),
                            ))
                        }
                    };
                }
            }
            ["PITCH", p, ";"] => {
                if let Some(i) = cur_layer {
                    let pitch = num("lef", ln, p)?;
                    if pitch < 0.0 {
                        return Err(ParseDesignError::new(
                            "lef",
                            Some(ln + 1),
                            format!("negative pitch `{p}`"),
                        ));
                    }
                    lef_layers[i].pitch = pitch;
                }
            }
            ["CLASS", class, ";"] => {
                if let Some(name) = &cur {
                    let rec = types.get_mut(name).ok_or_else(|| {
                        ParseDesignError::new("lef", Some(ln + 1), "CLASS outside MACRO")
                    })?;
                    rec.kind = match *class {
                        "CORE" => CellKind::Std,
                        "BLOCK" => CellKind::Macro,
                        "PAD" => CellKind::Terminal,
                        other => {
                            return Err(ParseDesignError::new(
                                "lef",
                                Some(ln + 1),
                                format!("unknown class `{other}`"),
                            ))
                        }
                    };
                }
            }
            ["SIZE", w, "BY", h, ";"] => {
                if let Some(name) = &cur {
                    let rec = types.get_mut(name).ok_or_else(|| {
                        ParseDesignError::new("lef", Some(ln + 1), "SIZE outside MACRO")
                    })?;
                    rec.w = num("lef", ln, w)?;
                    rec.h = num("lef", ln, h)?;
                }
            }
            ["OBS"] if cur.is_some() => {
                in_obs = true;
                obs_layer = None;
            }
            ["LAYER", name, ";"] if in_obs => obs_layer = Some((*name).to_string()),
            ["RECT", a, b, c, d, ";"] if in_obs => {
                let name = cur.as_ref().expect("OBS implies a current macro");
                let layer = obs_layer.clone().ok_or_else(|| {
                    ParseDesignError::new("lef", Some(ln + 1), "OBS RECT before LAYER")
                })?;
                let rect = rect(
                    "lef",
                    ln,
                    num("lef", ln, a)?,
                    num("lef", ln, b)?,
                    num("lef", ln, c)?,
                    num("lef", ln, d)?,
                )?;
                types
                    .get_mut(name)
                    .ok_or_else(|| {
                        ParseDesignError::new("lef", Some(ln + 1), "RECT outside MACRO")
                    })?
                    .obs
                    .push((layer, rect));
            }
            ["END"] if in_obs => {
                in_obs = false;
                obs_layer = None;
            }
            ["END", name] if Some(*name) == cur.as_deref() => {
                cur = None;
                in_obs = false;
            }
            ["END", name] if cur_layer.is_some_and(|i| lef_layers[i].name == *name) => {
                cur_layer = None;
            }
            _ => {}
        }
    }

    // --- DEF --------------------------------------------------------------
    let mut design_name = String::from("design");
    let mut die: Option<Rect> = None;
    let mut rows: Vec<Row> = Vec::new();
    let mut gx = 16usize;
    let mut gy = 16usize;
    let mut layers: Vec<RoutingLayer> = Vec::new();
    let mut comps: Vec<(String, String, Point, bool)> = Vec::new(); // name, type, ll(µm), fixed
    let mut comp_names: HashSet<String> = HashSet::new();
    let mut nets: Vec<(String, Vec<(String, Point)>)> = Vec::new();
    let mut rails: Vec<PgRail> = Vec::new();
    let mut tracks: Vec<(String, f64)> = Vec::new(); // layer name, step (µm)
    let mut blockages: Vec<(String, Rect, usize)> = Vec::new(); // layer name, rect, line
    let mut section = "";

    for (ln, line) in files.def.lines().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["DESIGN", name, ";"] => design_name = (*name).to_string(),
            ["DIEAREA", "(", a, b, ")", "(", c, d, ")", ";"] => {
                die = Some(rect(
                    "def",
                    ln,
                    from_dbu(int("def", ln, a)?),
                    from_dbu(int("def", ln, b)?),
                    from_dbu(int("def", ln, c)?),
                    from_dbu(int("def", ln, d)?),
                )?);
            }
            ["ROW", _name, _site, x, y, "N", "DO", n, "BY", "1", "STEP", sw, "0", ";"] => {
                let x0 = from_dbu(int("def", ln, x)?);
                let site_w = from_dbu(int("def", ln, sw)?);
                let sites: usize = n
                    .parse()
                    .map_err(|_| ParseDesignError::new("def", Some(ln + 1), "bad site count"))?;
                rows.push(Row {
                    y: from_dbu(int("def", ln, y)?),
                    height: 0.0, // filled below from the row pitch
                    x0,
                    x1: x0 + sites as f64 * site_w,
                    site_w,
                });
            }
            ["GCELLGRID", a, b, ";"] => {
                gx = a
                    .parse()
                    .map_err(|_| ParseDesignError::new("def", Some(ln + 1), "bad gcell x"))?;
                gy = b
                    .parse()
                    .map_err(|_| ParseDesignError::new("def", Some(ln + 1), "bad gcell y"))?;
            }
            ["LAYERCAP", name, dir, cap, ";"] => layers.push(RoutingLayer {
                name: (*name).to_string(),
                dir: match *dir {
                    "H" => Dir::Horizontal,
                    "V" => Dir::Vertical,
                    other => {
                        return Err(ParseDesignError::new(
                            "def",
                            Some(ln + 1),
                            format!("bad dir `{other}`"),
                        ))
                    }
                },
                capacity: num("def", ln, cap)?,
                pitch: 0.0, // filled from LEF LAYER / DEF TRACKS below
            }),
            ["TRACKS", axis, _start, "DO", n, "STEP", step, "LAYER", name, ";"] => {
                if *axis != "X" && *axis != "Y" {
                    return Err(ParseDesignError::new(
                        "def",
                        Some(ln + 1),
                        format!("bad tracks axis `{axis}`"),
                    ));
                }
                let count: i64 = int("def", ln, n)?;
                if count <= 0 {
                    return Err(ParseDesignError::new(
                        "def",
                        Some(ln + 1),
                        "bad track count",
                    ));
                }
                tracks.push(((*name).to_string(), from_dbu(int("def", ln, step)?)));
            }
            ["COMPONENTS", ..] => section = "components",
            ["NETS", ..] if section != "nets" && !line.starts_with('-') => section = "nets",
            ["BLOCKAGES", ..] => section = "blockages",
            ["SPECIALNETS", ..] => section = "specialnets",
            ["END", ..] => section = "",
            _ if line.starts_with('-') => match section {
                "components" => {
                    // - name Tk + STATE ( x y ) N ;
                    if toks.len() < 10 {
                        return Err(ParseDesignError::new(
                            "def",
                            Some(ln + 1),
                            "short component line",
                        ));
                    }
                    // - name Tk + STATE ( x y ) N ;
                    if !comp_names.insert(toks[1].to_string()) {
                        return Err(ParseDesignError::new(
                            "def",
                            Some(ln + 1),
                            format!("duplicate component `{}`", toks[1]),
                        ));
                    }
                    let fixed = toks[4] == "FIXED";
                    comps.push((
                        toks[1].to_string(),
                        toks[2].to_string(),
                        Point::new(
                            from_dbu(int("def", ln, toks[6])?),
                            from_dbu(int("def", ln, toks[7])?),
                        ),
                        fixed,
                    ));
                }
                "nets" => {
                    // - name ( comp dx dy ) ... ;
                    if toks.len() < 2 {
                        return Err(ParseDesignError::new("def", Some(ln + 1), "short net line"));
                    }
                    let name = toks[1].to_string();
                    let mut pins = Vec::new();
                    let mut i = 2;
                    while i + 4 < toks.len() {
                        if toks[i] == "(" {
                            pins.push((
                                toks[i + 1].to_string(),
                                Point::new(
                                    from_dbu(int("def", ln, toks[i + 2])?),
                                    from_dbu(int("def", ln, toks[i + 3])?),
                                ),
                            ));
                            i += 5;
                        } else {
                            i += 1;
                        }
                    }
                    nets.push((name, pins));
                }
                "blockages" => {
                    // - LAYER <name> RECT ( a b ) ( c d ) ;
                    match toks.as_slice() {
                        ["-", "LAYER", name, "RECT", "(", a, b, ")", "(", c, d, ")", ";"] => {
                            blockages.push((
                                (*name).to_string(),
                                rect(
                                    "def",
                                    ln,
                                    from_dbu(int("def", ln, a)?),
                                    from_dbu(int("def", ln, b)?),
                                    from_dbu(int("def", ln, c)?),
                                    from_dbu(int("def", ln, d)?),
                                )?,
                                ln,
                            ));
                        }
                        _ => {
                            return Err(ParseDesignError::new(
                                "def",
                                Some(ln + 1),
                                "malformed blockage line",
                            ))
                        }
                    }
                }
                "specialnets" => {
                    // - PG M<k> <dir> RECT ( a b ) ( c d ) ;
                    if toks.len() >= 13 {
                        let layer: u8 = toks[2]
                            .trim_start_matches('M')
                            .parse::<u8>()
                            .ok()
                            .and_then(|m| m.checked_sub(1))
                            .ok_or_else(|| {
                                ParseDesignError::new("def", Some(ln + 1), "bad rail layer")
                            })?;
                        let dir = match toks[3] {
                            "H" => Dir::Horizontal,
                            _ => Dir::Vertical,
                        };
                        rails.push(PgRail {
                            layer,
                            dir,
                            rect: rect(
                                "def",
                                ln,
                                from_dbu(int("def", ln, toks[6])?),
                                from_dbu(int("def", ln, toks[7])?),
                                from_dbu(int("def", ln, toks[10])?),
                                from_dbu(int("def", ln, toks[11])?),
                            )?,
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    let die = die.ok_or_else(|| ParseDesignError::new("def", None, "missing DIEAREA"))?;

    // Row height = pitch between consecutive rows (or a default).
    let height = if rows.len() >= 2 {
        (rows[1].y - rows[0].y).abs()
    } else {
        2.0
    };
    for r in &mut rows {
        r.height = height;
    }

    // --- Layer stack: LAYERCAP (authoritative), pitch from LEF/TRACKS ----
    if layers.is_empty() {
        // No LAYERCAP: reconstruct the stack from the LEF LAYER blocks,
        // estimating capacity as tracks-per-G-cell from the pitch.
        if lef_layers.is_empty() {
            return Err(ParseDesignError::new(
                "def",
                None,
                "no LAYERCAP entries and no LEF LAYER blocks",
            ));
        }
        const DEFAULT_CAPACITY: f64 = 10.0;
        for l in lef_layers.iter() {
            let pitch = if l.pitch > 0.0 {
                l.pitch
            } else {
                tracks
                    .iter()
                    .find(|(n, _)| *n == l.name)
                    .map(|(_, s)| *s)
                    .unwrap_or(0.0)
            };
            let gcell_extent = match l.dir {
                Dir::Horizontal => die.height() / gy.max(1) as f64,
                Dir::Vertical => die.width() / gx.max(1) as f64,
            };
            let capacity = if pitch > 0.0 && gcell_extent.is_finite() {
                (gcell_extent / pitch).max(1.0)
            } else {
                DEFAULT_CAPACITY
            };
            layers.push(RoutingLayer {
                name: l.name.clone(),
                dir: l.dir,
                capacity,
                pitch,
            });
        }
    } else {
        for l in layers.iter_mut() {
            if let Some(rec) = lef_layers.iter().find(|r| r.name == l.name) {
                l.pitch = rec.pitch;
            }
            if l.pitch <= 0.0 {
                if let Some((_, step)) = tracks.iter().find(|(n, _)| *n == l.name) {
                    l.pitch = *step;
                }
            }
        }
    }

    // Resolves a layer name against the final stack; `M<k>` names fall
    // back to a 1-based index so blockages above the stack stay loadable.
    let layer_index = |name: &str, ln: Option<usize>| -> Result<u8, ParseDesignError> {
        if let Some(i) = layers.iter().position(|l| l.name == name) {
            return u8::try_from(i)
                .map_err(|_| ParseDesignError::new("def", ln, "layer index overflow"));
        }
        name.strip_prefix('M')
            .and_then(|k| k.parse::<u8>().ok())
            .and_then(|k| k.checked_sub(1))
            .ok_or_else(|| {
                ParseDesignError::new("def", ln, format!("unknown blockage layer `{name}`"))
            })
    };

    let mut b = DesignBuilder::new(design_name, die);
    let mut ids: HashMap<String, CellId> = HashMap::new();
    for (name, ty, ll, fixed) in comps {
        let rec = types
            .get(&ty)
            .ok_or_else(|| ParseDesignError::new("def", None, format!("unknown type `{ty}`")))?;
        let center = Point::new(ll.x + rec.w / 2.0, ll.y + rec.h / 2.0);
        // Materialize the macro's OBS geometry at this placement.
        for (lname, r) in &rec.obs {
            b.add_obstruction(Obstruction {
                layer: layer_index(lname, None)?,
                rect: Rect::new(ll.x + r.lo.x, ll.y + r.lo.y, ll.x + r.hi.x, ll.y + r.hi.y),
            });
        }
        let cell = Cell {
            name: name.clone(),
            kind: rec.kind,
            w: rec.w,
            h: rec.h,
            fixed,
        };
        ids.insert(name, b.add_cell(cell, center));
    }
    for (lname, rect, ln) in blockages {
        b.add_obstruction(Obstruction {
            layer: layer_index(&lname, Some(ln + 1))?,
            rect,
        });
    }
    for (name, pins) in nets {
        let mut resolved = Vec::with_capacity(pins.len());
        for (comp, off) in pins {
            let id = *ids.get(&comp).ok_or_else(|| {
                ParseDesignError::new("def", None, format!("net `{name}` references `{comp}`"))
            })?;
            resolved.push((id, off));
        }
        b.add_net(name, resolved);
    }
    for r in rows {
        b.add_row(r);
    }
    for r in rails {
        b.add_rail(r);
    }
    b.routing(RoutingSpec { layers, gx, gy });
    b.build()
        .map_err(|e| ParseDesignError::new("build", None, e.to_string()))
}

/// Builds a [`Rect`] with a typed error (instead of the debug-build panic
/// in [`Rect::new`]) when the coordinates are inverted or non-finite.
fn rect(
    ctx: &str,
    line: usize,
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
) -> Result<Rect, ParseDesignError> {
    let finite = x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite();
    if !finite || x0 > x1 || y0 > y1 {
        return Err(ParseDesignError::new(
            ctx,
            Some(line + 1),
            format!("malformed rect ( {x0} {y0} ) ( {x1} {y1} )"),
        ));
    }
    Ok(Rect::new(x0, y0, x1, y1))
}

fn num(ctx: &str, line: usize, tok: &str) -> Result<f64, ParseDesignError> {
    let v: f64 = tok
        .parse()
        .map_err(|_| ParseDesignError::new(ctx, Some(line + 1), format!("bad number `{tok}`")))?;
    if !v.is_finite() {
        return Err(ParseDesignError::new(
            ctx,
            Some(line + 1),
            format!("non-finite number `{tok}`"),
        ));
    }
    Ok(v)
}

fn int(ctx: &str, line: usize, tok: &str) -> Result<i64, ParseDesignError> {
    tok.parse()
        .map_err(|_| ParseDesignError::new(ctx, Some(line + 1), format!("bad integer `{tok}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};

    fn sample() -> Design {
        generate(
            "ld",
            &GenParams {
                num_cells: 100,
                num_macros: 2,
                macro_fraction: 0.15,
                utilization: 0.5,
                io_terminals: 4,
                rail_pitch: 1.0,
                seed: 33,
                ..GenParams::default()
            },
        )
    }

    #[test]
    fn roundtrip_counts_and_structure() {
        let d = sample();
        let back = read_lefdef(&write_lefdef(&d)).expect("parse");
        assert_eq!(back.num_cells(), d.num_cells());
        assert_eq!(back.num_nets(), d.num_nets());
        assert_eq!(back.num_pins(), d.num_pins());
        assert_eq!(back.rails().len(), d.rails().len());
        assert_eq!(back.rows().len(), d.rows().len());
        assert_eq!(back.routing().gx, d.routing().gx);
        assert_eq!(back.routing().num_layers(), d.routing().num_layers());
    }

    #[test]
    fn roundtrip_geometry_within_dbu() {
        let d = sample();
        let back = read_lefdef(&write_lefdef(&d)).unwrap();
        for i in 0..d.num_cells() {
            let a = d.positions()[i];
            let b = back.positions()[i];
            assert!(a.distance(b) < 2e-3, "cell {i}: {a} vs {b}");
        }
        assert!((back.hpwl() - d.hpwl()).abs() / d.hpwl().max(1.0) < 1e-3);
    }

    #[test]
    fn roundtrip_kinds() {
        let d = sample();
        let back = read_lefdef(&write_lefdef(&d)).unwrap();
        for (a, b) in d.cells().iter().zip(back.cells()) {
            assert_eq!(a.kind, b.kind, "{}", a.name);
            assert_eq!(a.fixed, b.fixed, "{}", a.name);
        }
    }

    #[test]
    fn missing_diearea_is_error() {
        let d = sample();
        let mut files = write_lefdef(&d);
        files.def = files
            .def
            .lines()
            .filter(|l| !l.starts_with("DIEAREA"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(read_lefdef(&files).is_err());
    }

    #[test]
    fn unknown_component_type_is_error() {
        let d = sample();
        let mut files = write_lefdef(&d);
        files.lef = files.lef.replace("MACRO T0", "MACRO TX");
        // T0 components now reference a missing type — but only if TX
        // didn't leave an END mismatch; rebuild minimal check:
        let err = read_lefdef(&files);
        assert!(err.is_err());
    }
}
