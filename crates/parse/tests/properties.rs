//! Property tests for the extended LEF/DEF-lite grammar (rdp-testkit
//! harness): emission round-trip identity, and a hostile-input suite
//! asserting typed errors — with line numbers — and zero panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rdp_gen::{generate, GenParams};
use rdp_parse::{read_lefdef, write_lefdef, LefDefFiles};
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, PropConfig};

type ParamTuple = (usize, usize, f64, u64, usize, usize, f64);

/// Parameter space including the scenario extensions: obstructions on
/// macro footprints, random blockages, and per-layer track pitches.
fn arb_params() -> impl rdp_testkit::Gen<Value = ParamTuple> {
    (
        range(50usize..300),
        range(0usize..4),
        range(0.3f64..0.7),
        range(1u64..10_000),
        range(0usize..5),   // obstruction_layers
        range(0usize..8),   // random_obstructions
        range(0.0f64..0.8), // track_pitch (0 disables)
    )
}

fn params_of((cells, macros, util, seed, obs_layers, rand_obs, pitch): ParamTuple) -> GenParams {
    GenParams {
        num_cells: cells,
        num_macros: macros,
        macro_fraction: if macros == 0 { 0.0 } else { 0.18 },
        utilization: util,
        io_terminals: 4,
        high_fanout_nets: 2,
        rail_pitch: 1.0,
        seed,
        obstruction_layers: obs_layers,
        random_obstructions: rand_obs,
        track_pitch: if pitch < 0.1 { 0.0 } else { pitch },
        ..GenParams::default()
    }
}

/// Emission is a fixed point of parse∘emit: `emit(parse(emit(d)))` is
/// byte-identical to `emit(d)`, including BLOCKAGES, TRACKS and LEF
/// LAYER pitch blocks.
#[test]
fn lefdef_emission_is_parse_fixed_point() {
    prop_check!(PropConfig::cases(24), arb_params(), |t: ParamTuple| {
        let d = generate("rt", &params_of(t));
        let first = write_lefdef(&d);
        let back = match read_lefdef(&first) {
            Ok(b) => b,
            Err(e) => return Err(format!("own emission failed to parse: {e}")),
        };
        let second = write_lefdef(&back);
        prop_assert_eq!(&first.lef, &second.lef, "LEF drifted");
        prop_assert_eq!(&first.def, &second.def, "DEF drifted");
        Ok(())
    });
}

/// The parsed design preserves the structures the extended grammar
/// carries: obstruction count/layers and per-layer pitches.
#[test]
fn lefdef_preserves_extended_structures() {
    prop_check!(PropConfig::cases(24), arb_params(), |t: ParamTuple| {
        let d = generate("rt", &params_of(t));
        let back = match read_lefdef(&write_lefdef(&d)) {
            Ok(b) => b,
            Err(e) => return Err(format!("own emission failed to parse: {e}")),
        };
        prop_assert_eq!(back.obstructions().len(), d.obstructions().len());
        for (a, b) in d.obstructions().iter().zip(back.obstructions()) {
            prop_assert_eq!(a.layer, b.layer);
            prop_assert!(
                (a.rect.lo.x - b.rect.lo.x).abs() < 2e-3
                    && (a.rect.hi.y - b.rect.hi.y).abs() < 2e-3,
                "obstruction geometry drifted beyond dbu rounding"
            );
        }
        prop_assert_eq!(back.routing().num_layers(), d.routing().num_layers());
        for (a, b) in d.routing().layers.iter().zip(&back.routing().layers) {
            prop_assert_eq!(a.pitch.to_bits(), b.pitch.to_bits(), "pitch drifted");
        }
        Ok(())
    });
}

// --- Hostile-input suite -------------------------------------------------

fn sample_files() -> LefDefFiles {
    let d = generate(
        "hostile",
        &GenParams {
            num_cells: 60,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.5,
            io_terminals: 4,
            rail_pitch: 1.0,
            obstruction_layers: 2,
            random_obstructions: 3,
            track_pitch: 0.4,
            seed: 1234,
            ..GenParams::default()
        },
    );
    write_lefdef(&d)
}

/// Calls the parser under `catch_unwind`; a panic fails the test with
/// the mutation's name.
fn parse_no_panic(label: &str, files: &LefDefFiles) -> Result<(), rdp_parse::ParseDesignError> {
    let out = catch_unwind(AssertUnwindSafe(|| read_lefdef(files)));
    match out {
        Ok(r) => r.map(|_| ()),
        Err(_) => panic!("parser panicked on hostile input: {label}"),
    }
}

/// Truncating either file at any line boundary must yield `Ok` or a
/// typed error — never a panic.
#[test]
fn truncation_never_panics() {
    let files = sample_files();
    let def_lines: Vec<&str> = files.def.lines().collect();
    for cut in 0..def_lines.len() {
        let mutated = LefDefFiles {
            lef: files.lef.clone(),
            def: def_lines[..cut].join("\n"),
        };
        let _ = parse_no_panic(&format!("def truncated at line {cut}"), &mutated);
    }
    let lef_lines: Vec<&str> = files.lef.lines().collect();
    for cut in 0..lef_lines.len() {
        let mutated = LefDefFiles {
            lef: lef_lines[..cut].join("\n"),
            def: files.def.clone(),
        };
        let _ = parse_no_panic(&format!("lef truncated at line {cut}"), &mutated);
    }
}

/// Overflowing coordinates produce a typed parse error carrying the
/// offending line number.
#[test]
fn overflow_coordinates_are_typed_errors() {
    let files = sample_files();
    let big = "99999999999999999999999";
    let line = files
        .def
        .lines()
        .find(|l| l.starts_with("DIEAREA"))
        .expect("diearea present")
        .to_string();
    let toks: Vec<&str> = line.split_whitespace().collect();
    let overflowed = format!(
        "DIEAREA ( {big} {} ) ( {} {} ) ;",
        toks[3], toks[6], toks[7]
    );
    let mutated = LefDefFiles {
        lef: files.lef.clone(),
        def: files.def.replacen(&line, &overflowed, 1),
    };
    let err = parse_no_panic("overflow diearea", &mutated).unwrap_err();
    assert!(err.line.is_some(), "no line number: {err}");
    assert!(err.to_string().contains("bad integer"), "{err}");
}

/// Coordinates that parse but describe an inverted rectangle are typed
/// errors, not debug-assert panics.
#[test]
fn inverted_rects_are_typed_errors() {
    let files = sample_files();
    let line = files
        .def
        .lines()
        .find(|l| l.starts_with("DIEAREA"))
        .expect("diearea present")
        .to_string();
    // Swap lo and hi corners.
    let toks: Vec<&str> = line.split_whitespace().collect();
    let inverted = format!(
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        toks[6], toks[7], toks[2], toks[3]
    );
    let mutated = LefDefFiles {
        lef: files.lef.clone(),
        def: files.def.replacen(&line, &inverted, 1),
    };
    let err = parse_no_panic("inverted diearea", &mutated).unwrap_err();
    assert!(err.line.is_some(), "no line number: {err}");
    assert!(err.to_string().contains("malformed rect"), "{err}");
}

/// Duplicate macro names in the LEF are rejected with a line number.
#[test]
fn duplicate_macro_names_are_typed_errors() {
    let files = sample_files();
    let dup = format!(
        "{}MACRO T0\n  CLASS CORE ;\n  SIZE 1 BY 1 ;\nEND T0\n",
        files.lef
    );
    let mutated = LefDefFiles {
        lef: dup,
        def: files.def.clone(),
    };
    let err = parse_no_panic("duplicate macro", &mutated).unwrap_err();
    assert!(err.line.is_some(), "no line number: {err}");
    assert!(err.to_string().contains("duplicate macro"), "{err}");
}

/// Duplicate component names in the DEF are rejected with a line number.
#[test]
fn duplicate_component_names_are_typed_errors() {
    let files = sample_files();
    let comp = files
        .def
        .lines()
        .find(|l| l.starts_with("- u"))
        .expect("component line")
        .to_string();
    let mutated = LefDefFiles {
        lef: files.lef.clone(),
        def: files.def.replacen(&comp, &format!("{comp}\n{comp}"), 1),
    };
    let err = parse_no_panic("duplicate component", &mutated).unwrap_err();
    assert!(err.line.is_some(), "no line number: {err}");
    assert!(err.to_string().contains("duplicate component"), "{err}");
}

/// A blockage referencing an unknown layer name is a typed error.
#[test]
fn unknown_blockage_layer_is_typed_error() {
    let files = sample_files();
    let mutated = LefDefFiles {
        lef: files.lef.clone(),
        def: files.def.replacen(
            "BLOCKAGES",
            "BLOCKAGES 1 ;\n- LAYER NOPE RECT ( 0 0 ) ( 100 100 ) ;\nEND BLOCKAGES\nBLOCKAGES",
            1,
        ),
    };
    let err = parse_no_panic("unknown blockage layer", &mutated).unwrap_err();
    assert!(err.to_string().contains("unknown blockage layer"), "{err}");
}

/// Malformed blockage entries are rejected with a line number.
#[test]
fn malformed_blockage_line_is_typed_error() {
    let files = sample_files();
    let mutated = LefDefFiles {
        lef: files.lef.clone(),
        def: files.def.replacen(
            "BLOCKAGES",
            "BLOCKAGES 1 ;\n- LAYER M1 RECT oops ;\nEND BLOCKAGES\nBLOCKAGES",
            1,
        ),
    };
    let err = parse_no_panic("malformed blockage", &mutated).unwrap_err();
    assert!(err.line.is_some(), "no line number: {err}");
    assert!(err.to_string().contains("malformed blockage"), "{err}");
}

/// Random byte-level mutations of the DEF never panic the parser.
#[test]
fn fuzzed_single_line_mutations_never_panic() {
    let files = sample_files();
    let lines: Vec<&str> = files.def.lines().collect();
    let n = lines.len();
    prop_check!(
        PropConfig::cases(64),
        (range(0usize..n), range(0usize..4)),
        |(idx, kind): (usize, usize)| {
            let mut mutated: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            match kind {
                0 => mutated[idx] = String::new(), // blank the line
                1 => mutated[idx] = mutated[idx].replace(['0', '5'], "x"), // corrupt numbers
                2 => {
                    let half = mutated[idx].len() / 2;
                    mutated[idx].truncate(half); // cut mid-token
                }
                _ => {
                    let dup = mutated[idx].clone();
                    mutated.insert(idx, dup); // duplicate the line
                }
            }
            let files = LefDefFiles {
                lef: files.lef.clone(),
                def: mutated.join("\n"),
            };
            let out = catch_unwind(AssertUnwindSafe(|| read_lefdef(&files)));
            prop_assert!(out.is_ok(), "parser panicked on mutated line {}", idx);
            Ok(())
        }
    );
}

/// A LEF-only layer stack (no nonstandard LAYERCAP) is reconstructed
/// from the LAYER blocks and TRACKS pitches.
#[test]
fn lef_only_layer_stack_is_reconstructed() {
    let files = sample_files();
    let def: String = files
        .def
        .lines()
        .filter(|l| !l.starts_with("LAYERCAP"))
        .collect::<Vec<_>>()
        .join("\n");
    let d = read_lefdef(&LefDefFiles {
        lef: files.lef.clone(),
        def,
    })
    .expect("stack from LEF LAYER blocks");
    assert_eq!(d.routing().num_layers(), 6);
    assert!(d.routing().layers.iter().all(|l| l.capacity > 0.0));
    assert!(d.routing().layers.iter().all(|l| l.pitch > 0.0));
}

/// LEF macro OBS geometry is materialized per placed component.
#[test]
fn macro_obs_materializes_per_component() {
    let lef = "VERSION 5.8 ;\nUNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\
               LAYER M1\n  TYPE ROUTING ;\n  DIRECTION HORIZONTAL ;\n  PITCH 0.4 ;\nEND M1\n\
               MACRO BLK\n  CLASS BLOCK ;\n  SIZE 10 BY 10 ;\n  OBS\n    LAYER M1 ;\n    \
               RECT 1 1 9 9 ;\n  END\nEND BLK\nEND LIBRARY\n";
    let def = "VERSION 5.8 ;\nDESIGN obs ;\nUNITS DISTANCE MICRONS 1000 ;\n\
               DIEAREA ( 0 0 ) ( 40000 40000 ) ;\nGCELLGRID 16 16 ;\n\
               LAYERCAP M1 H 10 ;\nLAYERCAP M2 V 10 ;\n\
               COMPONENTS 2 ;\n- b0 BLK + FIXED ( 0 0 ) N ;\n- b1 BLK + FIXED ( 20000 20000 ) N ;\n\
               END COMPONENTS\nNETS 1 ;\n- n0 ( b0 0 0 ) ( b1 0 0 ) ;\nEND NETS\n\
               SPECIALNETS 0 ;\nEND SPECIALNETS\nEND DESIGN\n";
    let d = read_lefdef(&LefDefFiles {
        lef: lef.to_string(),
        def: def.to_string(),
    })
    .expect("macro OBS design parses");
    assert_eq!(d.obstructions().len(), 2);
    let a = &d.obstructions()[0];
    let b = &d.obstructions()[1];
    assert_eq!(a.layer, 0);
    assert!((a.rect.lo.x - 1.0).abs() < 1e-9 && (a.rect.hi.x - 9.0).abs() < 1e-9);
    assert!((b.rect.lo.x - 21.0).abs() < 1e-9 && (b.rect.hi.y - 29.0).abs() < 1e-9);
}
