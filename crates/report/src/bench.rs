//! Bench-baseline regression gating.
//!
//! `rdp-testkit`'s harness writes `BENCH_<suite>.json` files; this module
//! parses them, takes the per-benchmark **median across N fresh runs**
//! (median-of-medians — robust to one noisy run), and compares against a
//! committed baseline with a relative tolerance. `scripts/regress.sh`
//! drives it through the `bench_diff` binary in `rdp-bench`.

use std::collections::BTreeMap;

use rdp_guard::RdpError;
use rdp_obs::json::{self, Value};

/// One suite's results: benchmark name → median ns/iter.
pub type SuiteResults = BTreeMap<String, f64>;

fn perr(context: &str, message: impl Into<String>) -> RdpError {
    RdpError::Parse {
        context: context.to_string(),
        line: None,
        message: message.into(),
    }
}

/// Parse a `BENCH_<suite>.json` document into `(suite, name → median_ns)`.
pub fn parse_bench_json(text: &str, context: &str) -> Result<(String, SuiteResults), RdpError> {
    let doc = json::parse(text).map_err(|e| perr(context, e.to_string()))?;
    let suite = doc
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| perr(context, "missing string field \"suite\""))?
        .to_string();
    let results = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or_else(|| perr(context, "missing results array"))?;
    let mut out = SuiteResults::new();
    for r in results {
        let name = r
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| perr(context, "result missing name"))?;
        let median = r
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| perr(context, format!("result {name:?} missing median_ns")))?;
        if !median.is_finite() || median < 0.0 {
            return Err(perr(context, format!("result {name:?} has bad median_ns")));
        }
        out.insert(name.to_string(), median);
    }
    Ok((suite, out))
}

/// Median of a non-empty slice (the slice is sorted in place).
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// Collapse N runs of one suite into per-benchmark median-of-medians.
/// Benchmarks missing from some runs use the runs that have them.
pub fn median_of_runs(runs: &[SuiteResults]) -> SuiteResults {
    let mut merged: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for run in runs {
        for (name, v) in run {
            merged.entry(name.clone()).or_default().push(*v);
        }
    }
    merged
        .into_iter()
        .map(|(name, mut vs)| {
            let m = median(&mut vs);
            (name, m)
        })
        .collect()
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark name within the suite.
    pub name: String,
    /// Committed baseline median ns/iter (NaN when new).
    pub baseline_ns: f64,
    /// Fresh median-of-N ns/iter (NaN when removed).
    pub current_ns: f64,
    /// `(current - baseline) / baseline`.
    pub rel: f64,
    /// Whether `rel` exceeded the tolerance.
    pub regression: bool,
}

/// Compare the median-of-N `current` against `baseline` with relative
/// tolerance `tol` (e.g. 0.5 = current may be up to 50% slower).
/// Benchmarks present on only one side are never regressions — they are
/// returned with a NaN on the missing side so callers can report them.
pub fn diff_suite(baseline: &SuiteResults, current: &SuiteResults, tol: f64) -> Vec<BenchDelta> {
    let names: std::collections::BTreeSet<&String> =
        baseline.keys().chain(current.keys()).collect();
    names
        .into_iter()
        .map(|name| {
            let b = baseline.get(name).copied();
            let c = current.get(name).copied();
            match (b, c) {
                (Some(b), Some(c)) => {
                    let rel = (c - b) / b.max(1e-9);
                    BenchDelta {
                        name: name.clone(),
                        baseline_ns: b,
                        current_ns: c,
                        rel,
                        regression: rel > tol,
                    }
                }
                _ => BenchDelta {
                    name: name.clone(),
                    baseline_ns: b.unwrap_or(f64::NAN),
                    current_ns: c.unwrap_or(f64::NAN),
                    rel: f64::NAN,
                    regression: false,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "suite": "kernels",
  "results": [
    { "name": "fft", "samples": 5, "iters_per_sample": 8,
      "mean_ns": 100.0, "median_ns": 98.0, "p95_ns": 120.0,
      "min_ns": 90.0, "max_ns": 130.0 }
  ]
}"#;

    #[test]
    fn parses_harness_output() {
        let (suite, results) = parse_bench_json(SAMPLE, "test").unwrap();
        assert_eq!(suite, "kernels");
        assert_eq!(results["fft"], 98.0);
    }

    #[test]
    fn hostile_bench_json_is_typed_error() {
        for bad in ["nope", "{}", r#"{"suite":"x","results":[{"name":"a"}]}"#] {
            assert!(matches!(
                parse_bench_json(bad, "t"),
                Err(RdpError::Parse { .. })
            ));
        }
    }

    #[test]
    fn median_of_runs_is_robust_to_one_outlier() {
        let runs: Vec<SuiteResults> = [100.0, 101.0, 5000.0]
            .iter()
            .map(|v| [("k".to_string(), *v)].into_iter().collect())
            .collect();
        let merged = median_of_runs(&runs);
        assert_eq!(merged["k"], 101.0);
    }

    #[test]
    fn regression_gate_uses_tolerance() {
        let base: SuiteResults = [("k".to_string(), 100.0)].into_iter().collect();
        let slow: SuiteResults = [("k".to_string(), 180.0)].into_iter().collect();
        let d = diff_suite(&base, &slow, 0.5);
        assert!(d[0].regression);
        let d = diff_suite(&base, &slow, 1.0);
        assert!(!d[0].regression);
    }

    #[test]
    fn one_sided_benchmarks_are_not_regressions() {
        let base: SuiteResults = [("old".to_string(), 100.0)].into_iter().collect();
        let cur: SuiteResults = [("new".to_string(), 50.0)].into_iter().collect();
        let d = diff_suite(&base, &cur, 0.5);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| !x.regression));
    }
}
