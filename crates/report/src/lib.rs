//! # rdp-report — flow reports, run diffs, and regression gating
//!
//! The read-side of observability. `rdp-obs` collects; this crate makes a
//! run *inspectable* and *comparable*, std-only like the rest of the
//! workspace:
//!
//! * [`RunModel`] — one run's obs artifacts (trace JSONL + metrics JSON,
//!   including the per-iteration congestion/density frames) parsed into a
//!   single structure. Hostile or truncated input yields a typed
//!   [`rdp_guard::RdpError::Parse`], never a panic.
//! * [`render_report`] — a **single self-contained HTML file**: inline
//!   SVG charts for every convergence series (HPWL, overflow, λ₁/λ₂, γ,
//!   inflation), the per-stage time breakdown, the warning/rollback
//!   timeline, and one heatmap per captured congestion/density frame.
//!   No scripts, no external fetches.
//! * [`validate_report`] — proves those properties instead of assuming
//!   them: bans external-reference markup, checks tag balance, and
//!   cross-checks chart/heatmap counts against the ingested model.
//! * [`diff_runs`] — structured QoR + perf deltas between two runs with
//!   configurable noise thresholds ([`DiffThresholds`]); drives the
//!   `rdp diff` CLI and its nonzero-on-regression exit.
//! * [`bench`] — `BENCH_<suite>.json` parsing and median-of-N baseline
//!   comparison for `scripts/regress.sh`.
//!
//! The determinism contract carries over: reporting runs strictly after
//! the flow, on exported artifacts, so it can never perturb placement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod diff;
mod html;
mod model;
mod validate;

pub use diff::{diff_runs, rel_delta, Delta, DeltaKind, DiffThresholds, RunDiff};
pub use html::render_report;
pub use model::{FrameRec, HistogramSummary, InstantRec, RunModel, SpanRec};
pub use validate::{validate_report, ReportStats};
