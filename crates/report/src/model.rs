//! Run ingestion: the obs artifacts (trace JSONL + metrics JSON) parsed
//! into one [`RunModel`] that the renderer and differ share.
//!
//! Ingestion is strict: both inputs were written by `rdp-obs` exporters,
//! so anything malformed — truncated trace, wrong types, missing meta —
//! is hostile or corrupt and surfaces as a typed [`RdpError::Parse`]
//! rather than a panic or a silently-empty model.

use std::collections::BTreeMap;
use std::path::Path;

use rdp_guard::RdpError;
use rdp_obs::json::{self, Value};
use rdp_obs::{export_jsonl, export_metrics_json, validate_trace_jsonl, Collector};

/// One completed span from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Stage name ("route", "gp_step", …).
    pub name: String,
    /// Category the trace viewer groups by.
    pub cat: String,
    /// Stable per-OS-thread id.
    pub tid: u64,
    /// Start offset from collector creation, nanoseconds.
    pub ts_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Routability iteration, when the span was tagged with one.
    pub iter: Option<u64>,
}

/// One point event (warning, rollback, checkpoint, …) from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRec {
    /// Event name ("guard_warning", "rollback", "checkpoint", …).
    pub name: String,
    /// Free-form message attached at record time.
    pub detail: String,
    /// Offset from collector creation, nanoseconds.
    pub ts_ns: u64,
    /// Routability iteration, when tagged with one.
    pub iter: Option<u64>,
}

/// One captured 2-D field snapshot from the metrics document.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRec {
    /// Field name ("congestion", "density", …).
    pub name: String,
    /// Routability iteration the snapshot belongs to.
    pub iter: Option<u64>,
    /// Downsampled columns.
    pub nx: usize,
    /// Downsampled rows.
    pub ny: usize,
    /// Row-major `ny * nx` values.
    pub data: Vec<f64>,
}

/// Histogram summary (the sparse buckets are not needed for reporting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Finite observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSummary {
    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything one run's obs artifacts contain, ready for rendering or
/// diffing. Constructed from exporter strings, from a live collector, or
/// from a run directory on disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunModel {
    /// Completed spans in trace order.
    pub spans: Vec<SpanRec>,
    /// Point events in trace order.
    pub instants: Vec<InstantRec>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, f64>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Convergence series: name → `(step, value)` points in push order.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
    /// Captured congestion/density frames, oldest first.
    pub frames: Vec<FrameRec>,
    /// Events evicted from the collector's ring buffer.
    pub dropped_events: u64,
    /// Frames evicted by the frame byte budget.
    pub dropped_frames: u64,
    /// Torn-write leftovers (`*.tmp` siblings) found in the run directory:
    /// evidence the producing run was killed mid-capture. The artifacts
    /// that did land are intact (writes are tmp + rename), so the model
    /// loads normally, but reports should surface the partial-run warning.
    pub partial_artifacts: Vec<String>,
}

fn perr(context: &str, line: Option<usize>, message: impl Into<String>) -> RdpError {
    RdpError::Parse {
        context: context.to_string(),
        line,
        message: message.into(),
    }
}

fn opt_iter(v: &Value) -> Option<u64> {
    match v.get("iter") {
        Some(Value::Num(n)) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn req_str(v: &Value, key: &str, ctx: &str, line: Option<usize>) -> Result<String, RdpError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| perr(ctx, line, format!("missing string field \"{key}\"")))
}

fn req_num(v: &Value, key: &str, ctx: &str, line: Option<usize>) -> Result<f64, RdpError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| perr(ctx, line, format!("missing numeric field \"{key}\"")))
}

impl RunModel {
    /// Build a model from exporter output strings. `trace` may be absent
    /// (metrics-only runs still render a partial report); `metrics` is the
    /// metrics JSON document.
    pub fn from_strings(trace: Option<&str>, metrics: &str) -> Result<RunModel, RdpError> {
        let mut model = RunModel::default();
        if let Some(trace) = trace {
            model.ingest_trace(trace)?;
        }
        model.ingest_metrics(metrics)?;
        Ok(model)
    }

    /// Snapshot a live collector through its own exporters, so the model
    /// seen by an in-process report is byte-identical to what a run
    /// directory on disk would have produced. A disabled collector yields
    /// an empty model.
    pub fn from_collector(col: &Collector) -> Result<RunModel, RdpError> {
        if !col.is_enabled() {
            return Ok(RunModel::default());
        }
        Self::from_strings(Some(&export_jsonl(col)), &export_metrics_json(col))
    }

    /// Load a run directory written by `rdp … --run-dir DIR`: reads
    /// `DIR/metrics.json` (required) and `DIR/trace.jsonl` (optional). A
    /// path to a plain file is treated as a metrics document alone.
    pub fn load(path: &Path) -> Result<RunModel, RdpError> {
        let ctx = path.display().to_string();
        if path.is_file() {
            let metrics = std::fs::read_to_string(path)
                .map_err(|e| perr(&ctx, None, format!("cannot read metrics: {e}")))?;
            return Self::from_strings(None, &metrics);
        }
        // Torn-write leftovers first: artifacts are written tmp + rename,
        // so a `.tmp` sibling means the producing run was killed
        // mid-capture. Never panic on them — flag and keep loading.
        let mut partial: Vec<String> = ["trace.jsonl.tmp", "metrics.json.tmp"]
            .iter()
            .filter(|name| path.join(name).is_file())
            .map(|name| name.to_string())
            .collect();
        partial.sort();
        let metrics_path = path.join("metrics.json");
        let metrics = std::fs::read_to_string(&metrics_path).map_err(|e| {
            let hint = if partial.iter().any(|p| p == "metrics.json.tmp") {
                " (a metrics.json.tmp leftover exists: the run was killed mid-capture \
                 before the atomic rename)"
            } else {
                ""
            };
            perr(
                &ctx,
                None,
                format!("cannot read {}: {e}{hint}", metrics_path.display()),
            )
        })?;
        let trace_path = path.join("trace.jsonl");
        let trace = match std::fs::read_to_string(&trace_path) {
            Ok(t) => Some(t),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                return Err(perr(
                    &ctx,
                    None,
                    format!("cannot read {}: {e}", trace_path.display()),
                ))
            }
        };
        let mut model = Self::from_strings(trace.as_deref(), &metrics)?;
        model.partial_artifacts = partial;
        Ok(model)
    }

    /// Total nanoseconds per span name, for the stage breakdown and the
    /// perf side of a diff.
    pub fn stage_totals(&self) -> BTreeMap<String, (u64, u64)> {
        let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(s.name.clone()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        agg
    }

    /// Distinct routability iterations seen on `route_iter` spans, in
    /// ascending order. The frame-coverage check keys off this.
    pub fn route_iterations(&self) -> Vec<u64> {
        let mut iters: Vec<u64> = self
            .spans
            .iter()
            .filter(|s| s.name == "route_iter")
            .filter_map(|s| s.iter)
            .collect();
        iters.sort_unstable();
        iters.dedup();
        iters
    }

    fn ingest_trace(&mut self, trace: &str) -> Result<(), RdpError> {
        const CTX: &str = "trace.jsonl";
        // The obs validator enforces structure (known types, required
        // fields, exactly one trailing meta line with a consistent event
        // count); re-parsing below can then take the shape for granted.
        let summary =
            validate_trace_jsonl(trace).map_err(|e| perr(CTX, None, format!("invalid: {e}")))?;
        self.dropped_events = summary.dropped;
        for (idx, line) in trace.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let line_no = Some(idx + 1);
            let v = json::parse(line).map_err(|e| perr(CTX, line_no, e.to_string()))?;
            match v.get("type").and_then(Value::as_str) {
                Some("span") => self.spans.push(SpanRec {
                    name: req_str(&v, "name", CTX, line_no)?,
                    cat: req_str(&v, "cat", CTX, line_no)?,
                    tid: req_num(&v, "tid", CTX, line_no)? as u64,
                    ts_ns: req_num(&v, "ts_ns", CTX, line_no)? as u64,
                    dur_ns: req_num(&v, "dur_ns", CTX, line_no)? as u64,
                    iter: opt_iter(&v),
                }),
                Some("instant") => self.instants.push(InstantRec {
                    name: req_str(&v, "name", CTX, line_no)?,
                    detail: req_str(&v, "detail", CTX, line_no)?,
                    ts_ns: req_num(&v, "ts_ns", CTX, line_no)? as u64,
                    iter: opt_iter(&v),
                }),
                _ => {} // meta — already consumed by the validator
            }
        }
        Ok(())
    }

    fn ingest_metrics(&mut self, metrics: &str) -> Result<(), RdpError> {
        const CTX: &str = "metrics.json";
        let doc = json::parse(metrics).map_err(|e| perr(CTX, None, e.to_string()))?;
        if !matches!(doc, Value::Obj(_)) {
            return Err(perr(CTX, None, "top level is not an object"));
        }
        // A disabled-collector export is `{}`; every section is optional
        // but must have the right type when present.
        if let Some(n) = doc.get("dropped_events") {
            self.dropped_events = n
                .as_f64()
                .ok_or_else(|| perr(CTX, None, "dropped_events is not a number"))?
                as u64;
        }
        if let Some(n) = doc.get("dropped_frames") {
            self.dropped_frames = n
                .as_f64()
                .ok_or_else(|| perr(CTX, None, "dropped_frames is not a number"))?
                as u64;
        }
        if let Some(c) = doc.get("counters") {
            for (k, v) in obj_entries(c, "counters")? {
                let n = v
                    .as_f64()
                    .ok_or_else(|| perr(CTX, None, format!("counter \"{k}\" is not a number")))?;
                self.counters.insert(k.clone(), n);
            }
        }
        if let Some(g) = doc.get("gauges") {
            for (k, v) in obj_entries(g, "gauges")? {
                let n = v
                    .as_f64()
                    .ok_or_else(|| perr(CTX, None, format!("gauge \"{k}\" is not a number")))?;
                self.gauges.insert(k.clone(), n);
            }
        }
        if let Some(h) = doc.get("histograms") {
            for (k, v) in obj_entries(h, "histograms")? {
                self.histograms.insert(
                    k.clone(),
                    HistogramSummary {
                        count: req_num(v, "count", CTX, None)? as u64,
                        sum: req_num(v, "sum", CTX, None)?,
                        min: req_num(v, "min", CTX, None)?,
                        max: req_num(v, "max", CTX, None)?,
                    },
                );
            }
        }
        if let Some(s) = doc.get("series") {
            for (k, v) in obj_entries(s, "series")? {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| perr(CTX, None, format!("series \"{k}\" is not an array")))?;
                let mut points = Vec::with_capacity(arr.len());
                for p in arr {
                    let pair = p.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        perr(CTX, None, format!("series \"{k}\" point is not a pair"))
                    })?;
                    let step = pair[0].as_f64().ok_or_else(|| {
                        perr(CTX, None, format!("series \"{k}\" step is not a number"))
                    })?;
                    let val = pair[1].as_f64().ok_or_else(|| {
                        perr(CTX, None, format!("series \"{k}\" value is not a number"))
                    })?;
                    points.push((step as u64, val));
                }
                self.series.insert(k.clone(), points);
            }
        }
        if let Some(f) = doc.get("frames") {
            let arr = f
                .as_arr()
                .ok_or_else(|| perr(CTX, None, "frames is not an array"))?;
            for fr in arr {
                let nx = req_num(fr, "nx", CTX, None)? as usize;
                let ny = req_num(fr, "ny", CTX, None)? as usize;
                let data_v = fr
                    .get("data")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| perr(CTX, None, "frame data is not an array"))?;
                let data: Vec<f64> = data_v.iter().filter_map(Value::as_f64).collect();
                if data.len() != data_v.len() || data.len() != nx * ny {
                    return Err(perr(
                        CTX,
                        None,
                        format!(
                            "frame data length {} does not match {}x{}",
                            data_v.len(),
                            nx,
                            ny
                        ),
                    ));
                }
                self.frames.push(FrameRec {
                    name: req_str(fr, "name", CTX, None)?,
                    iter: opt_iter(fr),
                    nx,
                    ny,
                    data,
                });
            }
        }
        Ok(())
    }
}

fn obj_entries<'v>(
    v: &'v Value,
    what: &str,
) -> Result<impl Iterator<Item = (&'v String, &'v Value)>, RdpError> {
    match v {
        Value::Obj(m) => Ok(m.iter()),
        _ => Err(perr(
            "metrics.json",
            None,
            format!("{what} is not an object"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_collector() -> Collector {
        let c = Collector::enabled();
        {
            let _f = c.span("flow", "flow");
            let _r = c.span_iter("route_iter", "flow", 0);
        }
        c.instant("guard_warning", 0, "something odd");
        c.counter_add("rollbacks", 1);
        c.gauge_set("final_hpwl", 1234.5);
        c.observe("wa_grad", 2.0);
        c.series_push("hpwl", 0, 1300.0);
        c.series_push("hpwl", 1, 1250.0);
        c.frame("congestion", 0, 3, 2, &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        c
    }

    #[test]
    fn round_trips_from_collector() {
        let m = RunModel::from_collector(&traced_collector()).unwrap();
        assert_eq!(m.spans.len(), 2);
        assert_eq!(m.instants.len(), 1);
        assert_eq!(m.gauges["final_hpwl"], 1234.5);
        assert_eq!(m.counters["rollbacks"], 1.0);
        assert_eq!(m.series["hpwl"].len(), 2);
        assert_eq!(m.frames.len(), 1);
        assert_eq!(m.frames[0].data.len(), 6);
        assert_eq!(m.route_iterations(), vec![0]);
        assert_eq!(m.histograms["wa_grad"].count, 1);
    }

    #[test]
    fn disabled_collector_is_empty_model() {
        let m = RunModel::from_collector(&Collector::disabled()).unwrap();
        assert_eq!(m, RunModel::default());
    }

    #[test]
    fn truncated_trace_is_typed_error() {
        let c = traced_collector();
        let trace = export_jsonl(&c);
        let metrics = export_metrics_json(&c);
        // Cut the trace mid-file: the trailing meta line is gone.
        let cut = &trace[..trace.len() / 2];
        let err = RunModel::from_strings(Some(cut), &metrics).unwrap_err();
        assert!(matches!(err, RdpError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn hostile_metrics_are_typed_errors() {
        for bad in [
            "not json",
            "[1, 2]",
            "{\"series\": 5}\n",
            "{\"counters\": {\"x\": \"y\"}}\n",
            "{\"frames\": [{\"name\": \"f\", \"iter\": 0, \"nx\": 4, \"ny\": 4, \"data\": [1.0]}]}\n",
        ] {
            let err = RunModel::from_strings(None, bad).unwrap_err();
            assert!(matches!(err, RdpError::Parse { .. }), "input {bad:?}");
        }
    }

    #[test]
    fn empty_metrics_document_is_fine() {
        let m = RunModel::from_strings(None, "{}\n").unwrap();
        assert_eq!(m, RunModel::default());
    }

    #[test]
    fn stage_totals_aggregate_by_name() {
        let c = Collector::enabled();
        {
            let _a = c.span("route", "route");
        }
        {
            let _b = c.span("route", "route");
        }
        let m = RunModel::from_collector(&c).unwrap();
        let agg = m.stage_totals();
        assert_eq!(agg["route"].0, 2);
    }
}
