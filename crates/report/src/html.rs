//! Self-contained HTML report renderer.
//!
//! One run in, one `.html` string out: no scripts, no external fetches,
//! every chart an inline SVG. Charts carry `data-series`/`data-points`
//! and heatmaps carry `data-frame`/`data-iter` attributes so the
//! [validator](crate::validate) can cross-check the markup against the
//! ingested [`RunModel`] instead of trusting the renderer.

use crate::model::{FrameRec, RunModel};
use std::fmt::Write as _;

/// Chart geometry shared by every series plot.
const CHART_W: f64 = 560.0;
const CHART_H: f64 = 150.0;
const PAD_L: f64 = 10.0;
const PAD_R: f64 = 10.0;
const PAD_T: f64 = 8.0;
const PAD_B: f64 = 8.0;

/// Ten-step white→red ramp used by the congestion/density heatmaps.
const HEAT_RAMP: [&str; 10] = [
    "#f7f7f5", "#fee8d8", "#fdd0a2", "#fdae6b", "#fd8d3c", "#f16913", "#d94801", "#a63603",
    "#7f2704", "#4a1486",
];

/// HTML-escape text content and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Compact numeric formatting for labels (6 significant digits).
fn fnum(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (1e-3..1e7).contains(&a) {
        let s = format!("{v:.4}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    } else {
        format!("{v:.3e}")
    }
}

/// Render the full report document.
pub fn render_report(model: &RunModel, title: &str) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", esc(title));
    out.push_str("<style>\n");
    out.push_str(CSS);
    out.push_str("</style>\n</head>\n<body>\n");
    let _ = writeln!(out, "<h1>{}</h1>", esc(title));

    render_drop_banner(&mut out, model);
    render_summary(&mut out, model);
    render_series(&mut out, model);
    render_stages(&mut out, model);
    render_timeline(&mut out, model);
    render_frames(&mut out, model);

    out.push_str("</body>\n</html>\n");
    out
}

const CSS: &str = "body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; \
max-width: 1180px; color: #222; }\n\
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; \
border-bottom: 1px solid #ddd; }\n\
table { border-collapse: collapse; } td, th { padding: 2px 10px; \
text-align: right; border-bottom: 1px solid #eee; }\n\
th { text-align: left; } td.name { text-align: left; font-family: monospace; }\n\
.banner { background: #fff3cd; border: 1px solid #e0c060; padding: 8px 12px; \
border-radius: 4px; }\n\
.chart { display: inline-block; margin: 6px 12px 6px 0; vertical-align: top; }\n\
.chart figcaption { font-family: monospace; font-size: 12px; }\n\
.ev-warning { color: #a06000; } .ev-rollback { color: #b00020; } \
.ev-checkpoint { color: #456; }\n\
.heat { display: inline-block; margin: 6px 12px 6px 0; vertical-align: top; }\n\
.heat figcaption { font-family: monospace; font-size: 12px; }\n";

fn render_drop_banner(out: &mut String, model: &RunModel) {
    if model.dropped_events > 0 || model.dropped_frames > 0 {
        let _ = writeln!(
            out,
            "<p class=\"banner\">warning: the trace is incomplete — {} events and {} frames \
             were dropped by the collector's memory bounds; totals below undercount.</p>",
            model.dropped_events, model.dropped_frames
        );
    }
}

fn render_summary(out: &mut String, model: &RunModel) {
    out.push_str("<h2>Summary</h2>\n<table>\n<tr><th>metric</th><th>value</th></tr>\n");
    for (k, v) in &model.gauges {
        let _ = writeln!(
            out,
            "<tr><td class=\"name\">{}</td><td>{}</td></tr>",
            esc(k),
            fnum(*v)
        );
    }
    for (k, v) in &model.counters {
        let _ = writeln!(
            out,
            "<tr><td class=\"name\">{}</td><td>{}</td></tr>",
            esc(k),
            fnum(*v)
        );
    }
    for (k, h) in &model.histograms {
        let _ = writeln!(
            out,
            "<tr><td class=\"name\">{} (histogram)</td><td>n={} mean={} min={} max={}</td></tr>",
            esc(k),
            h.count,
            fnum(h.mean()),
            fnum(h.min),
            fnum(h.max)
        );
    }
    out.push_str("</table>\n");
}

fn render_series(out: &mut String, model: &RunModel) {
    if model.series.is_empty() {
        return;
    }
    out.push_str("<h2>Convergence series</h2>\n");
    for (name, points) in &model.series {
        render_line_chart(out, name, points);
    }
}

/// One series as an inline SVG polyline with min/max/last labels.
fn render_line_chart(out: &mut String, name: &str, points: &[(u64, f64)]) {
    let finite: Vec<(u64, f64)> = points.iter().copied().filter(|p| p.1.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |a, p| {
            (a.0.min(p.1), a.1.max(p.1))
        });
    let (x0, x1) = match (finite.first(), finite.last()) {
        (Some(f), Some(l)) => (f.0 as f64, l.0 as f64),
        _ => (0.0, 1.0),
    };
    let xspan = (x1 - x0).max(1e-12);
    let yspan = (hi - lo).max(1e-12);
    let px = |step: f64| PAD_L + (step - x0) / xspan * (CHART_W - PAD_L - PAD_R);
    let py = |v: f64| CHART_H - PAD_B - (v - lo) / yspan * (CHART_H - PAD_T - PAD_B);

    let _ = writeln!(out, "<figure class=\"chart\">");
    let _ = writeln!(
        out,
        "<svg data-series=\"{}\" data-points=\"{}\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\">",
        esc(name),
        points.len(),
        CHART_W,
        CHART_H,
        CHART_W,
        CHART_H
    );
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{CHART_W}\" height=\"{CHART_H}\" fill=\"#fcfcfa\" \
         stroke=\"#ddd\"/>"
    );
    if finite.len() > 1 {
        let pts: Vec<String> = finite
            .iter()
            .map(|(s, v)| format!("{:.1},{:.1}", px(*s as f64), py(*v)))
            .collect();
        let _ = writeln!(
            out,
            "<polyline fill=\"none\" stroke=\"#2166ac\" stroke-width=\"1.5\" points=\"{}\"/>",
            pts.join(" ")
        );
    }
    for (s, v) in &finite {
        let _ = writeln!(
            out,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2\" fill=\"#2166ac\"/>",
            px(*s as f64),
            py(*v)
        );
    }
    out.push_str("</svg>\n");
    let last = finite.last().map(|p| fnum(p.1)).unwrap_or_default();
    let _ = writeln!(
        out,
        "<figcaption>{} — min {} · max {} · last {}</figcaption>",
        esc(name),
        fnum(if lo.is_finite() { lo } else { 0.0 }),
        fnum(if hi.is_finite() { hi } else { 0.0 }),
        last
    );
    out.push_str("</figure>\n");
}

fn render_stages(out: &mut String, model: &RunModel) {
    let agg = model.stage_totals();
    if agg.is_empty() {
        return;
    }
    let mut rows: Vec<(&String, u64, u64)> = agg.iter().map(|(k, (c, ns))| (k, *c, *ns)).collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let max_ns = rows.first().map(|r| r.2).unwrap_or(1).max(1);

    out.push_str("<h2>Stage time breakdown</h2>\n<table>\n");
    out.push_str("<tr><th>stage</th><th>calls</th><th>total ms</th><th></th></tr>\n");
    for (name, calls, total_ns) in &rows {
        let bar_w = (260.0 * *total_ns as f64 / max_ns as f64).max(1.0);
        let _ = writeln!(
            out,
            "<tr><td class=\"name\">{}</td><td>{}</td><td>{:.3}</td>\
             <td><svg width=\"264\" height=\"12\"><rect x=\"0\" y=\"1\" width=\"{:.1}\" \
             height=\"10\" fill=\"#74add1\"/></svg></td></tr>",
            esc(name),
            calls,
            *total_ns as f64 / 1e6,
            bar_w
        );
    }
    out.push_str("</table>\n");
}

fn render_timeline(out: &mut String, model: &RunModel) {
    if model.instants.is_empty() {
        return;
    }
    let mut events: Vec<&crate::model::InstantRec> = model.instants.iter().collect();
    events.sort_by_key(|e| e.ts_ns);
    out.push_str("<h2>Event timeline</h2>\n<table>\n");
    out.push_str("<tr><th>t (ms)</th><th>iter</th><th>event</th><th>detail</th></tr>\n");
    for e in events {
        let class = match e.name.as_str() {
            "guard_warning" => "ev-warning",
            "rollback" => "ev-rollback",
            _ => "ev-checkpoint",
        };
        let iter = e.iter.map(|i| i.to_string()).unwrap_or_else(|| "—".into());
        let _ = writeln!(
            out,
            "<tr class=\"{}\"><td>{:.2}</td><td>{}</td><td class=\"name\">{}</td>\
             <td class=\"name\">{}</td></tr>",
            class,
            e.ts_ns as f64 / 1e6,
            iter,
            esc(&e.name),
            esc(&e.detail)
        );
    }
    out.push_str("</table>\n");
}

fn render_frames(out: &mut String, model: &RunModel) {
    if model.frames.is_empty() {
        return;
    }
    out.push_str("<h2>Congestion / density frames</h2>\n");
    if model.dropped_frames > 0 {
        let _ = writeln!(
            out,
            "<p class=\"banner\">{} oldest frames were evicted by the frame byte budget; \
             the earliest iterations below may be missing.</p>",
            model.dropped_frames
        );
    }
    for f in &model.frames {
        render_heatmap(out, f);
    }
}

/// One frame as an SVG heatmap: values quantized to the 10-level ramp,
/// horizontal runs of equal level merged into single rects to keep the
/// document small. Row 0 of the frame is drawn at the bottom (placement
/// coordinates, not screen coordinates).
fn render_heatmap(out: &mut String, f: &FrameRec) {
    let cell = (240.0 / f.nx.max(1) as f64).clamp(3.0, 16.0);
    let w = cell * f.nx as f64;
    let h = cell * f.ny as f64;
    let (lo, hi) = f
        .data
        .iter()
        .filter(|v| v.is_finite())
        .fold((f64::INFINITY, f64::NEG_INFINITY), |a, v| {
            (a.0.min(*v), a.1.max(*v))
        });
    let span = (hi - lo).max(1e-12);
    let level = |v: f64| -> usize {
        if !v.is_finite() {
            return HEAT_RAMP.len() - 1;
        }
        (((v - lo) / span * (HEAT_RAMP.len() - 1) as f64).round() as usize).min(HEAT_RAMP.len() - 1)
    };

    let iter_attr = f
        .iter
        .map(|i| i.to_string())
        .unwrap_or_else(|| "none".into());
    let _ = writeln!(out, "<figure class=\"heat\">");
    let _ = writeln!(
        out,
        "<svg data-frame=\"{}\" data-iter=\"{}\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.0} {:.0}\">",
        esc(&f.name),
        iter_attr,
        w,
        h,
        w,
        h
    );
    for y in 0..f.ny {
        let sy = h - cell * (y + 1) as f64;
        let mut x = 0usize;
        while x < f.nx {
            let lv = level(f.data[y * f.nx + x]);
            let mut run = 1usize;
            while x + run < f.nx && level(f.data[y * f.nx + x + run]) == lv {
                run += 1;
            }
            // Level 0 is the background; skip it to shrink the file.
            if lv > 0 {
                let _ = writeln!(
                    out,
                    "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\"/>",
                    cell * x as f64,
                    sy,
                    cell * run as f64,
                    cell,
                    HEAT_RAMP[lv]
                );
            }
            x += run;
        }
    }
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{w:.0}\" height=\"{h:.0}\" fill=\"none\" stroke=\"#bbb\"/>"
    );
    out.push_str("</svg>\n");
    let iter_cap = f.iter.map(|i| format!(" iter {i}")).unwrap_or_default();
    let _ = writeln!(
        out,
        "<figcaption>{}{} — min {} · max {}</figcaption>",
        esc(&f.name),
        iter_cap,
        fnum(if lo.is_finite() { lo } else { 0.0 }),
        fnum(if hi.is_finite() { hi } else { 0.0 })
    );
    out.push_str("</figure>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RunModel;
    use rdp_obs::Collector;

    fn model() -> RunModel {
        let c = Collector::enabled();
        {
            let _f = c.span("flow", "flow");
            let _r = c.span_iter("route_iter", "flow", 0);
        }
        c.instant("rollback", 0, "detail with <angle> & \"quote\"");
        c.gauge_set("final_hpwl", 42.0);
        c.series_push("hpwl", 0, 10.0);
        c.series_push("hpwl", 1, 9.0);
        c.frame(
            "congestion",
            0,
            4,
            4,
            &(0..16).map(|i| i as f64).collect::<Vec<_>>(),
        );
        RunModel::from_collector(&c).unwrap()
    }

    #[test]
    fn report_contains_tagged_charts_and_frames() {
        let html = render_report(&model(), "test run");
        assert!(html.contains("data-series=\"hpwl\" data-points=\"2\""));
        assert!(html.contains("data-frame=\"congestion\" data-iter=\"0\""));
        assert!(html.contains("final_hpwl"));
        assert!(html.contains("rollback"));
    }

    #[test]
    fn detail_text_is_escaped() {
        let html = render_report(&model(), "t");
        assert!(html.contains("&lt;angle&gt; &amp; &quot;quote&quot;"));
        assert!(!html.contains("<angle>"));
    }

    #[test]
    fn constant_series_and_frames_render() {
        let c = Collector::enabled();
        c.series_push("flat", 0, 5.0);
        c.series_push("flat", 1, 5.0);
        c.frame("density", 1, 2, 2, &[1.0; 4]);
        let m = RunModel::from_collector(&c).unwrap();
        let html = render_report(&m, "flat");
        assert!(html.contains("data-series=\"flat\""));
        assert!(html.contains("data-frame=\"density\""));
    }
}
