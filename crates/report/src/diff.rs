//! Run-to-run diff: structured QoR and perf deltas with noise thresholds.
//!
//! All compared quantities are lower-is-better (wirelength, overflow,
//! rollbacks, wall time), so a *regression* is `b` exceeding `a` by more
//! than the relative tolerance. Same-seed runs are bitwise deterministic
//! end to end, so their QoR deltas are exactly zero regardless of the
//! tolerance; the tolerance exists for cross-seed / cross-machine noise.

use crate::model::RunModel;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Noise thresholds for [`diff_runs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Relative tolerance on QoR metrics (HPWL, overflow, counters).
    pub qor_rel_tol: f64,
    /// Relative tolerance on per-stage wall times. Defaults to infinity —
    /// single-run timings are too noisy to gate on; `scripts/regress.sh`
    /// gates perf with median-of-N bench baselines instead.
    pub time_rel_tol: f64,
    /// Denominator floor so near-zero baselines don't explode the
    /// relative delta.
    pub abs_floor: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            qor_rel_tol: 0.005,
            time_rel_tol: f64::INFINITY,
            abs_floor: 1e-9,
        }
    }
}

/// What a delta is measuring, which decides its tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Quality of result; gated by `qor_rel_tol`.
    Qor,
    /// Stage wall time; gated by `time_rel_tol`.
    Perf,
    /// Reported but never a regression (histogram shifts, coverage).
    Info,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Namespaced metric name ("gauge/final_hpwl", "time/route/total_ms").
    pub metric: String,
    /// Which tolerance gated it.
    pub kind: DeltaKind,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// `(b - a) / max(|a|, abs_floor)`.
    pub rel: f64,
    /// Whether `rel` exceeded the kind's tolerance.
    pub regression: bool,
}

/// Full structured diff between two runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunDiff {
    /// Every compared metric, in a stable namespaced order.
    pub deltas: Vec<Delta>,
    /// Metric names present in only one of the two runs.
    pub unmatched: Vec<String>,
}

impl RunDiff {
    /// True if any delta exceeded its tolerance.
    pub fn has_regression(&self) -> bool {
        self.deltas.iter().any(|d| d.regression)
    }

    /// Names of regressed metrics, for error messages and exit paths.
    pub fn regressions(&self) -> Vec<&str> {
        self.deltas
            .iter()
            .filter(|d| d.regression)
            .map(|d| d.metric.as_str())
            .collect()
    }

    /// Human-readable table, regressions flagged on the right.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:>14} {:>14} {:>9}",
            "metric", "run A", "run B", "delta"
        );
        for d in &self.deltas {
            let flag = if d.regression { "  REGRESSION" } else { "" };
            let _ = writeln!(
                out,
                "{:<36} {:>14.4} {:>14.4} {:>+8.2}%{}",
                d.metric,
                d.a,
                d.b,
                100.0 * d.rel,
                flag
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "{name:<36} (present in only one run)");
        }
        out
    }
}

/// Signed relative delta `(b − a) / max(|a|, floor)` — the comparison
/// primitive behind every QoR/perf gate in `rdp diff`. Public so other
/// gates (the congestion-prediction drift gate in `rdp-predict`) measure
/// divergence with the exact same arithmetic the diff tool reports.
pub fn rel_delta(a: f64, b: f64, floor: f64) -> f64 {
    (b - a) / a.abs().max(floor)
}

/// Diff two ingested runs. `a` is the baseline, `b` the candidate.
pub fn diff_runs(a: &RunModel, b: &RunModel, thr: &DiffThresholds) -> RunDiff {
    let mut diff = RunDiff::default();
    let mut push = |metric: String, kind: DeltaKind, va: f64, vb: f64| {
        let rel = rel_delta(va, vb, thr.abs_floor);
        let tol = match kind {
            DeltaKind::Qor => thr.qor_rel_tol,
            DeltaKind::Perf => thr.time_rel_tol,
            DeltaKind::Info => f64::INFINITY,
        };
        diff.deltas.push(Delta {
            metric,
            kind,
            a: va,
            b: vb,
            rel,
            regression: rel > tol,
        });
    };

    // QoR gauges (final_hpwl, final_density_overflow, …) and counters
    // (rollbacks, gp_iterations, …): everything recorded, name-matched.
    for key in keys(&a.gauges, &b.gauges, &mut diff.unmatched, "gauge") {
        push(
            format!("gauge/{key}"),
            DeltaKind::Qor,
            a.gauges[&key],
            b.gauges[&key],
        );
    }
    for key in keys(&a.counters, &b.counters, &mut diff.unmatched, "counter") {
        push(
            format!("counter/{key}"),
            DeltaKind::Qor,
            a.counters[&key],
            b.counters[&key],
        );
    }

    // Series: compare the final value of each per-iteration series (the
    // converged state), plus its length as an Info row so a run that
    // silently did fewer iterations is visible.
    let snames: BTreeSet<&String> = a.series.keys().chain(b.series.keys()).collect();
    for name in snames {
        match (a.series.get(name), b.series.get(name)) {
            (Some(sa), Some(sb)) => {
                if let (Some(la), Some(lb)) = (sa.last(), sb.last()) {
                    push(format!("series/{name}/last"), DeltaKind::Qor, la.1, lb.1);
                }
                push(
                    format!("series/{name}/points"),
                    DeltaKind::Info,
                    sa.len() as f64,
                    sb.len() as f64,
                );
            }
            _ => diff.unmatched.push(format!("series/{name}")),
        }
    }

    // Histogram mean shifts: informational (distributions move with any
    // code change; the QoR gates above are the contract).
    let hnames: BTreeSet<&String> = a.histograms.keys().chain(b.histograms.keys()).collect();
    for name in hnames {
        match (a.histograms.get(name), b.histograms.get(name)) {
            (Some(ha), Some(hb)) => {
                push(
                    format!("histogram/{name}/mean"),
                    DeltaKind::Info,
                    ha.mean(),
                    hb.mean(),
                );
            }
            _ => diff.unmatched.push(format!("histogram/{name}")),
        }
    }

    // Per-stage wall times from the traces, when both runs carried one.
    let ta = a.stage_totals();
    let tb = b.stage_totals();
    if !ta.is_empty() && !tb.is_empty() {
        let names: BTreeSet<&String> = ta.keys().chain(tb.keys()).collect();
        for name in names {
            match (ta.get(name), tb.get(name)) {
                (Some((_, na)), Some((_, nb))) => {
                    push(
                        format!("time/{name}/total_ms"),
                        DeltaKind::Perf,
                        *na as f64 / 1e6,
                        *nb as f64 / 1e6,
                    );
                }
                _ => diff.unmatched.push(format!("time/{name}")),
            }
        }
    }

    diff
}

/// Keys present in both maps; one-sided keys are recorded as unmatched.
fn keys(
    a: &std::collections::BTreeMap<String, f64>,
    b: &std::collections::BTreeMap<String, f64>,
    unmatched: &mut Vec<String>,
    what: &str,
) -> Vec<String> {
    let ka: BTreeSet<&String> = a.keys().collect();
    let kb: BTreeSet<&String> = b.keys().collect();
    for only in ka.symmetric_difference(&kb) {
        unmatched.push(format!("{what}/{only}"));
    }
    ka.intersection(&kb).map(|k| (*k).clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_obs::Collector;

    fn run(hpwl: f64) -> RunModel {
        let c = Collector::enabled();
        {
            let _s = c.span("route", "route");
        }
        c.gauge_set("final_hpwl", hpwl);
        c.counter_add("rollbacks", 0);
        c.series_push("route_overflow", 0, 10.0);
        c.series_push("route_overflow", 1, 4.0);
        c.observe("wa_grad", 1.0);
        RunModel::from_collector(&c).unwrap()
    }

    #[test]
    fn identical_runs_have_zero_deltas_and_no_regression() {
        let a = run(100.0);
        let b = run(100.0);
        let d = diff_runs(&a, &b, &DiffThresholds::default());
        assert!(!d.has_regression());
        for delta in d.deltas.iter().filter(|d| d.kind == DeltaKind::Qor) {
            assert_eq!(delta.rel, 0.0, "{delta:?}");
        }
        assert!(d.unmatched.is_empty(), "{:?}", d.unmatched);
    }

    #[test]
    fn qor_regression_beyond_tolerance_is_flagged_by_name() {
        let a = run(100.0);
        let b = run(103.0); // +3% > 0.5% default tolerance
        let d = diff_runs(&a, &b, &DiffThresholds::default());
        assert!(d.has_regression());
        assert!(d.regressions().contains(&"gauge/final_hpwl"));
        assert!(d.render_text().contains("REGRESSION"));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let a = run(100.0);
        let b = run(90.0);
        let d = diff_runs(&a, &b, &DiffThresholds::default());
        assert!(!d.has_regression());
    }

    #[test]
    fn tolerance_widens_the_gate() {
        let a = run(100.0);
        let b = run(103.0);
        let thr = DiffThresholds {
            qor_rel_tol: 0.05,
            ..DiffThresholds::default()
        };
        assert!(!diff_runs(&a, &b, &thr).has_regression());
    }

    #[test]
    fn one_sided_metrics_are_reported_unmatched() {
        let a = run(100.0);
        let mut b = run(100.0);
        b.gauges.insert("extra".into(), 1.0);
        let d = diff_runs(&a, &b, &DiffThresholds::default());
        assert!(d.unmatched.iter().any(|u| u == "gauge/extra"));
        assert!(!d.has_regression());
    }

    #[test]
    fn time_gate_applies_when_configured() {
        let mut a = run(100.0);
        let mut b = run(100.0);
        a.spans[0].dur_ns = 1_000_000;
        b.spans[0].dur_ns = 2_000_000;
        let thr = DiffThresholds {
            time_rel_tol: 0.5,
            ..DiffThresholds::default()
        };
        let d = diff_runs(&a, &b, &thr);
        assert!(d.regressions().contains(&"time/route/total_ms"));
    }
}
