//! In-crate validator for rendered reports.
//!
//! A report is only trustworthy if it is *provably* self-contained and
//! consistent with the run it claims to describe, so CI validates every
//! generated report against three properties:
//!
//! 1. **No external references** — no URLs, scripts, stylesheets, frames,
//!    or anything else that would make the browser fetch or execute.
//! 2. **Well-formed markup** — every opened tag is closed, in order.
//! 3. **Model consistency** — each series chart advertises exactly the
//!    point count the ingested [`RunModel`] holds, and every captured
//!    frame appears as exactly one heatmap.

use crate::model::RunModel;

/// What the validator counted; useful for assertions in tests and CI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportStats {
    /// `data-series` charts found.
    pub charts: usize,
    /// `data-frame` heatmaps found.
    pub heatmaps: usize,
}

/// Substrings that would make the document fetch, execute, or embed
/// external content. The renderer never emits them; their presence means
/// the report was tampered with or the renderer regressed.
const BANNED: &[&str] = &[
    "http://", "https://", "<script", "<iframe", "<link", "<object", "<embed", "src=", "href=",
    "url(", "@import", "<base", "<form",
];

/// Tags the renderer emits that do not take a closing tag.
const VOID_TAGS: &[&str] = &[
    "meta", "br", "hr", "img", "rect", "circle", "polyline", "line",
];

/// Validate `html` as a self-contained report for `model`. Returns
/// counting stats on success and a human-readable reason on failure.
pub fn validate_report(html: &str, model: &RunModel) -> Result<ReportStats, String> {
    let lower = html.to_lowercase();
    for banned in BANNED {
        if let Some(pos) = lower.find(banned) {
            return Err(format!(
                "external-reference marker {banned:?} found at byte {pos}"
            ));
        }
    }
    check_balanced(html)?;
    check_series(html, model)?;
    check_frames(html, model)
}

/// Scan tags with a stack; every non-void open tag must be closed in
/// order. The renderer emits no comments or CDATA, so those are errors.
fn check_balanced(html: &str) -> Result<(), String> {
    let mut stack: Vec<String> = Vec::new();
    let bytes = html.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        let rest = &html[i..];
        if rest.starts_with("<!DOCTYPE") || rest.starts_with("<!doctype") {
            i += rest.find('>').ok_or("unterminated doctype")? + 1;
            continue;
        }
        let end = rest
            .find('>')
            .ok_or_else(|| format!("unterminated tag at byte {i}"))?;
        let tag = &rest[1..end];
        i += end + 1;
        if let Some(name) = tag.strip_prefix('/') {
            let name = name.trim().to_lowercase();
            match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!("closing </{name}> but <{open}> is open"));
                }
                None => return Err(format!("closing </{name}> with no open tag")),
            }
        } else {
            let self_closing = tag.ends_with('/');
            let name: String = tag
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            if name.is_empty() {
                return Err(format!("malformed tag <{tag}>"));
            }
            if !self_closing && !VOID_TAGS.contains(&name.as_str()) {
                stack.push(name);
            }
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("<{open}> was never closed"));
    }
    Ok(())
}

/// Extract `attr="value"` occurrences in document order.
fn attr_values<'h>(html: &'h str, attr: &str) -> Vec<&'h str> {
    let needle = format!("{attr}=\"");
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = html[from..].find(&needle) {
        let start = from + pos + needle.len();
        if let Some(end) = html[start..].find('"') {
            out.push(&html[start..start + end]);
            from = start + end + 1;
        } else {
            break;
        }
    }
    out
}

fn check_series(html: &str, model: &RunModel) -> Result<usize, String> {
    let names = attr_values(html, "data-series");
    let counts = attr_values(html, "data-points");
    if names.len() != counts.len() {
        return Err(format!(
            "{} data-series attrs but {} data-points attrs",
            names.len(),
            counts.len()
        ));
    }
    if names.len() != model.series.len() {
        return Err(format!(
            "report has {} series charts but the run recorded {} series",
            names.len(),
            model.series.len()
        ));
    }
    for (name, count) in names.iter().zip(&counts) {
        let expected = model
            .series
            .get(*name)
            .ok_or_else(|| format!("chart for unknown series {name:?}"))?
            .len();
        let got: usize = count
            .parse()
            .map_err(|_| format!("non-numeric data-points {count:?} on series {name:?}"))?;
        if got != expected {
            return Err(format!(
                "series {name:?} chart claims {got} points but the trace holds {expected}"
            ));
        }
    }
    Ok(names.len())
}

fn check_frames(html: &str, model: &RunModel) -> Result<ReportStats, String> {
    let frames = attr_values(html, "data-frame");
    if frames.len() != model.frames.len() {
        return Err(format!(
            "report has {} heatmaps but the run captured {} frames",
            frames.len(),
            model.frames.len()
        ));
    }
    for (got, want) in frames.iter().zip(&model.frames) {
        if *got != want.name {
            return Err(format!(
                "heatmap order mismatch: found {:?}, expected {:?}",
                got, want.name
            ));
        }
    }
    Ok(ReportStats {
        charts: model.series.len(),
        heatmaps: frames.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::render_report;
    use rdp_obs::Collector;

    fn model() -> RunModel {
        let c = Collector::enabled();
        {
            let _r = c.span_iter("route_iter", "flow", 0);
        }
        c.series_push("hpwl", 0, 2.0);
        c.series_push("hpwl", 1, 1.0);
        c.frame(
            "congestion",
            0,
            3,
            3,
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        );
        RunModel::from_collector(&c).unwrap()
    }

    #[test]
    fn rendered_report_validates() {
        let m = model();
        let html = render_report(&m, "ok");
        let stats = validate_report(&html, &m).unwrap();
        assert_eq!(stats.charts, 1);
        assert_eq!(stats.heatmaps, 1);
    }

    #[test]
    fn external_references_are_rejected() {
        let m = model();
        let html = render_report(&m, "ok");
        for poison in [
            "<script>alert(1)</script>",
            "<img src=\"https://evil.example/x.png\">",
            "<a href=\"http://example.com\">x</a>",
            "<style>body { background: url(//x) }</style>",
        ] {
            let bad = html.replace("</body>", &format!("{poison}</body>"));
            assert!(validate_report(&bad, &m).is_err(), "accepted {poison:?}");
        }
    }

    #[test]
    fn unbalanced_markup_is_rejected() {
        let m = model();
        let html = render_report(&m, "ok");
        let bad = html.replacen("</table>", "", 1);
        assert!(validate_report(&bad, &m).is_err());
    }

    #[test]
    fn series_count_mismatch_is_rejected() {
        let m = model();
        let html = render_report(&m, "ok");
        let bad = html.replace("data-points=\"2\"", "data-points=\"3\"");
        let err = validate_report(&bad, &m).unwrap_err();
        assert!(err.contains("hpwl"), "{err}");
    }

    #[test]
    fn missing_heatmap_is_rejected() {
        let m = model();
        let mut m2 = m.clone();
        m2.frames.push(m.frames[0].clone());
        let html = render_report(&m, "ok");
        let err = validate_report(&html, &m2).unwrap_err();
        assert!(err.contains("heatmaps"), "{err}");
    }
}
