//! The deterministic scoped thread pool.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread-count override; 0 means "not yet resolved".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread thread-count override; 0 means "not set". Consulted
    /// before the process-global value so a service can partition its
    /// worker threads without touching the process-wide setting.
    static LOCAL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Runs `f` with the calling thread's pool width pinned to `threads`
/// (clamped to ≥ 1). The override applies to every [`Pool::global()`]
/// created on this thread inside `f` — including transitively, deep in
/// kernel code — and is restored on exit, even on panic. Results are
/// unaffected by construction: the determinism contract makes them
/// bit-identical at any width; only the parallelism changes.
pub fn with_local_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| {
        let prev = c.get();
        c.set(threads.max(1));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Resolves the global thread count: a [`with_local_threads`] scope on
/// the calling thread wins, then an explicit [`set_global_threads`]
/// override, then the `RDP_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. A value of 1 selects the
/// exact serial fallback.
pub fn global_threads() -> usize {
    let local = LOCAL_THREADS.with(|c| c.get());
    if local != 0 {
        return local;
    }
    let t = GLOBAL_THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = threads_from_env();
    // Racing initializers resolve to the same value, so a plain store
    // is fine; `set_global_threads` may overwrite it later.
    GLOBAL_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the global thread count (clamped to ≥ 1). Intended for
/// benchmarks and determinism tests that compare thread counts within
/// one process; production callers should prefer `RDP_THREADS`.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads.max(1), Ordering::Relaxed);
}

fn threads_from_env() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("RDP_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("warning: ignoring unparsable RDP_THREADS={v:?}");
                default_parallelism()
            }
        },
        Err(_) => default_parallelism(),
    })
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Deterministic chunk length for `n` items: large enough that at most
/// `max_chunks` chunks exist (bounding per-chunk scratch memory), never
/// below `min_len` (bounding scheduling overhead). Depends only on the
/// item count — **never** on the thread count — so chunk boundaries,
/// and with them every floating-point grouping, are reproducible.
pub fn chunk_len(n: usize, max_chunks: usize, min_len: usize) -> usize {
    n.div_ceil(max_chunks.max(1)).max(min_len).max(1)
}

/// A deterministic scoped thread pool of a fixed logical width.
///
/// `Pool` is a plain value (`Copy`): it carries the worker count and
/// spawns scoped workers per parallel region. See the crate docs for
/// the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The exact serial fallback: one worker, inline execution.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// The process-global pool, sized by [`global_threads`].
    pub fn global() -> Self {
        Pool::new(global_threads())
    }

    /// Logical worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..n` into fixed chunks of `chunk` items (the last chunk
    /// may be short) and maps every chunk, returning the per-chunk
    /// results **in chunk order**. `f` receives the chunk index and the
    /// item range.
    pub fn map_chunks<R, F>(&self, n: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        self.map_chunks_scratch(n, chunk, || (), |(), ci, range| f(ci, range))
    }

    /// [`map_chunks`](Pool::map_chunks) with per-worker scratch: every
    /// worker creates one scratch value with `make_scratch` and reuses
    /// it across the chunks it processes. Scratch state must not
    /// influence results (workers pick up chunks dynamically).
    pub fn map_chunks_scratch<S, R, FS, F>(
        &self,
        n: usize,
        chunk: usize,
        make_scratch: FS,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut S, usize, Range<usize>) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let nchunks = n.div_ceil(chunk);
        if nchunks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(nchunks);
        if workers <= 1 {
            let mut scratch = make_scratch();
            return (0..nchunks)
                .map(|ci| f(&mut scratch, ci, chunk_range(ci, chunk, n)))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let worker = || {
            let mut scratch = make_scratch();
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let ci = cursor.fetch_add(1, Ordering::Relaxed);
                if ci >= nchunks {
                    break;
                }
                local.push((ci, f(&mut scratch, ci, chunk_range(ci, chunk, n))));
            }
            local
        };

        let mut slots: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers - 1).map(|_| scope.spawn(worker)).collect();
            for (ci, r) in worker() {
                slots[ci] = Some(r);
            }
            for h in handles {
                match h.join() {
                    Ok(part) => {
                        for (ci, r) in part {
                            slots[ci] = Some(r);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every chunk was processed"))
            .collect()
    }

    /// Parallel mutation of `out` in fixed chunks of `chunk` elements:
    /// `f(scratch, chunk_index, offset, slice)` receives a disjoint
    /// `&mut` window starting at element `offset`. Writes are disjoint
    /// by construction, so results are deterministic for any thread
    /// count.
    pub fn for_chunks_mut<O, S, FS, F>(&self, out: &mut [O], chunk: usize, make_scratch: FS, f: F)
    where
        O: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut S, usize, usize, &mut [O]) + Sync,
    {
        let chunk = chunk.max(1);
        let bounds: Vec<usize> = (0..out.len().div_ceil(chunk))
            .map(|ci| ci * chunk)
            .chain(std::iter::once(out.len()))
            .collect();
        self.for_uneven_chunks_mut(out, &bounds, make_scratch, f);
    }

    /// Like [`for_chunks_mut`](Pool::for_chunks_mut) with explicit
    /// chunk boundaries: chunk `i` is `out[bounds[i]..bounds[i + 1]]`.
    /// Used when chunk edges must align with a structure of the data
    /// (e.g. nets with a variable pin count).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ascending sequence starting at 0 and
    /// ending at `out.len()`.
    pub fn for_uneven_chunks_mut<O, S, FS, F>(
        &self,
        out: &mut [O],
        bounds: &[usize],
        make_scratch: FS,
        f: F,
    ) where
        O: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut S, usize, usize, &mut [O]) + Sync,
    {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&out.len()),
            "bounds must start at 0 and end at out.len()"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be ascending"
        );
        let nchunks = bounds.len() - 1;
        if nchunks == 0 {
            return;
        }
        let workers = self.threads.min(nchunks);
        if workers <= 1 {
            let mut scratch = make_scratch();
            let mut rest = out;
            for ci in 0..nchunks {
                let len = bounds[ci + 1] - bounds[ci];
                let (head, tail) = rest.split_at_mut(len);
                f(&mut scratch, ci, bounds[ci], head);
                rest = tail;
            }
            return;
        }

        // Split `out` into disjoint windows up front; workers drain the
        // queue dynamically. Which worker runs a chunk cannot influence
        // results — each window is written by exactly one worker.
        let mut items: Vec<(usize, usize, &mut [O])> = Vec::with_capacity(nchunks);
        let mut rest = out;
        for ci in 0..nchunks {
            let len = bounds[ci + 1] - bounds[ci];
            let (head, tail) = rest.split_at_mut(len);
            items.push((ci, bounds[ci], head));
            rest = tail;
        }
        items.reverse(); // pop() drains in ascending chunk order
        let queue = Mutex::new(items);

        let worker = || {
            let mut scratch = make_scratch();
            loop {
                let item = queue.lock().expect("queue poisoned").pop();
                match item {
                    Some((ci, offset, slice)) => f(&mut scratch, ci, offset, slice),
                    None => break,
                }
            }
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers - 1).map(|_| scope.spawn(worker)).collect();
            worker();
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }
}

fn chunk_range(ci: usize, chunk: usize, n: usize) -> Range<usize> {
    ci * chunk..((ci + 1) * chunk).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_orders_results_by_chunk() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let out = pool.map_chunks(103, 10, |ci, range| (ci, range.start, range.end));
            assert_eq!(out.len(), 11);
            for (ci, item) in out.iter().enumerate() {
                assert_eq!(*item, (ci, ci * 10, (ci * 10 + 10).min(103)));
            }
        }
    }

    #[test]
    fn chunked_sum_is_thread_count_invariant() {
        let data: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 101) as f64 * 0.1).collect();
        let sum_with = |threads: usize| -> f64 {
            Pool::new(threads)
                .map_chunks(data.len(), 64, |_, r| data[r].iter().sum::<f64>())
                .into_iter()
                .sum()
        };
        let s1 = sum_with(1);
        for threads in [2, 3, 4, 16] {
            assert_eq!(s1.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn for_chunks_mut_writes_every_element_once() {
        for threads in [1, 3, 8] {
            let mut out = vec![0u32; 1001];
            Pool::new(threads).for_chunks_mut(
                &mut out,
                37,
                || (),
                |(), _ci, offset, slice| {
                    for (k, v) in slice.iter_mut().enumerate() {
                        *v += (offset + k) as u32 + 1;
                    }
                },
            );
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1, "element {i}");
            }
        }
    }

    #[test]
    fn uneven_bounds_respected() {
        let bounds = [0usize, 3, 3, 10, 16];
        for threads in [1, 4] {
            let mut out = vec![usize::MAX; 16];
            Pool::new(threads).for_uneven_chunks_mut(
                &mut out,
                &bounds,
                || (),
                |(), ci, offset, slice| {
                    assert_eq!(offset, bounds[ci]);
                    assert_eq!(slice.len(), bounds[ci + 1] - bounds[ci]);
                    for v in slice.iter_mut() {
                        *v = ci;
                    }
                },
            );
            for (i, v) in out.iter().enumerate() {
                let expect = match i {
                    0..=2 => 0,
                    3..=9 => 2,
                    _ => 3,
                };
                assert_eq!(*v, expect, "element {i}");
            }
        }
    }

    #[test]
    fn scratch_is_reused_not_shared() {
        // Each worker's scratch counts the chunks it processed; totals
        // must add up to the chunk count.
        let counted = std::sync::atomic::AtomicUsize::new(0);
        Pool::new(4).map_chunks_scratch(
            1000,
            10,
            || 0usize,
            |seen, _ci, _r| {
                *seen += 1;
                counted.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(counted.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = Pool::new(4).map_chunks(0, 8, |ci, _| ci);
        assert!(out.is_empty());
        let mut buf: [u8; 0] = [];
        Pool::new(4).for_chunks_mut(&mut buf, 8, || (), |(), _, _, _| panic!("no chunks"));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map_chunks(100, 5, |ci, _| {
                if ci == 7 {
                    panic!("boom in chunk 7");
                }
                ci
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_regions_work() {
        let pool = Pool::new(2);
        let outer = pool.map_chunks(8, 2, |_, range| {
            let inner: usize = Pool::new(2)
                .map_chunks(4, 1, |_, r| r.start + 1)
                .into_iter()
                .sum();
            range.len() * inner
        });
        assert_eq!(outer, vec![20, 20, 20, 20]);
    }

    #[test]
    fn chunk_len_policy() {
        assert_eq!(chunk_len(0, 16, 8), 8);
        assert_eq!(chunk_len(100, 16, 1), 7);
        assert_eq!(chunk_len(100, 16, 32), 32);
        assert_eq!(chunk_len(1, 16, 1), 1);
        // Thread count does not appear anywhere in the policy.
    }

    #[test]
    fn global_pool_is_at_least_one() {
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn local_thread_override_scopes_and_restores() {
        let outside = Pool::global().threads();
        let inside = with_local_threads(3, || Pool::global().threads());
        assert_eq!(inside, 3);
        assert_eq!(Pool::global().threads(), outside);

        // Nested scopes stack; zero clamps to one.
        with_local_threads(2, || {
            assert_eq!(Pool::global().threads(), 2);
            with_local_threads(0, || assert_eq!(Pool::global().threads(), 1));
            assert_eq!(Pool::global().threads(), 2);
        });

        // The override is per-thread: a spawned thread sees the default.
        with_local_threads(5, || {
            let other = std::thread::spawn(move || Pool::global().threads())
                .join()
                .unwrap();
            assert_eq!(other, outside);
        });

        // Restored even when the scope panics.
        let _ = std::panic::catch_unwind(|| with_local_threads(7, || panic!("boom")));
        assert_eq!(Pool::global().threads(), outside);
    }
}
