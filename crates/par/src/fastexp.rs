//! Branch-free polynomial `exp` for the hot kernels.
//!
//! The WA wirelength gradient and the router's logistic G-cell cost spend
//! most of their time in `f64::exp`, which on glibc is an out-of-line
//! call with internal branches — the call alone blocks autovectorization
//! of every loop that contains it. [`fast_exp`] is a straight-line
//! Cody–Waite range reduction plus the classic Cephes degree-(2,3)
//! rational approximation, accurate to ≈2 ulp over the whole finite
//! range, built only from `+ - * /`, `round`, integer shifts and
//! `f64::from_bits`. That makes it:
//!
//! * **inlinable** — LLVM can keep it inside the caller's loop and
//!   vectorize the surrounding arithmetic;
//! * **deterministic** — the operation sequence is fixed (no FMA, no
//!   libm dispatch, no per-input branches), so results are bit-identical
//!   across thread counts and across calls, exactly like the rest of the
//!   workspace's kernels (see DESIGN.md §11);
//! * **total** — inputs are clamped to the exactly-representable range
//!   `[-708, 709]`, so overflow saturates to `exp(709) ≈ 8.2e307`
//!   (finite) and deep underflow to `exp(-708) ≈ 3.3e-308` instead of 0.
//!   NaN propagates. The kernels only ever feed it max-shifted exponents
//!   (≤ 0) or bounded logistic arguments, where clamping is a no-op.
//!
//! Switching a kernel from `f64::exp` to `fast_exp` changes its output
//! in the last couple of bits, which is why the swap landed together
//! with a bench re-baseline (the determinism suite compares thread
//! counts within one build, never across builds — see DESIGN.md §7).

/// Cephes `exp` numerator coefficients (highest order first), for
/// `px = r · P(r²)`.
const P: [f64; 3] = [
    1.26177193074810590878e-4,
    3.02994407707441961300e-2,
    9.99999999999999999910e-1,
];

/// Cephes `exp` denominator coefficients (highest order first), for
/// `qx = Q(r²)`.
const Q: [f64; 4] = [
    3.00198505138664455042e-6,
    2.52448340349684104192e-3,
    2.27265548208155028766e-1,
    2.00000000000000000005e0,
];

/// `ln 2` split for Cody–Waite reduction: `LN2_HI + LN2_LO = ln 2` with
/// `LN2_HI` exact in the product `n · LN2_HI` for |n| < 2^20.
const LN2_HI: f64 = 6.93145751953125e-1;
const LN2_LO: f64 = 1.42860682030941723212e-6;

/// Round-to-nearest magic constant `2^52 + 2^51`: adding it pushes the
/// integer part of a small f64 into the mantissa's low bits (and the
/// subtraction recovers the rounded value), replacing `f64::round` —
/// which lowers to a libm call on baseline x86-64 — with two adds.
const MAGIC: f64 = 6_755_399_441_055_744.0;

/// Fast, deterministic, branch-free `e^x` (≈2 ulp).
///
/// See the module docs for the contract. The body is pure straight-line
/// arithmetic so LLVM can inline and vectorize it inside hot loops.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    // Clamp to the safely finite range; NaN propagates through clamp.
    let x = x.clamp(-708.0, 709.0);

    // Range reduction: x = n·ln2 + r, |r| ≤ ½ln2 (+1 ulp from the
    // nearest-even magic rounding — harmless). After the clamp,
    // |x·log2 e| ≤ 1023.5 ≪ 2^51, so the magic-add is exact rounding.
    let t = x * std::f64::consts::LOG2_E + MAGIC;
    let n = t - MAGIC;
    let r = (x - n * LN2_HI) - n * LN2_LO;

    // e^r via the Cephes rational approximation e^r = 1 + 2·px/(qx − px).
    let rr = r * r;
    let px = r * ((P[0] * rr + P[1]) * rr + P[2]);
    let qx = ((Q[0] * rr + Q[1]) * rr + Q[2]) * rr + Q[3];
    let e = px / (qx - px);
    let poly = 1.0 + 2.0 * e;

    // Scale by 2^n through the exponent bits. Because `t`'s exponent is
    // pinned at 2^52 by the magic-add, its mantissa's low 32 bits hold
    // `n` in two's complement (n ∈ [-1022, 1023] after the clamp, so the
    // biased exponent stays normal). NaN inputs reach here with a zero
    // low word (scale 1.0) and `poly` already NaN, so NaN propagates.
    let k = t.to_bits() as u32 as i32 as i64;
    let scale = f64::from_bits(((k + 1023) as u64) << 52);
    poly * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_to_two_ulp() {
        // Dense sweep over the range the kernels actually use.
        let mut x = -60.0f64;
        while x <= 8.0 {
            let got = fast_exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-15, "x={x}: got {got}, want {want}, rel {rel}");
            x += 0.0137;
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(f64::NAN).is_nan());
        // Saturation: huge inputs clamp instead of overflowing to inf.
        assert!(fast_exp(1e9).is_finite());
        assert!(fast_exp(1e9) > 1e300);
        assert!(fast_exp(-1e9) > 0.0);
        assert!(fast_exp(-1e9) < 1e-300);
        // Deep-but-representable arguments stay monotone-ish and finite.
        assert!(fast_exp(-700.0) > 0.0);
        assert!(fast_exp(708.0).is_finite());
    }

    #[test]
    fn deterministic_across_calls() {
        for i in 0..1000 {
            let x = -0.003 * i as f64;
            assert_eq!(fast_exp(x).to_bits(), fast_exp(x).to_bits());
        }
    }
}
