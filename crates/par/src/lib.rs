//! # rdp-par — deterministic data parallelism for the placement stack
//!
//! A zero-dependency scoped thread pool with a **deterministic**
//! parallel-map/reduce API. The workspace's hermetic-build policy rules
//! out `rayon`; more importantly, rayon's reductions associate partial
//! results in scheduling order, which breaks the workspace contract that
//! every kernel is bit-reproducible. This crate makes determinism
//! structural instead of accidental:
//!
//! * **Fixed chunking** — work is split into chunks whose boundaries
//!   depend only on the item count (never on the thread count or on
//!   runtime timing), so the floating-point grouping of every partial
//!   result is invariant.
//! * **Per-chunk / per-worker scratch** — each worker owns its scratch
//!   buffers; nothing scratch-dependent leaks into results.
//! * **Ordered reduction** — per-chunk results are returned (and must be
//!   folded) in chunk order, regardless of which thread computed them or
//!   when it finished.
//!
//! Under this contract `RDP_THREADS=1` and `RDP_THREADS=64` produce
//! bit-identical outputs; the single-thread path is a plain inline loop
//! over the same chunks (an exact serial fallback with zero spawn cost).
//!
//! Workers are spawned per parallel region with [`std::thread::scope`],
//! which is what keeps the crate free of `unsafe` while still borrowing
//! the caller's data. The spawn cost (a few µs per worker) is amortized
//! over kernel-sized regions — per-net wirelength fan-outs, per-cell
//! density binning, DCT passes — not per item.
//!
//! ```
//! use rdp_par::Pool;
//!
//! let pool = Pool::new(4);
//! // Ordered chunked sum: bit-identical for any thread count.
//! let parts = pool.map_chunks(1000, 64, |_chunk, range| {
//!     range.map(|i| i as f64).sum::<f64>()
//! });
//! let total: f64 = parts.into_iter().sum();
//! assert_eq!(total, 499_500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fastexp;
mod pool;

pub use fastexp::fast_exp;
pub use pool::{chunk_len, global_threads, set_global_threads, with_local_threads, Pool};
