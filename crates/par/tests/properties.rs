//! Property tests of the deterministic pool contract: full coverage
//! (every item visited exactly once), chunk-order invariance across
//! thread counts, and panic propagation out of parallel regions.

use rdp_par::Pool;
use rdp_testkit::{prop_assert, prop_check, range, PropConfig};

#[test]
fn every_item_visited_exactly_once() {
    prop_check!(
        PropConfig::cases(64),
        (range(0usize..5000), range(1usize..257), range(1usize..9)),
        |(n, chunk, threads): (usize, usize, usize)| {
            let mut seen = vec![0u8; n];
            Pool::new(threads).for_chunks_mut(
                &mut seen,
                chunk,
                || (),
                |(), _, _, slice| {
                    for v in slice.iter_mut() {
                        *v += 1;
                    }
                },
            );
            prop_assert!(seen.iter().all(|&c| c == 1), "coverage gap or overlap");
            Ok(())
        }
    );
}

#[test]
fn map_chunks_covers_input_in_order() {
    prop_check!(
        PropConfig::cases(64),
        (range(0usize..5000), range(1usize..257), range(1usize..9)),
        |(n, chunk, threads): (usize, usize, usize)| {
            let ranges = Pool::new(threads).map_chunks(n, chunk, |_, r| r);
            let mut next = 0usize;
            for r in &ranges {
                prop_assert!(r.start == next, "chunk out of order or gapped");
                prop_assert!(r.end > r.start || n == 0, "empty chunk");
                next = r.end;
            }
            prop_assert!(next == n, "input not fully covered");
            Ok(())
        }
    );
}

#[test]
fn chunked_reduction_is_thread_count_invariant() {
    prop_check!(
        PropConfig::cases(48),
        (range(1usize..3000), range(1usize..129), range(2usize..9)),
        |(n, chunk, threads): (usize, usize, usize)| {
            let data: Vec<f64> = (0..n)
                .map(|i| (((i * 2654435761) % 1000) as f64 - 500.0) * 1e-3)
                .collect();
            let sum = |t: usize| -> f64 {
                Pool::new(t)
                    .map_chunks(n, chunk, |_, r| data[r].iter().sum::<f64>())
                    .into_iter()
                    .sum()
            };
            prop_assert!(
                sum(1).to_bits() == sum(threads).to_bits(),
                "reduction differs between 1 and {threads} threads"
            );
            Ok(())
        }
    );
}

#[test]
fn panic_in_any_chunk_propagates() {
    prop_check!(
        PropConfig::cases(16),
        (range(1usize..64), range(1usize..9)),
        |(bad_chunk, threads): (usize, usize)| {
            let result = std::panic::catch_unwind(|| {
                Pool::new(threads).map_chunks(64 * 4, 4, |ci, _| {
                    assert!(ci != bad_chunk, "deliberate failure");
                    ci
                });
            });
            prop_assert!(result.is_err(), "panic was swallowed");
            Ok(())
        }
    );
}

#[test]
fn nested_parallel_regions_compose() {
    prop_check!(
        PropConfig::cases(16),
        (range(1usize..5), range(1usize..5)),
        |(outer_threads, inner_threads): (usize, usize)| {
            let out = Pool::new(outer_threads).map_chunks(16, 4, |_, range| {
                Pool::new(inner_threads)
                    .map_chunks(range.len(), 1, |_, r| r.len())
                    .into_iter()
                    .sum::<usize>()
            });
            prop_assert!(out == vec![4, 4, 4, 4], "nested totals wrong: {out:?}");
            Ok(())
        }
    );
}
