//! Property-style tests for rdp-obs: histogram edge cases, span nesting and
//! drop order, ring bounding, threaded recording under an rdp-par pool, and
//! exporter well-formedness.

use rdp_obs::{
    export_chrome_trace, export_jsonl, export_metrics_json, json, stage_rows,
    validate_chrome_trace, validate_trace_jsonl, Collector, Event, Histogram, NO_ITER,
};
use rdp_par::Pool;

#[test]
fn histogram_zero_subnormal_inf_edges() {
    let mut h = Histogram::default();
    h.observe(0.0);
    h.observe(-0.0);
    assert_eq!(h.zeros, 2);

    // Smallest positive subnormal and a mid-range subnormal.
    h.observe(5e-324);
    h.observe(f64::MIN_POSITIVE / 2.0);
    // Normal boundary values.
    h.observe(f64::MIN_POSITIVE);
    h.observe(f64::MAX);
    h.observe(1.0);

    // Non-finite inputs (these are what rdp-guard sentinels catch in the
    // flow; the histogram must tolerate them without poisoning sum/min/max).
    h.observe(f64::INFINITY);
    h.observe(f64::NEG_INFINITY);
    h.observe(f64::NAN);

    assert_eq!(h.count, 10);
    assert_eq!(h.non_finite, 3);
    assert!(h.consistent(), "count must equal non_finite+zeros+buckets");
    assert!(h.sum.is_finite());
    assert_eq!(h.max, f64::MAX);
    assert_eq!(h.min, 0.0);
}

#[test]
fn histogram_negative_magnitudes_bucket_by_abs() {
    let mut h = Histogram::default();
    h.observe(-8.0);
    h.observe(8.0);
    assert_eq!(h.negatives, 1);
    let nonzero: Vec<usize> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(nonzero.len(), 1, "both land in the |8| = 2^3 bucket");
    assert_eq!(h.buckets[nonzero[0]], 2);
}

#[test]
fn histogram_powers_of_two_span_distinct_buckets() {
    let mut h = Histogram::default();
    let mut v = 1.0_f64;
    for _ in 0..20 {
        h.observe(v);
        v *= 2.0;
    }
    let nonzero = h.buckets.iter().filter(|c| **c > 0).count();
    assert_eq!(nonzero, 20, "each power of two gets its own log-2 bucket");
    assert!(h.consistent());
}

#[test]
fn span_nesting_and_drop_order_across_pool_threads() {
    // Emulate RDP_THREADS=4: spans opened on pool worker threads must
    // record with distinct thread ids and still close inner-before-outer.
    let col = Collector::enabled();
    let pool = Pool::new(4);
    {
        let _outer = col.span("outer", "test");
        let per_chunk: Vec<u64> = pool.map_chunks(64, 16, |ci, range| {
            let _worker = col.span_iter("worker_chunk", "test", ci as i64);
            let _inner = col.span("worker_inner", "test");
            range.end as u64
        });
        assert_eq!(per_chunk.len(), 4);
    }

    col.with_snapshot(|events, _, dropped| {
        assert_eq!(dropped, 0);
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span {
                    name,
                    tid,
                    start_ns,
                    dur_ns,
                    ..
                } => Some((*name, *tid, *start_ns, *dur_ns)),
                _ => None,
            })
            .collect();
        // 1 outer + 4 chunks * 2 spans each.
        assert_eq!(spans.len(), 9);
        // The outer span is recorded last (drop order) and contains all others.
        let (name, _, outer_start, outer_dur) = spans[spans.len() - 1];
        assert_eq!(name, "outer");
        for (n, _, s, d) in &spans[..spans.len() - 1] {
            assert!(*s >= outer_start, "{n} starts inside outer");
            assert!(s + d <= outer_start + outer_dur, "{n} ends inside outer");
        }
        // Each worker_inner must be recorded before (and contained in) its
        // chunk's worker_chunk span on the same thread.
        for w in spans.iter().filter(|s| s.0 == "worker_inner") {
            let owner = spans
                .iter()
                .filter(|s| s.0 == "worker_chunk" && s.1 == w.1 && s.2 <= w.2)
                .max_by_key(|s| s.2)
                .expect("inner span has an enclosing chunk span on its thread");
            assert!(w.2 + w.3 <= owner.2 + owner.3);
        }
    })
    .unwrap();
}

#[test]
fn ring_bounds_memory_and_counts_drops() {
    let col = Collector::with_capacity(8);
    for i in 0..20 {
        let _s = col.span_iter("tick", "test", i);
    }
    assert_eq!(col.event_count(), 8);
    assert_eq!(col.dropped_events(), 12);

    // Exports stay valid after wrap-around, and the meta line reports drops.
    let summary = validate_trace_jsonl(&export_jsonl(&col)).unwrap();
    assert_eq!(summary.spans, 8);
    assert_eq!(summary.dropped, 12);
    // The surviving events are the newest iterations.
    col.with_snapshot(|events, _, _| {
        let iters: Vec<i64> = events
            .iter()
            .map(|e| match e {
                Event::Span { iter, .. } => *iter,
                Event::Instant { iter, .. } => *iter,
            })
            .collect();
        assert_eq!(iters, (12..20).collect::<Vec<i64>>());
    })
    .unwrap();
}

#[test]
fn exporters_survive_hostile_strings() {
    let col = Collector::enabled();
    col.instant(
        "guard_warning",
        3,
        "quote \" backslash \\ newline \n tab \t unicode λ₁",
    );
    let jsonl = export_jsonl(&col);
    let summary = validate_trace_jsonl(&jsonl).unwrap();
    assert_eq!(summary.guard_warnings, 1);
    validate_chrome_trace(&export_chrome_trace(&col)).unwrap();

    // The detail string round-trips exactly through escape + parse.
    let first = jsonl.lines().next().unwrap();
    let v = json::parse(first).unwrap();
    assert_eq!(
        v.get("detail").unwrap().as_str().unwrap(),
        "quote \" backslash \\ newline \n tab \t unicode λ₁"
    );
}

#[test]
fn metrics_export_is_deterministic_and_non_finite_safe() {
    let build = || {
        let c = Collector::enabled();
        // Insert in one order...
        c.gauge_set("z_last", f64::INFINITY);
        c.gauge_set("a_first", 1.0);
        c.counter_add("beta", 2);
        c.counter_add("alpha", 1);
        c.observe("h", f64::NAN);
        c.observe("h", 2.0);
        c.series_push("s", 0, 1.0);
        c
    };
    let build_rev = || {
        let c = Collector::enabled();
        // ...and the reverse order; exports must match byte-for-byte.
        c.series_push("s", 0, 1.0);
        c.observe("h", 2.0);
        c.observe("h", f64::NAN);
        c.counter_add("alpha", 1);
        c.counter_add("beta", 2);
        c.gauge_set("a_first", 1.0);
        c.gauge_set("z_last", f64::INFINITY);
        c
    };
    let a = export_metrics_json(&build());
    let b = export_metrics_json(&build_rev());
    assert_eq!(a, b);
    // Non-finite gauge serializes as null, keeping the document parseable.
    let v = json::parse(&a).unwrap();
    assert_eq!(
        v.get("gauges").unwrap().get("z_last"),
        Some(&json::Value::Null)
    );
    let h = v.get("histograms").unwrap().get("h").unwrap();
    assert_eq!(h.get("non_finite").unwrap().as_f64(), Some(1.0));
}

#[test]
fn stage_rows_aggregate_across_threads() {
    let col = Collector::enabled();
    let pool = Pool::new(4);
    pool.map_chunks(32, 8, |ci, _| {
        let _s = col.span("kernel", "test");
        ci
    });
    let rows = stage_rows(&col);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "kernel");
    assert_eq!(rows[0].calls, 4);
    assert!(rows[0].mean_ns <= rows[0].total_ns);
}

#[test]
fn disabled_collector_is_inert_under_threads() {
    let col = Collector::disabled();
    let pool = Pool::new(4);
    pool.map_chunks(32, 8, |ci, _| {
        let _s = col.span_iter("kernel", "test", NO_ITER);
        col.observe("h", ci as f64);
        ci
    });
    assert_eq!(col.event_count(), 0);
    assert_eq!(export_jsonl(&col), "");
    assert_eq!(export_metrics_json(&col), "{}\n");
}
