//! Minimal JSON parser used only to *validate* exporter output.
//!
//! The exporters write JSON by hand; this parser closes the loop so CI can
//! check the emitted files are well-formed without an external dependency.
//! It accepts standard JSON (RFC 8259) minus surrogate-pair escapes, which
//! the exporters never produce.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as JSON: finite values via Rust's shortest round-trip
/// formatting, non-finite as null (JSON has no Inf/NaN).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!` never produces exponent-only forms JSON rejects, but
        // bare "inf"/"NaN" are impossible here by the is_finite guard.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\ny");
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64().unwrap(), -300.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }
}
