//! Metrics registry: counters, gauges, log-2 histograms, and per-step series.
//!
//! All maps are `BTreeMap` so exports are byte-for-byte deterministic
//! regardless of insertion order or thread interleaving. Values recorded
//! here describe the computation; they never feed back into it.

use std::collections::BTreeMap;

/// Number of log-2 magnitude buckets. Bucket `i` covers exponents
/// `i - EXP_OFFSET`, i.e. magnitudes in `[2^(i-64), 2^(i-63))`, with the
/// extremes clamped. This spans ~1e-19 .. ~9e18, far wider than any
/// physical quantity in the flow.
pub const HIST_BUCKETS: usize = 128;
const EXP_OFFSET: i32 = 64;

/// Fixed-bucket log-2 histogram over `|value|`.
///
/// Invariant: `count == non_finite + zeros + sum(buckets)`. Negative finite
/// values are bucketed by magnitude and also tallied in `negatives`;
/// subnormals land in the minimum bucket; NaN/±Inf are counted but excluded
/// from `sum`/`min`/`max`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub zeros: u64,
    pub negatives: u64,
    pub non_finite: u64,
    /// Sum over finite observations only.
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            zeros: 0,
            negatives: 0,
            non_finite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

/// Bucket index for a finite non-zero magnitude: the IEEE-754 exponent
/// clamped into the bucket range. Subnormals (biased exponent 0) map to
/// bucket 0.
fn bucket_index(magnitude: f64) -> usize {
    let bits = magnitude.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        return 0; // subnormal: below 2^-1022, well under the minimum bucket
    }
    let exp = biased - 1023;
    (exp + EXP_OFFSET).clamp(0, HIST_BUCKETS as i32 - 1) as usize
}

impl Histogram {
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if !value.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        if value == 0.0 {
            self.zeros += 1;
            return;
        }
        if value.is_sign_negative() {
            self.negatives += 1;
        }
        self.buckets[bucket_index(value.abs())] += 1;
    }

    /// Check the structural invariant (used by tests and the validator).
    pub fn consistent(&self) -> bool {
        let bucketed: u64 = self.buckets.iter().sum();
        self.count == self.non_finite + self.zeros + bucketed
    }
}

/// Registry of named metrics. One per [`crate::Collector`]; guarded by the
/// collector's mutex, so the methods here are plain `&mut self`.
#[derive(Debug, Default)]
pub struct Registry {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, f64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Append-only `(step, value)` sequences, e.g. HPWL per routability
    /// iteration. Steps are supplied by the caller, not derived from time.
    pub series: BTreeMap<&'static str, Vec<(u64, f64)>>,
}

impl Registry {
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    pub fn series_push(&mut self, name: &'static str, step: u64, value: f64) {
        self.series.entry(name).or_default().push((step, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_buckets() {
        assert_eq!(bucket_index(1.0), EXP_OFFSET as usize);
        assert_eq!(bucket_index(2.0), EXP_OFFSET as usize + 1);
        assert_eq!(bucket_index(0.5), EXP_OFFSET as usize - 1);
        assert_eq!(bucket_index(3.9), EXP_OFFSET as usize + 1);
        // Clamped extremes.
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 4.0), 0);
    }

    #[test]
    fn histogram_invariant_under_edge_inputs() {
        let mut h = Histogram::default();
        for v in [
            0.0,
            -0.0,
            5e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -3.5,
            1e300,
            1e-300,
        ] {
            h.observe(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.zeros, 2);
        assert_eq!(h.non_finite, 3);
        assert_eq!(h.negatives, 1);
        assert!(h.consistent());
        assert_eq!(h.min, -3.5);
        assert_eq!(h.max, 1e300);
    }
}
