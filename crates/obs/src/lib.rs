//! # rdp-obs — zero-dependency observability for the placement flow
//!
//! Three pieces, mirroring the `rdp-par`/`rdp-guard` style (std-only, no
//! external crates):
//!
//! 1. **Spans** ([`Collector::span`]): RAII guards that time a region with
//!    the monotonic clock and record it into a bounded ring buffer. Guards
//!    are thread-aware (each OS thread gets a small stable id) so traces
//!    from `rdp-par` worker pools render as separate tracks.
//! 2. **Metrics** ([`Collector::counter_add`] / [`Collector::gauge_set`] /
//!    [`Collector::observe`] / [`Collector::series_push`]): counters,
//!    gauges, fixed log-2-bucket histograms, and per-iteration convergence
//!    series (HPWL, overflow, λ₁/λ₂, γ, inflation, …).
//! 3. **Frames** ([`Collector::frame`]): downsampled 2-D field snapshots
//!    (routed congestion, bin density) captured once per routability
//!    iteration under a fixed byte budget — the raw material for the
//!    per-iteration heatmaps in `rdp-report` HTML reports.
//! 4. **Exporters** ([`export`]): JSON-lines event log, Chrome
//!    `trace_event` JSON for chrome://tracing / Perfetto, a metrics JSON
//!    dump (series, histograms, frames), and a human-readable per-stage
//!    time table.
//!
//! ## Determinism contract
//!
//! Observability must never change results. Two rules enforce that:
//!
//! - **Timestamps never feed computation.** The collector only *records*;
//!   nothing in the flow reads a duration or clock back out of it. The
//!   only consumers of timing data are the exporters, which run after the
//!   flow finishes.
//! - **Disabled is (almost) free.** A [`Collector`] is an
//!   `Option<Arc<...>>`; when disabled every call is a single `is_none()`
//!   branch and no guard state is created, so production runs pay a few
//!   nanoseconds per span site and results are bitwise identical with
//!   tracing on or off at any `RDP_THREADS`.
//!
//! Memory is bounded: events land in a fixed-capacity ring (oldest evicted,
//! drops counted), metrics are aggregates.

mod export;
mod frame;
mod metrics;
mod ring;

pub mod json;

pub use export::{
    export_chrome_trace, export_jsonl, export_metrics_json, stage_rows, stage_table,
    validate_chrome_trace, validate_trace_jsonl, StageRow, TraceSummary,
};
pub use frame::{downsample, Frame, DEFAULT_FRAME_BUDGET, FRAME_MAX_DIM};
pub use metrics::{Histogram, Registry, HIST_BUCKETS};
pub use ring::Ring;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default event-ring capacity for [`Collector::enabled`]. At ~100 bytes an
/// event this bounds trace memory to a few tens of MB on a full run.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 18;

/// Sentinel for "no iteration" on spans/instants outside the routability loop.
pub const NO_ITER: i64 = -1;

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Small, stable per-OS-thread id (assigned on first trace activity).
fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A timed region, recorded when its [`SpanGuard`] drops.
    Span {
        name: &'static str,
        cat: &'static str,
        tid: u64,
        start_ns: u64,
        dur_ns: u64,
        /// Routability iteration, or [`NO_ITER`].
        iter: i64,
    },
    /// A point-in-time occurrence (guard warning, rollback, checkpoint).
    Instant {
        name: &'static str,
        detail: String,
        tid: u64,
        ts_ns: u64,
        iter: i64,
    },
}

/// Drop accounting across every bounded store in the collector. Ring
/// eviction used to be visible only as one aggregate number; the per-kind
/// breakdown makes a truncated trace diagnosable (losing spans skews the
/// stage table, losing instants hides warnings — different failures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Total events evicted from the ring.
    pub events: u64,
    /// Evicted events that were spans.
    pub spans: u64,
    /// Evicted events that were instants.
    pub instants: u64,
    /// Frames evicted by the frame byte budget.
    pub frames: u64,
}

impl DropStats {
    /// Whether anything at all was dropped.
    pub fn any(&self) -> bool {
        self.events > 0 || self.frames > 0
    }
}

/// An incremental read from [`Collector::since`]: the events pushed after a
/// sequence cursor, plus the cursor bounds needed to continue the read.
///
/// Events are numbered `1..=high_seq` in push order (the numbering never
/// changes as the ring wraps). A poller keeps the last `high_seq` it saw and
/// passes it back as `seq`; `first_seq > seq + 1` means the ring evicted
/// events in the gap — the poller fell behind and lost `first_seq - seq - 1`
/// events, but the stream stays consistent from `first_seq` on.
#[derive(Debug, Clone, PartialEq)]
pub struct EventsSince {
    /// Sequence number of `events[0]` (meaningless when `events` is empty).
    pub first_seq: u64,
    /// The events after the cursor, oldest-first.
    pub events: Vec<Event>,
    /// Sequence number of the newest event ever pushed; pass this back as
    /// the next cursor.
    pub high_seq: u64,
}

#[derive(Debug)]
struct State {
    events: Ring<Event>,
    /// Evicted-event breakdown (ring counts the total).
    dropped_spans: u64,
    dropped_instants: u64,
    metrics: Registry,
    frames: Vec<Frame>,
    frames_bytes: usize,
    frame_budget: usize,
    dropped_frames: u64,
    /// Recycled buffer from the last budget-evicted frame; the capture
    /// path downsamples into it instead of allocating per iteration.
    frame_spare: Vec<f64>,
}

impl State {
    /// Push into the ring, classifying any evicted event.
    fn push_event(&mut self, ev: Event) {
        match self.events.push(ev) {
            Some(Event::Span { .. }) => self.dropped_spans += 1,
            Some(Event::Instant { .. }) => self.dropped_instants += 1,
            None => {}
        }
    }
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    state: Mutex<State>,
}

/// Handle to an event/metrics sink. Cheap to clone (an `Arc`); the default
/// handle is *disabled* and records nothing.
#[derive(Debug, Clone, Default)]
pub struct Collector(Option<Arc<Inner>>);

impl Collector {
    /// A collector that records nothing; every call is a single branch.
    pub fn disabled() -> Self {
        Collector(None)
    }

    /// An enabled collector with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled collector holding at most `event_capacity` events.
    pub fn with_capacity(event_capacity: usize) -> Self {
        Self::with_capacity_and_frame_budget(event_capacity, DEFAULT_FRAME_BUDGET)
    }

    /// An enabled collector with explicit event capacity and frame byte
    /// budget (frames are evicted oldest-first past the budget).
    pub fn with_capacity_and_frame_budget(event_capacity: usize, frame_budget: usize) -> Self {
        Collector(Some(Arc::new(Inner {
            start: Instant::now(),
            state: Mutex::new(State {
                events: Ring::new(event_capacity),
                dropped_spans: 0,
                dropped_instants: 0,
                metrics: Registry::default(),
                frames: Vec::new(),
                frames_bytes: 0,
                frame_budget: frame_budget.max(1),
                dropped_frames: 0,
                frame_spare: Vec::new(),
            }),
        })))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn now_ns(inner: &Inner) -> u64 {
        inner.start.elapsed().as_nanos() as u64
    }

    /// Time a region until the returned guard drops. `cat` groups spans in
    /// trace viewers ("gp", "route", "flow", …).
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard {
        self.span_iter(name, cat, NO_ITER)
    }

    /// Like [`Collector::span`], tagged with a routability iteration.
    pub fn span_iter(&self, name: &'static str, cat: &'static str, iter: i64) -> SpanGuard {
        match &self.0 {
            None => SpanGuard(None),
            Some(inner) => SpanGuard(Some(ActiveSpan {
                inner: Arc::clone(inner),
                name,
                cat,
                iter,
                tid: thread_id(),
                start_ns: Self::now_ns(inner),
            })),
        }
    }

    /// Record a point event (warning, rollback, checkpoint, …).
    pub fn instant(&self, name: &'static str, iter: i64, detail: impl Into<String>) {
        if let Some(inner) = &self.0 {
            let ev = Event::Instant {
                name,
                detail: detail.into(),
                tid: thread_id(),
                ts_ns: Self::now_ns(inner),
                iter,
            };
            inner.state.lock().unwrap().push_event(ev);
        }
    }

    /// Capture a 2-D field snapshot (e.g. the routed congestion map at a
    /// routability iteration). `data` is row-major `ny × nx`; it is
    /// box-averaged down to at most [`FRAME_MAX_DIM`] per axis *before*
    /// the collector lock is taken, and retained frames are bounded by the
    /// frame byte budget (oldest evicted, drops counted). Recording only —
    /// nothing in the flow ever reads a frame back.
    pub fn frame(&self, name: &'static str, iter: i64, nx: usize, ny: usize, data: &[f64]) {
        if let Some(inner) = &self.0 {
            // Downsample outside the lock, into the recycled buffer from
            // the last evicted frame (if any) to avoid a per-iteration
            // allocation on long flows.
            let mut buf = std::mem::take(&mut inner.state.lock().unwrap().frame_spare);
            let (dnx, dny) = frame::downsample_into(nx, ny, data, &mut buf);
            let frame = Frame {
                name,
                iter,
                nx: dnx,
                ny: dny,
                data: buf,
            };
            let bytes = frame.byte_size();
            let mut state = inner.state.lock().unwrap();
            state.frames.push(frame);
            state.frames_bytes += bytes;
            while state.frames_bytes > state.frame_budget && state.frames.len() > 1 {
                let evicted = state.frames.remove(0);
                state.frames_bytes -= evicted.byte_size();
                state.dropped_frames += 1;
                if evicted.data.capacity() > state.frame_spare.capacity() {
                    state.frame_spare = evicted.data;
                    state.frame_spare.clear();
                }
            }
        }
    }

    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.0 {
            inner.state.lock().unwrap().metrics.counter_add(name, delta);
        }
    }

    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.state.lock().unwrap().metrics.gauge_set(name, value);
        }
    }

    /// Add an observation to the named log-2 histogram.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.state.lock().unwrap().metrics.observe(name, value);
        }
    }

    /// Append `(step, value)` to the named convergence series.
    pub fn series_push(&self, name: &'static str, step: u64, value: f64) {
        if let Some(inner) = &self.0 {
            inner
                .state
                .lock()
                .unwrap()
                .metrics
                .series_push(name, step, value);
        }
    }

    /// Number of events evicted from the ring so far (0 when disabled).
    pub fn dropped_events(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(inner) => inner.state.lock().unwrap().events.dropped(),
        }
    }

    /// Number of events currently held (0 when disabled).
    pub fn event_count(&self) -> usize {
        match &self.0 {
            None => 0,
            Some(inner) => inner.state.lock().unwrap().events.len(),
        }
    }

    /// Number of frames currently held (0 when disabled).
    pub fn frame_count(&self) -> usize {
        match &self.0 {
            None => 0,
            Some(inner) => inner.state.lock().unwrap().frames.len(),
        }
    }

    /// Per-kind drop accounting (all zero when disabled).
    pub fn drop_stats(&self) -> DropStats {
        match &self.0 {
            None => DropStats::default(),
            Some(inner) => {
                let state = inner.state.lock().unwrap();
                DropStats {
                    events: state.events.dropped(),
                    spans: state.dropped_spans,
                    instants: state.dropped_instants,
                    frames: state.dropped_frames,
                }
            }
        }
    }

    /// Run `f` over a snapshot of `(events-oldest-first, metrics)`. Used by
    /// the exporters; returns `None` when disabled.
    ///
    /// This clones the **entire** event ring (up to the ring capacity) per
    /// call. That is the right trade for one-shot exporters at end of run,
    /// but a poller reading a long-lived collector repeatedly should use
    /// [`Collector::since`] (incremental, copies only new events) or
    /// [`Collector::with_metrics`] (aggregates only, no ring copy at all).
    pub fn with_snapshot<R>(&self, f: impl FnOnce(&[Event], &Registry, u64) -> R) -> Option<R> {
        let inner = self.0.as_ref()?;
        let state = inner.state.lock().unwrap();
        let events: Vec<Event> = state.events.iter().cloned().collect();
        let dropped = state.events.dropped();
        Some(f(&events, &state.metrics, dropped))
    }

    /// Incremental event read: clone only the events pushed after sequence
    /// cursor `seq` (see [`EventsSince`] for the numbering and gap
    /// detection). `since(0)` reads everything still retained. Returns
    /// `None` when disabled.
    ///
    /// Unlike [`Collector::with_snapshot`] the cost is proportional to the
    /// *new* events since the last poll, not the ring size, so a `watch`
    /// poller hitting a long-lived collector every few milliseconds stays
    /// cheap.
    pub fn since(&self, seq: u64) -> Option<EventsSince> {
        let inner = self.0.as_ref()?;
        let state = inner.state.lock().unwrap();
        let events: Vec<Event> = state.events.iter_since(seq).cloned().collect();
        let high_seq = state.events.pushed();
        let first_seq = high_seq - events.len() as u64 + 1;
        Some(EventsSince {
            first_seq,
            events,
            high_seq,
        })
    }

    /// Run `f` over the metrics registry alone — counters, gauges,
    /// histograms, series — without cloning the event ring. Returns `None`
    /// when disabled. This is the cheap read for live telemetry (`stats`
    /// snapshots, series tails); recording calls on other threads block
    /// only for the duration of `f`.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        let inner = self.0.as_ref()?;
        let state = inner.state.lock().unwrap();
        Some(f(&state.metrics))
    }

    /// Run `f` over the captured frames (oldest-first) and the dropped
    /// frame count; returns `None` when disabled.
    pub fn with_frames<R>(&self, f: impl FnOnce(&[Frame], u64) -> R) -> Option<R> {
        let inner = self.0.as_ref()?;
        let state = inner.state.lock().unwrap();
        Some(f(&state.frames, state.dropped_frames))
    }
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    cat: &'static str,
    iter: i64,
    tid: u64,
    start_ns: u64,
}

/// RAII span: records a [`Event::Span`] covering its lifetime when dropped.
#[derive(Debug)]
#[must_use = "a span guard times the region until it is dropped"]
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let end_ns = Collector::now_ns(&s.inner);
            let ev = Event::Span {
                name: s.name,
                cat: s.cat,
                tid: s.tid,
                start_ns: s.start_ns,
                dur_ns: end_ns.saturating_sub(s.start_ns),
                iter: s.iter,
            };
            s.inner.state.lock().unwrap().push_event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::disabled();
        {
            let _g = c.span("x", "test");
            c.instant("i", NO_ITER, "d");
            c.counter_add("n", 1);
            c.observe("h", 1.0);
            c.series_push("s", 0, 1.0);
            c.frame("f", NO_ITER, 2, 2, &[1.0, 2.0, 3.0, 4.0]);
        }
        assert!(!c.is_enabled());
        assert_eq!(c.event_count(), 0);
        assert_eq!(c.frame_count(), 0);
        assert_eq!(c.drop_stats(), DropStats::default());
        assert!(c.with_snapshot(|_, _, _| ()).is_none());
        assert!(c.with_frames(|_, _| ()).is_none());
    }

    #[test]
    fn frames_are_captured_and_downsampled() {
        let c = Collector::enabled();
        let big: Vec<f64> = vec![1.5; 100 * 100];
        c.frame("congestion", 1, 100, 100, &big);
        c.frame("congestion", 2, 10, 10, &vec![0.5; 100]);
        c.with_frames(|frames, dropped| {
            assert_eq!(dropped, 0);
            assert_eq!(frames.len(), 2);
            assert_eq!((frames[0].nx, frames[0].ny), (48, 48));
            assert!(frames[0].data.iter().all(|&v| (v - 1.5).abs() < 1e-12));
            assert_eq!((frames[1].nx, frames[1].ny), (10, 10));
            assert_eq!(frames[1].iter, 2);
        })
        .unwrap();
    }

    #[test]
    fn frame_budget_evicts_oldest_and_counts_drops() {
        // Budget for roughly two 10×10 frames (800 B data + struct each).
        let c = Collector::with_capacity_and_frame_budget(64, 2 * 900);
        for i in 0..5 {
            c.frame("congestion", i, 10, 10, &vec![i as f64; 100]);
        }
        let stats = c.drop_stats();
        assert!(stats.frames > 0, "budget never evicted: {stats:?}");
        assert!(stats.any());
        c.with_frames(|frames, dropped| {
            assert_eq!(dropped, stats.frames);
            // Newest frames survive.
            assert_eq!(frames.last().unwrap().iter, 4);
            let held: usize = frames.iter().map(Frame::byte_size).sum();
            assert!(held <= 2 * 900, "held {held} bytes over budget");
        })
        .unwrap();
    }

    #[test]
    fn ring_overflow_classifies_dropped_kinds() {
        let c = Collector::with_capacity(4);
        for _ in 0..3 {
            let _g = c.span("s", "test");
        }
        for _ in 0..4 {
            c.instant("i", NO_ITER, "d");
        }
        let stats = c.drop_stats();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.spans + stats.instants, stats.events);
        assert_eq!(stats.spans, 3); // the three oldest events were spans
        assert_eq!(c.event_count(), 4);
    }

    #[test]
    fn span_drop_order_is_inner_first() {
        let c = Collector::enabled();
        {
            let _outer = c.span("outer", "test");
            {
                let _inner = c.span("inner", "test");
            }
        }
        c.with_snapshot(|events, _, _| {
            let names: Vec<&str> = events
                .iter()
                .map(|e| match e {
                    Event::Span { name, .. } => *name,
                    Event::Instant { name, .. } => *name,
                })
                .collect();
            assert_eq!(names, vec!["inner", "outer"]);
            // The outer span must fully contain the inner one.
            if let (
                Event::Span {
                    start_ns: is_,
                    dur_ns: id,
                    ..
                },
                Event::Span {
                    start_ns: os,
                    dur_ns: od,
                    ..
                },
            ) = (&events[0], &events[1])
            {
                assert!(os <= is_);
                assert!(os + od >= is_ + id);
            } else {
                panic!("expected two spans");
            }
        })
        .unwrap();
    }

    #[test]
    fn since_reads_incrementally_and_flags_gaps() {
        let c = Collector::with_capacity(4);
        assert!(Collector::disabled().since(0).is_none());
        c.instant("a", NO_ITER, "");
        c.instant("b", NO_ITER, "");
        let first = c.since(0).unwrap();
        assert_eq!(first.events.len(), 2);
        assert_eq!((first.first_seq, first.high_seq), (1, 2));
        // Nothing new: empty delta, cursor unchanged.
        let idle = c.since(first.high_seq).unwrap();
        assert!(idle.events.is_empty());
        assert_eq!(idle.high_seq, 2);
        // Overflow the ring: events 1..=3 evicted, 4..=7 retained.
        for _ in 0..5 {
            c.instant("c", NO_ITER, "");
        }
        let delta = c.since(first.high_seq).unwrap();
        assert_eq!(delta.high_seq, 7);
        assert_eq!(delta.events.len(), 4);
        // Cursor was 2, but the oldest survivor is 4: a one-event gap.
        assert_eq!(delta.first_seq, 4);
        assert!(delta.first_seq > first.high_seq + 1);
    }

    #[test]
    fn with_metrics_reads_registry_without_events() {
        let c = Collector::enabled();
        c.counter_add("jobs", 3);
        c.series_push("hpwl", 1, 42.0);
        let (jobs, pts) = c
            .with_metrics(|m| (m.counters["jobs"], m.series["hpwl"].len()))
            .unwrap();
        assert_eq!((jobs, pts), (3, 1));
        assert!(Collector::disabled().with_metrics(|_| ()).is_none());
    }

    #[test]
    fn metrics_accumulate() {
        let c = Collector::enabled();
        c.counter_add("batches", 2);
        c.counter_add("batches", 3);
        c.gauge_set("gamma", 4.0);
        c.gauge_set("gamma", 2.0);
        c.series_push("hpwl", 0, 10.0);
        c.series_push("hpwl", 1, 9.0);
        c.with_snapshot(|_, m, _| {
            assert_eq!(m.counters["batches"], 5);
            assert_eq!(m.gauges["gamma"], 2.0);
            assert_eq!(m.series["hpwl"], vec![(0, 10.0), (1, 9.0)]);
        })
        .unwrap();
    }
}
