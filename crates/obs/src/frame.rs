//! Congestion-frame capture: downsampled 2-D field snapshots per
//! routability iteration.
//!
//! The routability literature's primary diagnostic artifact is the
//! per-iteration congestion heatmap; a full `Map2d` per iteration would be
//! unbounded memory on a long run, so [`Collector::frame`] box-averages the
//! field down to at most [`FRAME_MAX_DIM`] cells per axis and the registry
//! holds frames under a fixed byte budget ([`DEFAULT_FRAME_BUDGET`]),
//! evicting the oldest frame (and counting the drop) once the budget is
//! exceeded — the same overwrite-oldest discipline as the event ring.
//!
//! [`Collector::frame`]: crate::Collector::frame

/// Maximum frame extent per axis after downsampling. 48×48×8 B ≈ 18 KiB
/// per frame keeps a 10-iteration run with two frame kinds under 400 KiB.
pub const FRAME_MAX_DIM: usize = 48;

/// Default byte budget for retained frames (~2 MiB ≈ 110 worst-case
/// frames), far above any realistic flow but a hard ceiling nonetheless.
pub const DEFAULT_FRAME_BUDGET: usize = 2 << 20;

/// One captured 2-D field snapshot (already downsampled).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the field is ("congestion", "density", …).
    pub name: &'static str,
    /// Routability iteration the snapshot belongs to, or
    /// [`crate::NO_ITER`].
    pub iter: i64,
    /// Downsampled columns.
    pub nx: usize,
    /// Downsampled rows.
    pub ny: usize,
    /// Row-major values, `ny * nx` long.
    pub data: Vec<f64>,
}

impl Frame {
    /// Approximate heap footprint, used against the frame budget.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Frame>()
    }
}

/// Box-average `data` (row-major `ny × nx`) down to at most
/// [`FRAME_MAX_DIM`] cells per axis. Fields at or under the limit are
/// copied verbatim. Averaging is performed in deterministic row-major
/// order, so the capture is byte-stable run to run on equal input.
pub fn downsample(nx: usize, ny: usize, data: &[f64]) -> (usize, usize, Vec<f64>) {
    let mut out = Vec::new();
    let (onx, ony) = downsample_into(nx, ny, data, &mut out);
    (onx, ony, out)
}

/// [`downsample`] into a caller-owned buffer, so the per-iteration capture
/// path can recycle frame allocations instead of allocating a fresh `Vec`
/// every routability iteration. `out` is cleared and refilled; its capacity
/// is reused. Returns the downsampled `(nx, ny)`.
pub fn downsample_into(nx: usize, ny: usize, data: &[f64], out: &mut Vec<f64>) -> (usize, usize) {
    assert_eq!(data.len(), nx * ny, "frame buffer length mismatch");
    out.clear();
    if nx <= FRAME_MAX_DIM && ny <= FRAME_MAX_DIM {
        out.extend_from_slice(data);
        return (nx, ny);
    }
    let onx = nx.min(FRAME_MAX_DIM);
    let ony = ny.min(FRAME_MAX_DIM);
    out.resize(onx * ony, 0.0);
    for oy in 0..ony {
        // Input row band [y0, y1) mapping to output row oy.
        let y0 = oy * ny / ony;
        let y1 = ((oy + 1) * ny / ony).max(y0 + 1);
        for ox in 0..onx {
            let x0 = ox * nx / onx;
            let x1 = ((ox + 1) * nx / onx).max(x0 + 1);
            let mut acc = 0.0;
            for y in y0..y1 {
                for x in x0..x1 {
                    acc += data[y * nx + x];
                }
            }
            out[oy * onx + ox] = acc / ((y1 - y0) * (x1 - x0)) as f64;
        }
    }
    (onx, ony)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fields_pass_through() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let (nx, ny, out) = downsample(4, 3, &data);
        assert_eq!((nx, ny), (4, 3));
        assert_eq!(out, data);
    }

    #[test]
    fn downsample_preserves_mean() {
        // 96×96 → 48×48 with uniform 2×2 boxes: overall mean is exact.
        let n = 96;
        let data: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
        let (nx, ny, out) = downsample(n, n, &data);
        assert_eq!((nx, ny), (48, 48));
        let mean_in: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let mean_out: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn non_divisible_dims_cover_every_input_cell() {
        // 50×50 → 48×48: bands are 1 or 2 cells wide; a constant field
        // must stay exactly constant.
        let n = 50;
        let data = vec![3.25f64; n * n];
        let (nx, ny, out) = downsample(n, n, &data);
        assert_eq!((nx, ny), (48, 48));
        assert!(out.iter().all(|&v| v == 3.25));
    }

    #[test]
    fn rectangular_fields_downsample_each_axis_independently() {
        let (nx, ny, out) = downsample(100, 10, &vec![1.0; 1000]);
        assert_eq!((nx, ny), (48, 10));
        assert_eq!(out.len(), 480);
    }
}
