//! Bounded ring buffer for trace events.
//!
//! The collector must never grow without bound during a long flow, so events
//! land in a fixed-capacity ring: once full, the oldest event is overwritten
//! and a drop counter is bumped. Exports walk the ring oldest-first.

/// Fixed-capacity overwrite-oldest ring buffer.
#[derive(Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    /// Total number of elements overwritten (dropped) so far.
    dropped: u64,
}

impl<T> Ring<T> {
    /// Create a ring holding at most `cap` elements. `cap` is clamped to at
    /// least 1 so pushes always succeed.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            buf: Vec::new(),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Number of elements currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total elements evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append an element, evicting the oldest when at capacity. Returns
    /// the evicted element so the caller can account for *what* was
    /// dropped (span vs instant), not just that something was.
    pub fn push(&mut self, value: T) -> Option<T> {
        if self.buf.len() < self.cap {
            self.buf.push(value);
            None
        } else {
            let evicted = std::mem::replace(&mut self.buf[self.head], value);
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
            Some(evicted)
        }
    }

    /// Iterate oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Total elements ever pushed (`dropped + len`). Elements are
    /// implicitly numbered `1..=pushed()` in push order, which gives
    /// callers a stable cursor: an element's sequence number never
    /// changes, even as the ring wraps.
    pub fn pushed(&self) -> u64 {
        self.dropped + self.buf.len() as u64
    }

    /// Iterate, oldest-to-newest, over the elements with sequence number
    /// greater than `seq` (see [`Ring::pushed`] for the numbering). When
    /// `seq` predates the oldest retained element the iterator simply
    /// starts at the oldest — the gap is detectable by the caller as
    /// `dropped() > seq`.
    pub fn iter_since(&self, seq: u64) -> impl Iterator<Item = &T> {
        let skip = seq.saturating_sub(self.dropped).min(self.buf.len() as u64) as usize;
        self.iter().skip(skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = Ring::new(3);
        let mut evicted = Vec::new();
        for i in 0..5 {
            if let Some(old) = r.push(i) {
                evicted.push(old);
            }
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, vec![2, 3, 4]);
        // The evicted elements are exactly the oldest ones, in order.
        assert_eq!(evicted, vec![0, 1]);
    }

    #[test]
    fn ring_below_capacity_preserves_order() {
        let mut r = Ring::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.dropped(), 0);
        let got: Vec<&str> = r.iter().copied().collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn iter_since_resumes_at_a_cursor() {
        let mut r = Ring::new(3);
        assert_eq!(r.pushed(), 0);
        for i in 1..=5 {
            r.push(i);
        }
        // Elements 1..=5 pushed; 1 and 2 evicted, so the ring holds 3..=5.
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.iter_since(0).copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(r.iter_since(3).copied().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(r.iter_since(4).copied().collect::<Vec<_>>(), vec![5]);
        assert_eq!(r.iter_since(5).count(), 0);
        // A cursor past the end yields nothing rather than wrapping.
        assert_eq!(r.iter_since(100).count(), 0);
        // A cursor inside the evicted prefix starts at the oldest survivor.
        assert_eq!(r.iter_since(1).copied().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
    }
}
