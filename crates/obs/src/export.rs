//! Exporters: JSON-lines event log, Chrome `trace_event` JSON, metrics JSON,
//! and the human-readable per-stage time table — plus the tiny validators CI
//! uses to check the emitted files.
//!
//! All output is produced from a snapshot of the collector after the flow
//! has finished; ordering is deterministic (ring order for events, BTreeMap
//! order for metrics), though the timestamp *values* naturally vary run to
//! run.

use crate::json::{self, Value};
use crate::{Collector, Event};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

fn iter_json(iter: i64) -> String {
    if iter < 0 {
        "null".to_string()
    } else {
        iter.to_string()
    }
}

/// JSON-lines event log: one object per line. Span lines carry
/// `type,name,cat,tid,ts_ns,dur_ns,iter`; instant lines carry
/// `type,name,detail,tid,ts_ns,iter`; a final `meta` line carries totals.
pub fn export_jsonl(col: &Collector) -> String {
    let drops = col.drop_stats();
    col.with_snapshot(|events, _, dropped| {
        let mut out = String::new();
        for ev in events {
            match ev {
                Event::Span {
                    name,
                    cat,
                    tid,
                    start_ns,
                    dur_ns,
                    iter,
                } => {
                    let _ = writeln!(
                        out,
                        r#"{{"type":"span","name":"{}","cat":"{}","tid":{},"ts_ns":{},"dur_ns":{},"iter":{}}}"#,
                        json::escape(name),
                        json::escape(cat),
                        tid,
                        start_ns,
                        dur_ns,
                        iter_json(*iter)
                    );
                }
                Event::Instant {
                    name,
                    detail,
                    tid,
                    ts_ns,
                    iter,
                } => {
                    let _ = writeln!(
                        out,
                        r#"{{"type":"instant","name":"{}","detail":"{}","tid":{},"ts_ns":{},"iter":{}}}"#,
                        json::escape(name),
                        json::escape(detail),
                        tid,
                        ts_ns,
                        iter_json(*iter)
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            r#"{{"type":"meta","events":{},"dropped":{},"dropped_spans":{},"dropped_instants":{},"dropped_frames":{}}}"#,
            events.len(),
            dropped,
            drops.spans,
            drops.instants,
            drops.frames
        );
        out
    })
    .unwrap_or_default()
}

/// Chrome `trace_event` JSON (load in chrome://tracing or
/// <https://ui.perfetto.dev>). Spans become `ph:"X"` complete events,
/// instants become `ph:"i"` thread-scoped instant events; `ts`/`dur` are
/// microseconds as the format requires.
pub fn export_chrome_trace(col: &Collector) -> String {
    col.with_snapshot(|events, _, dropped| {
        let mut parts: Vec<String> = Vec::with_capacity(events.len() + 1);
        for ev in events {
            match ev {
                Event::Span {
                    name,
                    cat,
                    tid,
                    start_ns,
                    dur_ns,
                    iter,
                } => {
                    let args = if *iter >= 0 {
                        format!(r#","args":{{"iter":{iter}}}"#)
                    } else {
                        String::new()
                    };
                    parts.push(format!(
                        r#"{{"ph":"X","pid":1,"tid":{},"name":"{}","cat":"{}","ts":{},"dur":{}{}}}"#,
                        tid,
                        json::escape(name),
                        json::escape(cat),
                        json::num(*start_ns as f64 / 1000.0),
                        json::num(*dur_ns as f64 / 1000.0),
                        args
                    ));
                }
                Event::Instant {
                    name,
                    detail,
                    tid,
                    ts_ns,
                    iter,
                } => {
                    let iter_arg = if *iter >= 0 {
                        format!(r#","iter":{iter}"#)
                    } else {
                        String::new()
                    };
                    parts.push(format!(
                        r#"{{"ph":"i","s":"t","pid":1,"tid":{},"name":"{}","cat":"event","ts":{},"args":{{"detail":"{}"{}}}}}"#,
                        tid,
                        json::escape(name),
                        json::num(*ts_ns as f64 / 1000.0),
                        json::escape(detail),
                        iter_arg
                    ));
                }
            }
        }
        parts.push(format!(
            r#"{{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{{"name":"rdp ({} events, {} dropped)"}}}}"#,
            events.len(),
            dropped
        ));
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            parts.join(",\n")
        )
    })
    .unwrap_or_else(|| "{\"traceEvents\":[]}\n".to_string())
}

/// Metrics registry as a single JSON document: counters, gauges, histograms
/// (sparse log-2 buckets keyed by exponent), convergence series, captured
/// congestion/density frames, and the dropped-event/frame counts.
pub fn export_metrics_json(col: &Collector) -> String {
    let frames_json = col
        .with_frames(|frames, _| {
            let rendered: Vec<String> = frames
                .iter()
                .map(|f| {
                    let vals: Vec<String> = f.data.iter().map(|v| json::num(*v)).collect();
                    format!(
                        "    {{\"name\": \"{}\", \"iter\": {}, \"nx\": {}, \"ny\": {}, \"data\": [{}]}}",
                        json::escape(f.name),
                        f.iter,
                        f.nx,
                        f.ny,
                        vals.join(", ")
                    )
                })
                .collect();
            rendered.join(",\n")
        })
        .unwrap_or_default();
    let drops = col.drop_stats();
    col.with_snapshot(|_, metrics, dropped| {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"dropped_events\": {dropped},");
        let _ = writeln!(out, "  \"dropped_frames\": {},", drops.frames);

        out.push_str("  \"counters\": {");
        let counters: Vec<String> = metrics
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json::escape(k), v))
            .collect();
        out.push_str(&counters.join(", "));
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        let gauges: Vec<String> = metrics
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json::escape(k), json::num(*v)))
            .collect();
        out.push_str(&gauges.join(", "));
        out.push_str("},\n");

        out.push_str("  \"histograms\": {\n");
        let hists: Vec<String> = metrics
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| format!("\"{}\": {}", i as i64 - 64, c))
                    .collect();
                format!(
                    "    \"{}\": {{\"count\": {}, \"zeros\": {}, \"negatives\": {}, \"non_finite\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"log2_buckets\": {{{}}}}}",
                    json::escape(k),
                    h.count,
                    h.zeros,
                    h.negatives,
                    h.non_finite,
                    json::num(h.sum),
                    json::num(h.min),
                    json::num(h.max),
                    buckets.join(", ")
                )
            })
            .collect();
        out.push_str(&hists.join(",\n"));
        out.push_str("\n  },\n");

        out.push_str("  \"series\": {\n");
        let series: Vec<String> = metrics
            .series
            .iter()
            .map(|(k, points)| {
                let pts: Vec<String> = points
                    .iter()
                    .map(|(step, v)| format!("[{}, {}]", step, json::num(*v)))
                    .collect();
                format!("    \"{}\": [{}]", json::escape(k), pts.join(", "))
            })
            .collect();
        out.push_str(&series.join(",\n"));
        out.push_str("\n  },\n");

        out.push_str("  \"frames\": [\n");
        out.push_str(&frames_json);
        out.push_str("\n  ]\n}\n");
        out
    })
    .unwrap_or_else(|| "{}\n".to_string())
}

/// One row of the per-stage time table: spans aggregated by name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    pub name: String,
    pub calls: u64,
    pub total_ns: u64,
    pub mean_ns: u64,
    pub pct_of_wall: f64,
}

/// Aggregate spans by name into rows sorted by total time (descending).
/// Wall time is the latest span end seen; nested spans mean percentages can
/// legitimately sum past 100.
pub fn stage_rows(col: &Collector) -> Vec<StageRow> {
    col.with_snapshot(|events, _, _| {
        let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut wall_ns: u64 = 0;
        for ev in events {
            if let Event::Span {
                name,
                start_ns,
                dur_ns,
                ..
            } = ev
            {
                let e = agg.entry(name).or_insert((0, 0));
                e.0 += 1;
                e.1 += dur_ns;
                wall_ns = wall_ns.max(start_ns + dur_ns);
            }
        }
        let mut rows: Vec<StageRow> = agg
            .into_iter()
            .map(|(name, (calls, total_ns))| StageRow {
                name: name.to_string(),
                calls,
                total_ns,
                mean_ns: total_ns / calls.max(1),
                pct_of_wall: if wall_ns > 0 {
                    100.0 * total_ns as f64 / wall_ns as f64
                } else {
                    0.0
                },
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        rows
    })
    .unwrap_or_default()
}

/// Human-readable per-stage table for end-of-run CLI output.
pub fn stage_table(col: &Collector) -> String {
    let rows = stage_rows(col);
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>8}",
            "stage", "calls", "total_ms", "mean_us", "%wall"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12.3} {:>12.1} {:>8.1}",
                r.name,
                r.calls,
                r.total_ns as f64 / 1e6,
                r.mean_ns as f64 / 1e3,
                r.pct_of_wall
            );
        }
    }
    let drops = col.drop_stats();
    if drops.any() {
        let _ = writeln!(
            out,
            "(warning: ring buffer dropped {} events: {} spans, {} instants; {} frames evicted — stage totals above are incomplete)",
            drops.events, drops.spans, drops.instants, drops.frames
        );
    }
    out
}

/// Summary returned by [`validate_trace_jsonl`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    pub spans: u64,
    pub instants: u64,
    /// Distinct span names seen.
    pub span_names: BTreeSet<String>,
    /// Instant events named `guard_warning`.
    pub guard_warnings: u64,
    /// Instant events named `rollback`.
    pub rollbacks: u64,
    /// Dropped-event count from the trailing meta line.
    pub dropped: u64,
    /// Dropped span events (from the optional meta breakdown).
    pub dropped_spans: u64,
    /// Dropped instant events (from the optional meta breakdown).
    pub dropped_instants: u64,
    /// Dropped congestion/density frames (from the optional meta breakdown).
    pub dropped_frames: u64,
}

fn field_num(obj: &Value, key: &str, line_no: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field \"{key}\""))
}

fn field_str<'v>(obj: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string field \"{key}\""))
}

/// Validate a JSONL trace produced by [`export_jsonl`]: every line must be a
/// well-formed JSON object of a known `type` carrying its required fields,
/// ending with exactly one `meta` line.
pub fn validate_trace_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut saw_meta = false;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if saw_meta {
            return Err(format!("line {line_no}: content after meta line"));
        }
        let v = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let ty = field_str(&v, "type", line_no)?;
        match ty {
            "span" => {
                let name = field_str(&v, "name", line_no)?;
                field_str(&v, "cat", line_no)?;
                field_num(&v, "tid", line_no)?;
                let ts = field_num(&v, "ts_ns", line_no)?;
                let dur = field_num(&v, "dur_ns", line_no)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("line {line_no}: negative span timing"));
                }
                summary.spans += 1;
                summary.span_names.insert(name.to_string());
            }
            "instant" => {
                let name = field_str(&v, "name", line_no)?;
                field_str(&v, "detail", line_no)?;
                field_num(&v, "tid", line_no)?;
                field_num(&v, "ts_ns", line_no)?;
                summary.instants += 1;
                match name {
                    "guard_warning" => summary.guard_warnings += 1,
                    "rollback" => summary.rollbacks += 1,
                    _ => {}
                }
            }
            "meta" => {
                let events = field_num(&v, "events", line_no)? as u64;
                summary.dropped = field_num(&v, "dropped", line_no)? as u64;
                // Drop breakdown is optional (older traces omit it) but must
                // reconcile with the total when present.
                let opt = |key: &str| v.get(key).and_then(Value::as_f64).map(|n| n as u64);
                summary.dropped_spans = opt("dropped_spans").unwrap_or(0);
                summary.dropped_instants = opt("dropped_instants").unwrap_or(0);
                summary.dropped_frames = opt("dropped_frames").unwrap_or(0);
                if opt("dropped_spans").is_some()
                    && summary.dropped_spans + summary.dropped_instants != summary.dropped
                {
                    return Err(format!(
                        "line {line_no}: drop breakdown {} + {} does not equal dropped {}",
                        summary.dropped_spans, summary.dropped_instants, summary.dropped
                    ));
                }
                let recorded = summary.spans + summary.instants;
                if events != recorded {
                    return Err(format!(
                        "line {line_no}: meta says {events} events but {recorded} lines precede"
                    ));
                }
                saw_meta = true;
            }
            other => return Err(format!("line {line_no}: unknown event type \"{other}\"")),
        }
    }
    if !saw_meta {
        return Err("missing trailing meta line".to_string());
    }
    Ok(summary)
}

/// Validate a Chrome trace produced by [`export_chrome_trace`]; returns the
/// number of trace events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    ev.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("event {i}: missing numeric {key}"))?;
                }
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: missing name"))?;
            }
            "i" => {
                ev.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected ph \"{other}\"")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collector() -> Collector {
        let c = Collector::enabled();
        {
            let _route = c.span_iter("route", "route", 0);
            let _gp = c.span_iter("gp_step", "gp", 0);
        }
        c.instant("guard_warning", 1, "router congestion non-finite");
        c.instant("rollback", 2, "divergence");
        c.counter_add("route_batches", 7);
        c.gauge_set("gamma", 1.5);
        c.observe("wa_grad", 0.25);
        c.series_push("hpwl", 0, 123.0);
        c
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let c = sample_collector();
        let text = export_jsonl(&c);
        let summary = validate_trace_jsonl(&text).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 2);
        assert_eq!(summary.guard_warnings, 1);
        assert_eq!(summary.rollbacks, 1);
        assert!(summary.span_names.contains("gp_step"));
        assert!(summary.span_names.contains("route"));
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let c = sample_collector();
        let text = export_chrome_trace(&c);
        let n = validate_chrome_trace(&text).unwrap();
        assert_eq!(n, 5); // 2 spans + 2 instants + metadata
    }

    #[test]
    fn metrics_json_parses_and_carries_values() {
        let c = sample_collector();
        let text = export_metrics_json(&c);
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("route_batches")
                .unwrap()
                .as_f64()
                .unwrap(),
            7.0
        );
        assert_eq!(
            v.get("gauges").unwrap().get("gamma").unwrap().as_f64(),
            Some(1.5)
        );
        let hist = v.get("histograms").unwrap().get("wa_grad").unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(1.0));
        let series = v
            .get("series")
            .unwrap()
            .get("hpwl")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(series.len(), 1);
    }

    #[test]
    fn stage_table_lists_spans() {
        let c = sample_collector();
        {
            let _x = c.span("gp_step", "gp");
        }
        let rows = stage_rows(&c);
        let gp = rows.iter().find(|r| r.name == "gp_step").unwrap();
        assert_eq!(gp.calls, 2);
        let table = stage_table(&c);
        assert!(
            table.contains("stage") && table.contains("gp_step"),
            "{table}"
        );
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_trace_jsonl("not json\n").is_err());
        assert!(validate_trace_jsonl("{\"type\":\"span\"}\n").is_err());
        assert!(validate_trace_jsonl("").is_err());
        // meta count mismatch: claims 5 events but none precede it
        let bad = "{\"type\":\"meta\",\"events\":5,\"dropped\":0}\n";
        assert!(validate_trace_jsonl(bad).is_err());
    }

    #[test]
    fn metrics_json_carries_frames() {
        let c = sample_collector();
        c.frame("congestion", 3, 2, 2, &[0.5, 1.0, 1.5, 2.0]);
        let text = export_metrics_json(&c);
        let v = json::parse(&text).unwrap();
        let frames = v.get("frames").unwrap().as_arr().unwrap();
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!(f.get("name").unwrap().as_str(), Some("congestion"));
        assert_eq!(f.get("iter").unwrap().as_f64(), Some(3.0));
        assert_eq!(f.get("nx").unwrap().as_f64(), Some(2.0));
        assert_eq!(f.get("data").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn metrics_json_without_frames_has_empty_array() {
        let c = sample_collector();
        let v = json::parse(&export_metrics_json(&c)).unwrap();
        assert!(v.get("frames").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn meta_line_carries_drop_breakdown() {
        let c = Collector::with_capacity(2);
        {
            let _a = c.span("gp_step", "gp");
        }
        c.instant("guard_warning", 0, "w1");
        c.instant("rollback", 1, "r1"); // evicts the span
        c.instant("note", 2, "n1"); // evicts the first instant
        let text = export_jsonl(&c);
        let summary = validate_trace_jsonl(&text).unwrap();
        assert_eq!(summary.dropped, 2);
        assert_eq!(summary.dropped_spans, 1);
        assert_eq!(summary.dropped_instants, 1);
        let table = stage_table(&c);
        assert!(table.contains("warning"), "{table}");
        assert!(table.contains("1 spans, 1 instants"), "{table}");
    }

    #[test]
    fn validator_rejects_inconsistent_drop_breakdown() {
        let bad = "{\"type\":\"meta\",\"events\":0,\"dropped\":3,\"dropped_spans\":1,\"dropped_instants\":1,\"dropped_frames\":0}\n";
        let err = validate_trace_jsonl(bad).unwrap_err();
        assert!(err.contains("breakdown"), "{err}");
    }

    #[test]
    fn disabled_collector_exports_are_empty_but_valid() {
        let c = Collector::disabled();
        assert_eq!(export_jsonl(&c), "");
        assert!(validate_chrome_trace(&export_chrome_trace(&c)).is_ok());
        assert_eq!(export_metrics_json(&c), "{}\n");
        assert!(stage_rows(&c).is_empty());
    }
}
