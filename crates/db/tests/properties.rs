//! Property tests for the design-database substrates: geometry
//! primitives and [`Map2d`] invariants (rdp-testkit harness).

use rdp_db::{Map2d, Point, Rect};
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, PropConfig};

fn arb_rect() -> impl rdp_testkit::Gen<Value = (f64, f64, f64, f64)> {
    (
        range(-50.0f64..50.0),
        range(-50.0f64..50.0),
        range(0.0f64..80.0),
        range(0.0f64..80.0),
    )
}

/// Rect accessors are mutually consistent: area = w·h, the center is
/// contained (for non-degenerate rects), and `contains` agrees with
/// `clamp_point` being the identity.
#[test]
fn rect_accessors_consistent() {
    prop_check!(PropConfig::cases(128), arb_rect(), |(x0, y0, w, h): (
        f64,
        f64,
        f64,
        f64
    )| {
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        prop_assert!((r.width() - w).abs() < 1e-9);
        prop_assert!((r.height() - h).abs() < 1e-9);
        prop_assert!((r.area() - w * h).abs() < 1e-6);
        let c = r.center();
        prop_assert!(r.contains(c));
        let clamped = r.clamp_point(c);
        prop_assert!((clamped.x - c.x).abs() < 1e-12 && (clamped.y - c.y).abs() < 1e-12);
        Ok(())
    });
}

/// `clamp_point` always lands inside the rect and is idempotent.
#[test]
fn rect_clamp_is_idempotent_projection() {
    prop_check!(
        PropConfig::cases(128),
        (arb_rect(), range(-200.0f64..200.0), range(-200.0f64..200.0)),
        |((x0, y0, w, h), px, py): ((f64, f64, f64, f64), f64, f64)| {
            let r = Rect::new(x0, y0, x0 + w, y0 + h);
            let p = r.clamp_point(Point::new(px, py));
            prop_assert!(r.contains(p), "clamped {} outside {}", p, r);
            let q = r.clamp_point(p);
            prop_assert_eq!(p.x, q.x);
            prop_assert_eq!(p.y, q.y);
            // Clamping an inside point is the identity.
            if r.contains(Point::new(px, py)) {
                prop_assert_eq!(p.x, px);
                prop_assert_eq!(p.y, py);
            }
            Ok(())
        }
    );
}

/// Overlap area is symmetric, bounded by each rect's area, and zero iff
/// the rects do not intersect with positive area.
#[test]
fn rect_overlap_symmetry_and_bounds() {
    prop_check!(
        PropConfig::cases(128),
        (arb_rect(), arb_rect()),
        |((ax, ay, aw, ah), (bx, by, bw, bh)): ((f64, f64, f64, f64), (f64, f64, f64, f64))| {
            let a = Rect::new(ax, ay, ax + aw, ay + ah);
            let b = Rect::new(bx, by, bx + bw, by + bh);
            let ab = a.overlap_area(&b);
            let ba = b.overlap_area(&a);
            prop_assert!((ab - ba).abs() < 1e-9, "asymmetric overlap {ab} vs {ba}");
            prop_assert!(ab >= 0.0);
            prop_assert!(ab <= a.area() + 1e-9);
            prop_assert!(ab <= b.area() + 1e-9);
            // Union contains both.
            let u = a.union(&b);
            prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
            prop_assert!(u.overlap_area(&a) >= a.area() - 1e-9);
            prop_assert!(u.overlap_area(&b) >= b.area() - 1e-9);
            Ok(())
        }
    );
}

/// Point algebra: distance symmetry, triangle inequality with the
/// origin, and scaling linearity of the norm.
#[test]
fn point_metric_properties() {
    prop_check!(
        PropConfig::cases(128),
        (
            range(-100.0f64..100.0),
            range(-100.0f64..100.0),
            range(-100.0f64..100.0),
            range(-100.0f64..100.0),
            range(-4.0f64..4.0),
        ),
        |(ax, ay, bx, by, s): (f64, f64, f64, f64, f64)| {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
            prop_assert!(a.distance(b) <= a.norm() + b.norm() + 1e-9);
            prop_assert!((a.scale(s).norm() - s.abs() * a.norm()).abs() < 1e-6);
            if let Some(n) = a.normalized() {
                prop_assert!((n.norm() - 1.0).abs() < 1e-9);
            }
            Ok(())
        }
    );
}

/// Map2d round-trips its buffer, preserves row-major layout under
/// `iter_coords`, and its scalar reductions agree with direct
/// computation over the buffer.
#[test]
fn map2d_layout_and_reductions() {
    prop_check!(
        PropConfig::cases(128),
        (range(1usize..12), range(1usize..12), range(0u64..1 << 32)),
        |(nx, ny, seed): (usize, usize, u64)| {
            let mut rng = rdp_testkit::Rng::new(seed);
            let data: Vec<f64> = (0..nx * ny)
                .map(|_| rng.gen_range(-10.0f64..10.0))
                .collect();
            let m = Map2d::from_vec(nx, ny, data.clone());
            prop_assert_eq!(m.nx(), nx);
            prop_assert_eq!(m.ny(), ny);
            prop_assert_eq!(m.len(), nx * ny);

            // Row-major identity: (ix, iy) ↔ iy*nx + ix.
            for (ix, iy, &v) in m.iter_coords() {
                prop_assert_eq!(v, data[iy * nx + ix]);
                prop_assert_eq!(v, m[(ix, iy)]);
                prop_assert_eq!(Some(v), m.get(ix, iy).copied());
            }
            // Out-of-bounds access is rejected.
            prop_assert!(m.get(nx, 0).is_none());
            prop_assert!(m.get(0, ny).is_none());

            // Reductions agree with the raw buffer.
            let sum: f64 = data.iter().sum();
            prop_assert!((m.sum() - sum).abs() < 1e-9);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(m.max(), max);
            prop_assert_eq!(m.min(), min);
            prop_assert!((m.mean() - sum / (nx * ny) as f64).abs() < 1e-9);
            prop_assert!(m.min() <= m.mean() && m.mean() <= m.max());

            // Round trip.
            prop_assert_eq!(m.clone().into_vec(), data);
            Ok(())
        }
    );
}

/// Map2d arithmetic: add then scale matches element-wise reference;
/// `count_above` is monotone in the threshold; `clear` zeroes.
#[test]
fn map2d_arithmetic_invariants() {
    prop_check!(
        PropConfig::cases(128),
        (
            range(1usize..10),
            range(1usize..10),
            range(-5.0f64..5.0),
            range(0u64..1 << 32),
        ),
        |(nx, ny, s, seed): (usize, usize, f64, u64)| {
            let mut rng = rdp_testkit::Rng::new(seed);
            let a: Vec<f64> = (0..nx * ny)
                .map(|_| rng.gen_range(-10.0f64..10.0))
                .collect();
            let b: Vec<f64> = (0..nx * ny)
                .map(|_| rng.gen_range(-10.0f64..10.0))
                .collect();
            let mut m = Map2d::from_vec(nx, ny, a.clone());
            m.add_assign_map(&Map2d::from_vec(nx, ny, b.clone()));
            m.scale_in_place(s);
            for i in 0..nx * ny {
                let expect = (a[i] + b[i]) * s;
                prop_assert!((m.as_slice()[i] - expect).abs() < 1e-9);
            }
            // count_above is antitone in the threshold.
            let lo = m.count_above(-100.0);
            let mid = m.count_above(0.0);
            let hi = m.count_above(100.0);
            prop_assert!(lo >= mid && mid >= hi);
            prop_assert_eq!(lo, nx * ny);
            prop_assert_eq!(hi, 0);

            let mut c = m.clone();
            c.clear();
            prop_assert_eq!(c.sum(), 0.0);
            prop_assert_eq!(c.len(), m.len());
            Ok(())
        }
    );
}
