//! Summary statistics for a design, used by reports and the benchmark
//! generator's self-checks.

use crate::design::Design;
use crate::netlist::CellKind;
use std::fmt;

/// Aggregate statistics of a [`Design`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// Design name.
    pub name: String,
    /// Total number of cells (movable + fixed).
    pub num_cells: usize,
    /// Number of movable cells.
    pub num_movable: usize,
    /// Number of fixed macro blocks.
    pub num_macros: usize,
    /// Number of terminals.
    pub num_terminals: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Number of pins.
    pub num_pins: usize,
    /// Number of two-pin nets (eligible for virtual-cell net moving).
    pub num_two_pin_nets: usize,
    /// Average net degree.
    pub avg_net_degree: f64,
    /// Movable-area / free-area utilization.
    pub utilization: f64,
    /// Current total HPWL.
    pub hpwl: f64,
}

impl DesignStats {
    /// Computes statistics for a design.
    pub fn of(design: &Design) -> Self {
        let num_macros = design
            .cells()
            .iter()
            .filter(|c| c.kind == CellKind::Macro)
            .count();
        let num_terminals = design
            .cells()
            .iter()
            .filter(|c| c.kind == CellKind::Terminal)
            .count();
        let num_two_pin = design.nets().iter().filter(|n| n.is_two_pin()).count();
        let avg_deg = if design.num_nets() == 0 {
            0.0
        } else {
            design.num_pins() as f64 / design.num_nets() as f64
        };
        DesignStats {
            name: design.name().to_string(),
            num_cells: design.num_cells(),
            num_movable: design.movable_cells().count(),
            num_macros,
            num_terminals,
            num_nets: design.num_nets(),
            num_pins: design.num_pins(),
            num_two_pin_nets: num_two_pin,
            avg_net_degree: avg_deg,
            utilization: design.utilization(),
            hpwl: design.hpwl(),
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design `{}`:", self.name)?;
        writeln!(
            f,
            "  cells: {} ({} movable, {} macros, {} terminals)",
            self.num_cells, self.num_movable, self.num_macros, self.num_terminals
        )?;
        writeln!(
            f,
            "  nets: {} ({} two-pin, avg degree {:.2}), pins: {}",
            self.num_nets, self.num_two_pin_nets, self.avg_net_degree, self.num_pins
        )?;
        write!(
            f,
            "  utilization: {:.1}%, HPWL: {:.1} um",
            self.utilization * 100.0,
            self.hpwl
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignBuilder;
    use crate::geom::{Point, Rect};
    use crate::netlist::Cell;
    use crate::RoutingSpec;

    #[test]
    fn stats_of_small_design() {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(1.0, 1.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(9.0, 9.0));
        let t = b.add_cell(Cell::terminal("io"), Point::new(0.0, 5.0));
        b.add_net("n0", vec![(a, Point::default()), (c, Point::default())]);
        b.add_net(
            "n1",
            vec![
                (a, Point::default()),
                (c, Point::default()),
                (t, Point::default()),
            ],
        );
        b.routing(RoutingSpec::uniform(2, 1.0, 2, 2));
        let d = b.build().unwrap();
        let s = DesignStats::of(&d);
        assert_eq!(s.num_cells, 3);
        assert_eq!(s.num_movable, 2);
        assert_eq!(s.num_terminals, 1);
        assert_eq!(s.num_two_pin_nets, 1);
        assert!((s.avg_net_degree - 2.5).abs() < 1e-12);
        let shown = format!("{s}");
        assert!(shown.contains("design `s`"));
        assert!(shown.contains("two-pin"));
    }
}
