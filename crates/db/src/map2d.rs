//! Dense 2-D maps over a uniform grid.
//!
//! [`Map2d`] is the common currency between the router (demand / capacity /
//! congestion maps), the Poisson solver (charge density, potential, field),
//! and the placer (bin densities). Storage is row-major: index
//! `(ix, iy) → iy * nx + ix` where `ix ∈ [0, nx)` runs along x.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `nx × ny` grid of values.
#[derive(Clone, PartialEq)]
pub struct Map2d<T> {
    nx: usize,
    ny: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Map2d<T> {
    /// Creates a map filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "Map2d dimensions must be positive");
        Map2d {
            nx,
            ny,
            data: vec![T::default(); nx * ny],
        }
    }

    /// Creates a map filled with copies of `value`.
    pub fn filled(nx: usize, ny: usize, value: T) -> Self {
        assert!(nx > 0 && ny > 0, "Map2d dimensions must be positive");
        Map2d {
            nx,
            ny,
            data: vec![value; nx * ny],
        }
    }

    /// Resets every element to `T::default()`.
    pub fn clear(&mut self) {
        self.data.fill(T::default());
    }
}

impl<T> Map2d<T> {
    /// Builds a map from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nx * ny`.
    pub fn from_vec(nx: usize, ny: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), nx * ny, "buffer length mismatch");
        Map2d { nx, ny, data }
    }

    /// Number of columns (extent in x).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows (extent in y).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map has no elements (never true: dimensions are positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the map and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Bounds-checked access.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> Option<&T> {
        if ix < self.nx && iy < self.ny {
            Some(&self.data[iy * self.nx + ix])
        } else {
            None
        }
    }

    /// Bounds-checked mutable access.
    #[inline]
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> Option<&mut T> {
        if ix < self.nx && iy < self.ny {
            Some(&mut self.data[iy * self.nx + ix])
        } else {
            None
        }
    }

    /// Iterates over `(ix, iy, &value)` in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let nx = self.nx;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % nx, i / nx, v))
    }

    /// Row `iy` as a contiguous slice (the fast path for row sweeps —
    /// no per-element index arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `iy >= ny`.
    #[inline]
    pub fn row(&self, iy: usize) -> &[T] {
        &self.data[iy * self.nx..(iy + 1) * self.nx]
    }

    /// Mutable row `iy` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `iy >= ny`.
    #[inline]
    pub fn row_mut(&mut self, iy: usize) -> &mut [T] {
        &mut self.data[iy * self.nx..(iy + 1) * self.nx]
    }

    /// Iterates over rows bottom-up (`iy = 0` first), each a contiguous
    /// slice of length `nx`.
    pub fn rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.nx)
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }
}

/// Fixed accumulator lane width for the `Map2d<f64>` reductions: four
/// independent partials folded in a fixed pairwise order, so the
/// operation sequence depends only on the element count (thread-count
/// invariant by construction) while LLVM gets a clean `f64x4` reduction.
/// Changing this changes last-bit sums and requires a bench re-baseline
/// (DESIGN.md §11).
const LANES: usize = 4;

impl Map2d<f64> {
    /// Sum of all elements (fixed-width lane reduction; see [`LANES`]).
    pub fn sum(&self) -> f64 {
        let mut acc = [0.0f64; LANES];
        let mut chunks = self.data.chunks_exact(LANES);
        for c in &mut chunks {
            for l in 0..LANES {
                acc[l] += c[l];
            }
        }
        for (l, &x) in chunks.remainder().iter().enumerate() {
            acc[l] += x;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// Maximum element (`-inf` is impossible: maps are non-empty).
    pub fn max(&self) -> f64 {
        let mut acc = [f64::NEG_INFINITY; LANES];
        let mut chunks = self.data.chunks_exact(LANES);
        for c in &mut chunks {
            for l in 0..LANES {
                acc[l] = acc[l].max(c[l]);
            }
        }
        for (l, &x) in chunks.remainder().iter().enumerate() {
            acc[l] = acc[l].max(x);
        }
        (acc[0].max(acc[1])).max(acc[2].max(acc[3]))
    }

    /// Minimum element.
    pub fn min(&self) -> f64 {
        let mut acc = [f64::INFINITY; LANES];
        let mut chunks = self.data.chunks_exact(LANES);
        for c in &mut chunks {
            for l in 0..LANES {
                acc[l] = acc[l].min(c[l]);
            }
        }
        for (l, &x) in chunks.remainder().iter().enumerate() {
            acc[l] = acc[l].min(x);
        }
        (acc[0].min(acc[1])).min(acc[2].min(acc[3]))
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Adds `other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign_map(&mut self, other: &Map2d<f64>) {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Count of elements strictly greater than `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data.iter().filter(|&&v| v > threshold).count()
    }

    /// Renders a coarse ASCII heat map (darker character = larger value),
    /// top row printed first. Intended for the figure harness binaries.
    pub fn ascii_heatmap(&self, max_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let step_x = (self.nx + max_cols - 1) / max_cols;
        let step_y = step_x;
        let hi = self.max().max(1e-12);
        let mut out = String::new();
        let mut iy = self.ny;
        while iy > 0 {
            let y0 = iy.saturating_sub(step_y);
            for x0 in (0..self.nx).step_by(step_x) {
                let mut acc: f64 = 0.0;
                let mut cnt = 0usize;
                for yy in y0..iy {
                    for xx in x0..(x0 + step_x).min(self.nx) {
                        acc += self.data[yy * self.nx + xx];
                        cnt += 1;
                    }
                }
                let v = if cnt == 0 { 0.0 } else { acc / cnt as f64 };
                let idx = ((v / hi) * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
            iy = y0;
        }
        out
    }
}

impl<T> Index<(usize, usize)> for Map2d<T> {
    type Output = T;
    #[inline]
    fn index(&self, (ix, iy): (usize, usize)) -> &T {
        debug_assert!(ix < self.nx && iy < self.ny, "Map2d index out of bounds");
        &self.data[iy * self.nx + ix]
    }
}

impl<T> IndexMut<(usize, usize)> for Map2d<T> {
    #[inline]
    fn index_mut(&mut self, (ix, iy): (usize, usize)) -> &mut T {
        debug_assert!(ix < self.nx && iy < self.ny, "Map2d index out of bounds");
        &mut self.data[iy * self.nx + ix]
    }
}

impl<T: fmt::Debug> fmt::Debug for Map2d<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Map2d<{}x{}>", self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_row_major() {
        let mut m = Map2d::<f64>::new(3, 2);
        m[(2, 1)] = 7.0;
        assert_eq!(m.as_slice()[1 * 3 + 2], 7.0);
        assert_eq!(m[(2, 1)], 7.0);
        assert_eq!(m.get(2, 1), Some(&7.0));
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn stats() {
        let m = Map2d::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.count_above(2.5), 2);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Map2d::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Map2d::from_vec(2, 1, vec![10.0, 20.0]);
        a.add_assign_map(&b);
        a.scale_in_place(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11.0]);
    }

    #[test]
    #[should_panic]
    fn add_dimension_mismatch_panics() {
        let mut a = Map2d::<f64>::new(2, 2);
        let b = Map2d::<f64>::new(3, 2);
        a.add_assign_map(&b);
    }

    #[test]
    fn iter_coords_covers_all() {
        let m = Map2d::from_vec(2, 2, vec![0, 1, 2, 3]);
        let v: Vec<_> = m.iter_coords().map(|(x, y, &v)| (x, y, v)).collect();
        assert_eq!(v, vec![(0, 0, 0), (1, 0, 1), (0, 1, 2), (1, 1, 3)]);
    }

    #[test]
    fn clear_resets() {
        let mut m = Map2d::filled(2, 2, 5.0f64);
        m.clear();
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn row_accessors_match_layout() {
        let m = Map2d::from_vec(3, 2, vec![0, 1, 2, 10, 11, 12]);
        assert_eq!(m.row(0), &[0, 1, 2]);
        assert_eq!(m.row(1), &[10, 11, 12]);
        let rows: Vec<_> = m.rows().collect();
        assert_eq!(rows, vec![&[0, 1, 2][..], &[10, 11, 12][..]]);
        let mut m = m;
        m.row_mut(1)[2] = 99;
        assert_eq!(m[(2, 1)], 99);
    }

    #[test]
    fn lane_reductions_cover_remainders() {
        // Lengths exercising 0..LANES-1 remainder lanes.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 - 2.5) * 1.3).collect();
            let m = Map2d::from_vec(n, 1, data.clone());
            let naive_sum: f64 = data.iter().sum();
            assert!((m.sum() - naive_sum).abs() < 1e-12, "sum n={n}");
            let naive_max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let naive_min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(m.max(), naive_max, "max n={n}");
            assert_eq!(m.min(), naive_min, "min n={n}");
        }
    }

    #[test]
    fn ascii_heatmap_shape() {
        let m = Map2d::from_vec(4, 4, (0..16).map(|i| i as f64).collect());
        let s = m.ascii_heatmap(4);
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
    }
}
