//! Typed index handles into the design database.
//!
//! Each entity kind (cell, net, pin, …) gets its own newtype around `u32`
//! so indices cannot be confused across arenas (C-NEWTYPE). All handles are
//! plain indices into the owning [`crate::Design`]'s vectors.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning arena.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs a handle from a raw arena index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Handle to a cell (standard cell, macro, or fixed terminal).
    CellId,
    "c"
);
define_id!(
    /// Handle to a net (hyperedge).
    NetId,
    "n"
);
define_id!(
    /// Handle to a pin (connection point of a net on a cell).
    PinId,
    "p"
);
define_id!(
    /// Handle to a placement row.
    RowId,
    "r"
);
define_id!(
    /// Handle to a power/ground rail.
    RailId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let c = CellId::from_index(42);
        assert_eq!(c.index(), 42);
        assert_eq!(format!("{c}"), "c42");
        assert_eq!(format!("{c:?}"), "c42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NetId(1));
        s.insert(NetId(1));
        s.insert(NetId(2));
        assert_eq!(s.len(), 2);
        assert!(NetId(1) < NetId(2));
    }
}
