//! # rdp-db — design database for routability-driven placement
//!
//! This crate is the shared data model of the `rdp` workspace: geometry
//! primitives, the netlist hypergraph, floorplan structures (rows, PG
//! rails, routing layers), dense 2-D maps, and the uniform bin/G-cell grid.
//!
//! Everything downstream — the electrostatic placer ([`rdp-core`]), the
//! grid global router ([`rdp-route`]), the legalizer ([`rdp-legal`]) and
//! the evaluation flow ([`rdp-drc`]) — operates on a [`Design`].
//!
//! ## Quick example
//!
//! ```
//! use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DesignBuilder::new("demo", Rect::new(0.0, 0.0, 100.0, 100.0));
//! let u1 = b.add_cell(Cell::std("u1", 1.0, 2.0), Point::new(20.0, 30.0));
//! let u2 = b.add_cell(Cell::std("u2", 1.0, 2.0), Point::new(70.0, 60.0));
//! b.add_net("n0", vec![(u1, Point::default()), (u2, Point::default())]);
//! b.routing(RoutingSpec::uniform(6, 12.0, 32, 32));
//! let design = b.build()?;
//! assert_eq!(design.hpwl(), 80.0);
//! # Ok(())
//! # }
//! ```
//!
//! [`rdp-core`]: https://example.invalid/rdp
//! [`rdp-route`]: https://example.invalid/rdp
//! [`rdp-legal`]: https://example.invalid/rdp
//! [`rdp-drc`]: https://example.invalid/rdp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod floorplan;
mod geom;
mod grid;
mod ids;
mod map2d;
mod netlist;
mod stats;

pub use design::{BuildDesignError, Design, DesignBuilder};
pub use floorplan::{Obstruction, PgRail, RoutingLayer, RoutingSpec, Row};
pub use geom::{Dir, Point, Rect};
pub use grid::GridSpec;
pub use ids::{CellId, NetId, PinId, RailId, RowId};
pub use map2d::Map2d;
pub use netlist::{Cell, CellKind, Net, Pin};
pub use stats::DesignStats;
