//! The design database: one [`Design`] owns the netlist, floorplan, and
//! current placement of a circuit.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::floorplan::{Obstruction, PgRail, RoutingSpec, Row};
use crate::geom::{Point, Rect};
use crate::grid::GridSpec;
use crate::ids::{CellId, NetId, PinId};
use crate::netlist::{Cell, CellKind, Net, Pin};

/// Error produced when assembling or validating a design.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildDesignError {
    /// The die rectangle has non-positive area.
    EmptyDie,
    /// A cell name was used twice.
    DuplicateCellName(String),
    /// A net name was used twice.
    DuplicateNetName(String),
    /// A net has fewer than two pins.
    DegenerateNet(String),
    /// A pin references a cell id that does not exist.
    DanglingPin {
        /// Name of the offending net.
        net: String,
        /// The unknown raw cell index.
        cell: u32,
    },
    /// No routing specification was provided.
    MissingRouting,
}

impl fmt::Display for BuildDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildDesignError::EmptyDie => write!(f, "die rectangle has non-positive area"),
            BuildDesignError::DuplicateCellName(n) => write!(f, "duplicate cell name `{n}`"),
            BuildDesignError::DuplicateNetName(n) => write!(f, "duplicate net name `{n}`"),
            BuildDesignError::DegenerateNet(n) => {
                write!(f, "net `{n}` has fewer than two pins")
            }
            BuildDesignError::DanglingPin { net, cell } => {
                write!(f, "net `{net}` references unknown cell index {cell}")
            }
            BuildDesignError::MissingRouting => write!(f, "no routing specification provided"),
        }
    }
}

impl Error for BuildDesignError {}

/// A placed circuit: netlist + floorplan + per-cell positions.
///
/// Positions are **cell centers** in microns, the convention of analytical
/// placement. Use [`Design::cell_rect`] for the physical footprint.
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    die: Rect,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    cell_pins: Vec<Vec<PinId>>,
    pos: Vec<Point>,
    rows: Vec<Row>,
    rails: Vec<PgRail>,
    obstructions: Vec<Obstruction>,
    routing: RoutingSpec,
}

impl Design {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die (placement region) rectangle — the region `R` of Eq. (1).
    pub fn die(&self) -> Rect {
        self.die
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pins.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Placement rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Power/ground rails.
    pub fn rails(&self) -> &[PgRail] {
        &self.rails
    }

    /// Routing blockages (macro obstructions and standalone blockage
    /// rectangles).
    pub fn obstructions(&self) -> &[Obstruction] {
        &self.obstructions
    }

    /// Routing environment.
    pub fn routing(&self) -> &RoutingSpec {
        &self.routing
    }

    /// Replaces the routing environment (used by the benchmark generator's
    /// capacity calibration pass).
    pub fn set_routing(&mut self, spec: RoutingSpec) {
        self.routing = spec;
    }

    /// A cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// A pin by id.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Pins attached to a cell.
    pub fn pins_of_cell(&self, id: CellId) -> &[PinId] {
        &self.cell_pins[id.index()]
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Current center position of a cell.
    pub fn pos(&self, id: CellId) -> Point {
        self.pos[id.index()]
    }

    /// All positions, indexed by cell id.
    pub fn positions(&self) -> &[Point] {
        &self.pos
    }

    /// Moves a cell center (no legality checks; the placer clamps itself).
    pub fn set_pos(&mut self, id: CellId, p: Point) {
        self.pos[id.index()] = p;
    }

    /// Overwrites all positions.
    ///
    /// # Panics
    ///
    /// Panics if `pos.len() != num_cells()`.
    pub fn set_positions(&mut self, pos: &[Point]) {
        assert_eq!(pos.len(), self.pos.len(), "position count mismatch");
        self.pos.copy_from_slice(pos);
    }

    /// Physical footprint of a cell at its current position.
    pub fn cell_rect(&self, id: CellId) -> Rect {
        let c = &self.cells[id.index()];
        Rect::centered(self.pos[id.index()], c.w, c.h)
    }

    /// Absolute position of a pin (cell center + pin offset).
    pub fn pin_position(&self, id: PinId) -> Point {
        let pin = &self.pins[id.index()];
        self.pos[pin.cell.index()] + pin.offset
    }

    /// Iterator over ids of movable cells.
    pub fn movable_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_movable())
            .map(|(i, _)| CellId::from_index(i))
    }

    /// Iterator over ids of fixed macro blocks.
    pub fn macros(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::Macro)
            .map(|(i, _)| CellId::from_index(i))
    }

    /// Bounding box of a net's pins, or `None` for a pinless net.
    pub fn net_bbox(&self, id: NetId) -> Option<Rect> {
        let net = &self.nets[id.index()];
        let mut it = net.pins.iter().map(|&p| self.pin_position(p));
        let first = it.next()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in it {
            r.lo.x = r.lo.x.min(p.x);
            r.lo.y = r.lo.y.min(p.y);
            r.hi.x = r.hi.x.max(p.x);
            r.hi.y = r.hi.y.max(p.y);
        }
        Some(r)
    }

    /// Half-perimeter wirelength of one net.
    pub fn net_hpwl(&self, id: NetId) -> f64 {
        self.net_bbox(id)
            .map(|r| (r.width() + r.height()) * self.nets[id.index()].weight)
            .unwrap_or(0.0)
    }

    /// Total weighted half-perimeter wirelength of the design.
    pub fn hpwl(&self) -> f64 {
        (0..self.nets.len())
            .map(|i| self.net_hpwl(NetId::from_index(i)))
            .sum()
    }

    /// Average number of pins per cell — the `n̄` threshold of Algorithm 2.
    pub fn avg_pins_per_cell(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.pins.len() as f64 / self.cells.len() as f64
    }

    /// A bin grid of the requested dimensions over the die.
    pub fn grid(&self, nx: usize, ny: usize) -> GridSpec {
        GridSpec::new(self.die, nx, ny)
    }

    /// The G-cell grid defined by the routing spec (identical to the
    /// density-bin grid per Section II-B of the paper).
    pub fn gcell_grid(&self) -> GridSpec {
        GridSpec::new(self.die, self.routing.gx, self.routing.gy)
    }

    /// Total area of movable cells.
    pub fn movable_area(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.is_movable())
            .map(|c| c.area())
            .sum()
    }

    /// Area of the die minus fixed macro area (the space available to
    /// movable cells).
    pub fn free_area(&self) -> f64 {
        let macro_area: f64 = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.fixed && c.kind == CellKind::Macro)
            .map(|(i, c)| Rect::centered(self.pos[i], c.w, c.h).overlap_area(&self.die))
            .sum();
        (self.die.area() - macro_area).max(0.0)
    }

    /// Design utilization: movable area / free area.
    pub fn utilization(&self) -> f64 {
        let free = self.free_area();
        if free <= 0.0 {
            f64::INFINITY
        } else {
            self.movable_area() / free
        }
    }

    /// Looks up a cell id by instance name (linear scan; build your own map
    /// for bulk lookups).
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(CellId::from_index)
    }

    /// Deep-checks the database invariants: cross-references between pins,
    /// nets and cells, finite geometry, and positive movable-cell sizes.
    /// Returns a list of human-readable problems (empty = sound).
    ///
    /// The builder enforces these on construction; `validate` exists for
    /// data that entered through parsers or manual mutation.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.die.area() <= 0.0 {
            problems.push("die has non-positive area".to_string());
        }
        for (i, p) in self.pins.iter().enumerate() {
            if p.cell.index() >= self.cells.len() {
                problems.push(format!("pin p{i} references unknown cell {}", p.cell));
            }
            if p.net.index() >= self.nets.len() {
                problems.push(format!("pin p{i} references unknown net {}", p.net));
            }
            if !p.offset.x.is_finite() || !p.offset.y.is_finite() {
                problems.push(format!("pin p{i} has a non-finite offset"));
            }
        }
        for (i, n) in self.nets.iter().enumerate() {
            if n.pins.len() < 2 {
                problems.push(format!("net `{}` has fewer than two pins", n.name));
            }
            for &pid in &n.pins {
                if pid.index() >= self.pins.len() {
                    problems.push(format!("net `{}` references unknown pin {pid}", n.name));
                } else if self.pins[pid.index()].net.index() != i {
                    problems.push(format!(
                        "pin {pid} back-reference mismatch for net `{}`",
                        n.name
                    ));
                }
            }
        }
        for (i, o) in self.obstructions.iter().enumerate() {
            if !(o.rect.lo.x.is_finite()
                && o.rect.lo.y.is_finite()
                && o.rect.hi.x.is_finite()
                && o.rect.hi.y.is_finite())
            {
                problems.push(format!("obstruction {i} has non-finite geometry"));
            }
        }
        for (i, c) in self.cells.iter().enumerate() {
            if c.is_movable() && (c.w <= 0.0 || c.h <= 0.0) {
                problems.push(format!("movable cell `{}` has non-positive size", c.name));
            }
            let p = self.pos[i];
            if !p.x.is_finite() || !p.y.is_finite() {
                problems.push(format!("cell `{}` has a non-finite position", c.name));
            }
        }
        if self.routing.layers.is_empty() {
            problems.push("routing spec has no layers".to_string());
        }
        if self.routing.gx == 0 || self.routing.gy == 0 {
            problems.push("routing grid has a zero dimension".to_string());
        }
        problems
    }
}

/// Incremental builder for [`Design`] (C-BUILDER).
///
/// ```
/// use rdp_db::{DesignBuilder, Cell, Point, Rect, RoutingSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DesignBuilder::new("tiny", Rect::new(0.0, 0.0, 100.0, 100.0));
/// let a = b.add_cell(Cell::std("a", 1.0, 2.0), Point::new(10.0, 10.0));
/// let c = b.add_cell(Cell::std("b", 1.0, 2.0), Point::new(90.0, 90.0));
/// b.add_net("n0", vec![(a, Point::default()), (c, Point::default())]);
/// b.routing(RoutingSpec::uniform(4, 10.0, 10, 10));
/// let design = b.build()?;
/// assert_eq!(design.num_cells(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesignBuilder {
    name: String,
    die: Rect,
    cells: Vec<Cell>,
    pos: Vec<Point>,
    nets: Vec<(String, f64, Vec<(CellId, Point)>)>,
    rows: Vec<Row>,
    rails: Vec<PgRail>,
    obstructions: Vec<Obstruction>,
    routing: Option<RoutingSpec>,
}

impl DesignBuilder {
    /// Starts a design with a name and die rectangle.
    pub fn new(name: impl Into<String>, die: Rect) -> Self {
        DesignBuilder {
            name: name.into(),
            die,
            cells: Vec::new(),
            pos: Vec::new(),
            nets: Vec::new(),
            rows: Vec::new(),
            rails: Vec::new(),
            obstructions: Vec::new(),
            routing: None,
        }
    }

    /// Adds a cell at an initial center position and returns its id.
    pub fn add_cell(&mut self, cell: Cell, center: Point) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cells.push(cell);
        self.pos.push(center);
        id
    }

    /// Adds a unit-weight net given `(cell, pin-offset)` pairs.
    pub fn add_net(&mut self, name: impl Into<String>, pins: Vec<(CellId, Point)>) -> &mut Self {
        self.nets.push((name.into(), 1.0, pins));
        self
    }

    /// Adds a weighted net.
    pub fn add_weighted_net(
        &mut self,
        name: impl Into<String>,
        weight: f64,
        pins: Vec<(CellId, Point)>,
    ) -> &mut Self {
        self.nets.push((name.into(), weight, pins));
        self
    }

    /// Adds one placement row.
    pub fn add_row(&mut self, row: Row) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Adds one PG rail.
    pub fn add_rail(&mut self, rail: PgRail) -> &mut Self {
        self.rails.push(rail);
        self
    }

    /// Adds one routing obstruction.
    pub fn add_obstruction(&mut self, obs: Obstruction) -> &mut Self {
        self.obstructions.push(obs);
        self
    }

    /// Sets the routing environment (required).
    pub fn routing(&mut self, spec: RoutingSpec) -> &mut Self {
        self.routing = Some(spec);
        self
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Validates and assembles the design.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildDesignError`] for a degenerate die, duplicate names,
    /// nets with fewer than two pins, pins referencing unknown cells, or a
    /// missing routing spec.
    pub fn build(self) -> Result<Design, BuildDesignError> {
        if self.die.area() <= 0.0 {
            return Err(BuildDesignError::EmptyDie);
        }
        let routing = self.routing.ok_or(BuildDesignError::MissingRouting)?;

        let mut seen = HashMap::new();
        for c in &self.cells {
            if seen.insert(c.name.clone(), ()).is_some() {
                return Err(BuildDesignError::DuplicateCellName(c.name.clone()));
            }
        }
        let mut seen_nets = HashMap::new();

        let mut pins: Vec<Pin> = Vec::new();
        let mut nets: Vec<Net> = Vec::with_capacity(self.nets.len());
        let mut cell_pins: Vec<Vec<PinId>> = vec![Vec::new(); self.cells.len()];

        for (name, weight, members) in self.nets {
            if seen_nets.insert(name.clone(), ()).is_some() {
                return Err(BuildDesignError::DuplicateNetName(name));
            }
            if members.len() < 2 {
                return Err(BuildDesignError::DegenerateNet(name));
            }
            let net_id = NetId::from_index(nets.len());
            let mut pin_ids = Vec::with_capacity(members.len());
            for (cell, offset) in members {
                if cell.index() >= self.cells.len() {
                    return Err(BuildDesignError::DanglingPin {
                        net: name,
                        cell: cell.0,
                    });
                }
                let pid = PinId::from_index(pins.len());
                pins.push(Pin {
                    cell,
                    net: net_id,
                    offset,
                });
                cell_pins[cell.index()].push(pid);
                pin_ids.push(pid);
            }
            nets.push(Net {
                name,
                pins: pin_ids,
                weight,
            });
        }

        Ok(Design {
            name: self.name,
            die: self.die,
            cells: self.cells,
            nets,
            pins,
            cell_pins,
            pos: self.pos,
            rows: self.rows,
            rails: self.rails,
            obstructions: self.obstructions,
            routing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dir;

    fn tiny() -> Design {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 100.0, 100.0));
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(10.0, 10.0));
        let c = b.add_cell(Cell::std("b", 2.0, 2.0), Point::new(90.0, 20.0));
        let m = b.add_cell(Cell::fixed_macro("m", 20.0, 20.0), Point::new(50.0, 50.0));
        b.add_net(
            "n0",
            vec![
                (a, Point::new(0.5, 0.0)),
                (c, Point::new(-0.5, 0.0)),
                (m, Point::default()),
            ],
        );
        b.add_net("n1", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 10.0, 10, 10));
        b.build().unwrap()
    }

    #[test]
    fn build_and_query() {
        let d = tiny();
        assert_eq!(d.num_cells(), 3);
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.num_pins(), 5);
        assert_eq!(d.pins_of_cell(CellId(0)).len(), 2);
        assert_eq!(d.movable_cells().count(), 2);
        assert_eq!(d.macros().count(), 1);
        assert!((d.avg_pins_per_cell() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pin_positions_and_hpwl() {
        let d = tiny();
        // n1 connects centers (10,10) and (90,20): HPWL = 80 + 10.
        assert_eq!(d.net_hpwl(NetId(1)), 90.0);
        // n0 pins: (10.5,10), (89.5,20), (50,50): HPWL = 79 + 40.
        assert_eq!(d.net_hpwl(NetId(0)), 119.0);
        assert_eq!(d.hpwl(), 209.0);
    }

    #[test]
    fn set_positions_moves_pins() {
        let mut d = tiny();
        d.set_pos(CellId(0), Point::new(20.0, 10.0));
        assert_eq!(d.pin_position(PinId(3)), Point::new(20.0, 10.0));
        assert_eq!(d.net_hpwl(NetId(1)), 80.0);
    }

    #[test]
    fn utilization_accounts_macros() {
        let d = tiny();
        let free = 100.0 * 100.0 - 400.0;
        assert!((d.free_area() - free).abs() < 1e-9);
        assert!((d.utilization() - 8.0 / free).abs() < 1e-12);
    }

    #[test]
    fn cell_rect_is_centered() {
        let d = tiny();
        let r = d.cell_rect(CellId(2));
        assert_eq!(r, Rect::new(40.0, 40.0, 60.0, 60.0));
    }

    #[test]
    fn net_bbox() {
        let d = tiny();
        let bb = d.net_bbox(NetId(1)).unwrap();
        assert_eq!(bb, Rect::new(10.0, 10.0, 90.0, 20.0));
    }

    #[test]
    fn duplicate_cell_name_rejected() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_cell(Cell::std("a", 1.0, 1.0), Point::default());
        b.add_cell(Cell::std("a", 1.0, 1.0), Point::default());
        b.routing(RoutingSpec::uniform(2, 1.0, 2, 2));
        assert_eq!(
            b.build().unwrap_err(),
            BuildDesignError::DuplicateCellName("a".into())
        );
    }

    #[test]
    fn degenerate_net_rejected() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::default());
        b.add_net("n", vec![(a, Point::default())]);
        b.routing(RoutingSpec::uniform(2, 1.0, 2, 2));
        assert_eq!(
            b.build().unwrap_err(),
            BuildDesignError::DegenerateNet("n".into())
        );
    }

    #[test]
    fn missing_routing_rejected() {
        let b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(b.build().unwrap_err(), BuildDesignError::MissingRouting);
    }

    #[test]
    fn dangling_pin_rejected() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::default());
        b.add_net(
            "n",
            vec![(a, Point::default()), (CellId(99), Point::default())],
        );
        b.routing(RoutingSpec::uniform(2, 1.0, 2, 2));
        assert!(matches!(
            b.build().unwrap_err(),
            BuildDesignError::DanglingPin { .. }
        ));
    }

    #[test]
    fn find_cell_by_name() {
        let d = tiny();
        assert_eq!(d.find_cell("b"), Some(CellId(1)));
        assert_eq!(d.find_cell("zz"), None);
    }

    #[test]
    fn validate_accepts_built_design() {
        let d = tiny();
        assert!(d.validate().is_empty(), "{:?}", d.validate());
    }

    #[test]
    fn validate_detects_nonfinite_position() {
        let mut d = tiny();
        d.set_pos(CellId(0), Point::new(f64::NAN, 0.0));
        let problems = d.validate();
        assert!(problems.iter().any(|p| p.contains("non-finite position")));
    }

    #[test]
    fn rails_and_rows_roundtrip() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::default());
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::default());
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.add_row(Row {
            y: 0.0,
            height: 2.0,
            x0: 0.0,
            x1: 10.0,
            site_w: 0.5,
        });
        b.add_rail(PgRail {
            layer: 1,
            dir: Dir::Horizontal,
            rect: Rect::new(0.0, 2.0, 10.0, 2.2),
        });
        b.routing(RoutingSpec::uniform(2, 1.0, 2, 2));
        let d = b.build().unwrap();
        assert_eq!(d.rows().len(), 1);
        assert_eq!(d.rails().len(), 1);
    }
}
