//! Floorplan structures: placement rows, power/ground rails, and the
//! routing-layer stack.

use crate::geom::{Dir, Rect};

/// A standard-cell placement row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Bottom y coordinate of the row.
    pub y: f64,
    /// Row (site) height.
    pub height: f64,
    /// Left edge of the row.
    pub x0: f64,
    /// Right edge of the row.
    pub x1: f64,
    /// Width of one placement site.
    pub site_w: f64,
}

impl Row {
    /// Horizontal extent of the row.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Number of whole sites in the row.
    pub fn num_sites(&self) -> usize {
        (self.width() / self.site_w).floor() as usize
    }

    /// Geometric extent of the row.
    pub fn rect(&self) -> Rect {
        Rect::new(self.x0, self.y, self.x1, self.y + self.height)
    }
}

/// A power or ground rail segment on a metal layer (M2 in the paper's
/// pin-accessibility discussion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgRail {
    /// Metal layer index (0 = M1).
    pub layer: u8,
    /// Direction the rail runs in.
    pub dir: Dir,
    /// Physical extent (a long thin rectangle).
    pub rect: Rect,
}

impl PgRail {
    /// Length along the rail's direction.
    pub fn length(&self) -> f64 {
        match self.dir {
            Dir::Horizontal => self.rect.width(),
            Dir::Vertical => self.rect.height(),
        }
    }

    /// Width across the rail's direction.
    pub fn thickness(&self) -> f64 {
        match self.dir {
            Dir::Horizontal => self.rect.height(),
            Dir::Vertical => self.rect.width(),
        }
    }
}

/// One routing layer of the metal stack.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingLayer {
    /// Layer name, e.g. `"M1"`.
    pub name: String,
    /// Preferred routing direction.
    pub dir: Dir,
    /// Routing capacity of one G-cell edge on this layer, expressed in
    /// track·G-cells (how much wire length, in units of G-cell extent, fits
    /// through one G-cell).
    pub capacity: f64,
    /// Track pitch in microns (0 = unknown/not modelled). Carried by the
    /// LEF `LAYER … PITCH` / DEF `TRACKS` constructs; capacity remains the
    /// router's authoritative resource model.
    pub pitch: f64,
}

/// A routing blockage: a rectangle on one metal layer through which no
/// routing resources are available (LEF `OBS` geometry materialized per
/// macro instance, or a standalone DEF `BLOCKAGES` entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstruction {
    /// Metal layer index (0 = M1).
    pub layer: u8,
    /// Blocked rectangle.
    pub rect: Rect,
}

/// The routing environment: the layer stack and the G-cell discretization.
///
/// The paper maps the 3-D G-cell array onto the 2-D plane by summing demand
/// and capacity over layers; [`crate::Design`] keeps the full stack so the
/// router can model per-layer directionality.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingSpec {
    /// Metal layers, bottom-up (index 0 = M1).
    pub layers: Vec<RoutingLayer>,
    /// G-cell count in x (equals the bin count, per Section II-B).
    pub gx: usize,
    /// G-cell count in y.
    pub gy: usize,
}

impl RoutingSpec {
    /// Total horizontal capacity of one G-cell (sum over H layers).
    pub fn total_h_capacity(&self) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.dir == Dir::Horizontal)
            .map(|l| l.capacity)
            .sum()
    }

    /// Total vertical capacity of one G-cell (sum over V layers).
    pub fn total_v_capacity(&self) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.dir == Dir::Vertical)
            .map(|l| l.capacity)
            .sum()
    }

    /// Number of routing layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// A conventional 2-µm-pitch-style default stack with `n` layers of
    /// alternating direction (M1 horizontal) and uniform per-layer capacity.
    pub fn uniform(n: usize, capacity: f64, gx: usize, gy: usize) -> Self {
        let layers = (0..n)
            .map(|i| RoutingLayer {
                name: format!("M{}", i + 1),
                dir: if i % 2 == 0 {
                    Dir::Horizontal
                } else {
                    Dir::Vertical
                },
                capacity,
                pitch: 0.0,
            })
            .collect();
        RoutingSpec { layers, gx, gy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_sites() {
        let r = Row {
            y: 0.0,
            height: 2.8,
            x0: 0.0,
            x1: 10.0,
            site_w: 0.4,
        };
        assert_eq!(r.num_sites(), 25);
        assert_eq!(r.rect(), Rect::new(0.0, 0.0, 10.0, 2.8));
        assert_eq!(r.width(), 10.0);
    }

    #[test]
    fn rail_length_by_direction() {
        let h = PgRail {
            layer: 1,
            dir: Dir::Horizontal,
            rect: Rect::new(0.0, 10.0, 50.0, 10.4),
        };
        assert_eq!(h.length(), 50.0);
        assert!((h.thickness() - 0.4).abs() < 1e-12);

        let v = PgRail {
            layer: 1,
            dir: Dir::Vertical,
            rect: Rect::new(5.0, 0.0, 5.4, 30.0),
        };
        assert_eq!(v.length(), 30.0);
    }

    #[test]
    fn uniform_stack_alternates() {
        let s = RoutingSpec::uniform(4, 10.0, 64, 64);
        assert_eq!(s.num_layers(), 4);
        assert_eq!(s.layers[0].dir, Dir::Horizontal);
        assert_eq!(s.layers[1].dir, Dir::Vertical);
        assert_eq!(s.total_h_capacity(), 20.0);
        assert_eq!(s.total_v_capacity(), 20.0);
        assert_eq!(s.layers[2].name, "M3");
    }
}
