//! Uniform grid over the die: shared geometry for placement bins and
//! routing G-cells.
//!
//! The paper predefines G-cells and density bins to have the same
//! dimensions (Section II-B), which lets congestion values map one-to-one
//! onto bins. [`GridSpec`] captures that shared discretization.

use crate::geom::{Point, Rect};

/// A uniform `nx × ny` grid covering a rectangular region.
///
/// The bin geometry (`bin_w`/`bin_h`/`bin_area`) is computed once at
/// construction — bitwise the same divisions the accessors used to
/// perform per call, just cached, since every hot traversal (density
/// binning, bilinear sampling, G-cell lookup) asks for them per element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    region: Rect,
    nx: usize,
    ny: usize,
    bw: f64,
    bh: f64,
    barea: f64,
    /// Cached reciprocals for the bilinear samplers (a multiply instead
    /// of a divide per sampled cell). The index-quantizing lookups
    /// (`bin_of`, `bins_overlapping`) keep the true division: their
    /// floor/fract edge semantics must not move with reciprocal rounding.
    inv_bw: f64,
    inv_bh: f64,
}

impl GridSpec {
    /// Creates a grid with `nx × ny` bins over `region`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or the region is degenerate.
    pub fn new(region: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "grid region must have positive area"
        );
        let bw = region.width() / nx as f64;
        let bh = region.height() / ny as f64;
        GridSpec {
            region,
            nx,
            ny,
            bw,
            bh,
            barea: bw * bh,
            inv_bw: 1.0 / bw,
            inv_bh: 1.0 / bh,
        }
    }

    /// The covered region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Bin count in x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Bin count in y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Width `l_x` of one bin / G-cell.
    #[inline]
    pub fn bin_w(&self) -> f64 {
        self.bw
    }

    /// Height `l_y` of one bin / G-cell.
    #[inline]
    pub fn bin_h(&self) -> f64 {
        self.bh
    }

    /// Area of one bin.
    #[inline]
    pub fn bin_area(&self) -> f64 {
        self.barea
    }

    /// Bin indices containing point `p`, clamped into the grid so that
    /// points on or beyond the upper boundary land in the last bin.
    pub fn bin_of(&self, p: Point) -> (usize, usize) {
        let fx = (p.x - self.region.lo.x) / self.bin_w();
        let fy = (p.y - self.region.lo.y) / self.bin_h();
        let ix = (fx.floor().max(0.0) as usize).min(self.nx - 1);
        let iy = (fy.floor().max(0.0) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// Geometric extent of bin `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the indices are out of range.
    pub fn bin_rect(&self, ix: usize, iy: usize) -> Rect {
        debug_assert!(ix < self.nx && iy < self.ny);
        let x0 = self.region.lo.x + ix as f64 * self.bin_w();
        let y0 = self.region.lo.y + iy as f64 * self.bin_h();
        Rect::new(x0, y0, x0 + self.bin_w(), y0 + self.bin_h())
    }

    /// Center of bin `(ix, iy)`.
    pub fn bin_center(&self, ix: usize, iy: usize) -> Point {
        self.bin_rect(ix, iy).center()
    }

    /// Inclusive index range of bins overlapping `r`, or `None` when the
    /// rectangle lies entirely outside the grid region.
    pub fn bins_overlapping(&self, r: &Rect) -> Option<(usize, usize, usize, usize)> {
        if !self.region.intersects(r) {
            return None;
        }
        let x0 = ((r.lo.x - self.region.lo.x) / self.bin_w())
            .floor()
            .max(0.0) as usize;
        let y0 = ((r.lo.y - self.region.lo.y) / self.bin_h())
            .floor()
            .max(0.0) as usize;
        // hi is exclusive geometry: a rect ending exactly on a bin boundary
        // does not overlap the next bin.
        let x1f = (r.hi.x - self.region.lo.x) / self.bin_w();
        let y1f = (r.hi.y - self.region.lo.y) / self.bin_h();
        let x1 = if x1f.fract() == 0.0 {
            x1f as usize - 1
        } else {
            x1f.floor() as usize
        };
        let y1 = if y1f.fract() == 0.0 {
            y1f as usize - 1
        } else {
            y1f.floor() as usize
        };
        Some((
            x0.min(self.nx - 1),
            y0.min(self.ny - 1),
            x1.min(self.nx - 1).max(x0.min(self.nx - 1)),
            y1.min(self.ny - 1).max(y0.min(self.ny - 1)),
        ))
    }

    /// Bilinear interpolation of a bin-centered field at point `p`.
    ///
    /// `field` must be an `nx × ny` map whose values live at bin centers.
    /// Points beyond the outer ring of centers are clamped (constant
    /// extrapolation), which matches the Neumann boundary condition of the
    /// placement Poisson problem.
    pub fn sample_bilinear(&self, field: &crate::Map2d<f64>, p: Point) -> f64 {
        assert_eq!(field.nx(), self.nx);
        assert_eq!(field.ny(), self.ny);
        let gx = (p.x - self.region.lo.x) * self.inv_bw - 0.5;
        let gy = (p.y - self.region.lo.y) * self.inv_bh - 0.5;
        let gx = gx.clamp(0.0, (self.nx - 1) as f64);
        let gy = gy.clamp(0.0, (self.ny - 1) as f64);
        let x0 = gx.floor() as usize;
        let y0 = gy.floor() as usize;
        let x1 = (x0 + 1).min(self.nx - 1);
        let y1 = (y0 + 1).min(self.ny - 1);
        let tx = gx - x0 as f64;
        let ty = gy - y0 as f64;
        let f00 = field[(x0, y0)];
        let f10 = field[(x1, y0)];
        let f01 = field[(x0, y1)];
        let f11 = field[(x1, y1)];
        f00 * (1.0 - tx) * (1.0 - ty)
            + f10 * tx * (1.0 - ty)
            + f01 * (1.0 - tx) * ty
            + f11 * tx * ty
    }

    /// [`sample_bilinear`](GridSpec::sample_bilinear) of **two** fields at
    /// one point, sharing the index/weight computation. Each component is
    /// the exact expression of the single-field sampler, so the results
    /// are bitwise identical to two separate calls — the density gradient
    /// samples `E_x` and `E_y` at every cell and was paying the address
    /// math twice.
    pub fn sample_bilinear2(
        &self,
        fa: &crate::Map2d<f64>,
        fb: &crate::Map2d<f64>,
        p: Point,
    ) -> (f64, f64) {
        assert_eq!(fa.nx(), self.nx);
        assert_eq!(fa.ny(), self.ny);
        assert_eq!(fb.nx(), self.nx);
        assert_eq!(fb.ny(), self.ny);
        let gx = (p.x - self.region.lo.x) * self.inv_bw - 0.5;
        let gy = (p.y - self.region.lo.y) * self.inv_bh - 0.5;
        let gx = gx.clamp(0.0, (self.nx - 1) as f64);
        let gy = gy.clamp(0.0, (self.ny - 1) as f64);
        let x0 = gx.floor() as usize;
        let y0 = gy.floor() as usize;
        let x1 = (x0 + 1).min(self.nx - 1);
        let y1 = (y0 + 1).min(self.ny - 1);
        let tx = gx - x0 as f64;
        let ty = gy - y0 as f64;
        let a = fa[(x0, y0)] * (1.0 - tx) * (1.0 - ty)
            + fa[(x1, y0)] * tx * (1.0 - ty)
            + fa[(x0, y1)] * (1.0 - tx) * ty
            + fa[(x1, y1)] * tx * ty;
        let b = fb[(x0, y0)] * (1.0 - tx) * (1.0 - ty)
            + fb[(x1, y0)] * tx * (1.0 - ty)
            + fb[(x0, y1)] * (1.0 - tx) * ty
            + fb[(x1, y1)] * tx * ty;
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Map2d;

    fn grid() -> GridSpec {
        GridSpec::new(Rect::new(0.0, 0.0, 100.0, 50.0), 10, 5)
    }

    #[test]
    fn bin_dims() {
        let g = grid();
        assert_eq!(g.bin_w(), 10.0);
        assert_eq!(g.bin_h(), 10.0);
        assert_eq!(g.bin_area(), 100.0);
    }

    #[test]
    fn bin_of_clamps() {
        let g = grid();
        assert_eq!(g.bin_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.bin_of(Point::new(99.9, 49.9)), (9, 4));
        assert_eq!(g.bin_of(Point::new(100.0, 50.0)), (9, 4));
        assert_eq!(g.bin_of(Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(g.bin_of(Point::new(25.0, 35.0)), (2, 3));
    }

    #[test]
    fn bin_rect_tiles_region() {
        let g = grid();
        let mut area = 0.0;
        for iy in 0..g.ny() {
            for ix in 0..g.nx() {
                area += g.bin_rect(ix, iy).area();
            }
        }
        assert!((area - g.region().area()).abs() < 1e-9);
        assert_eq!(g.bin_rect(0, 0).lo, Point::new(0.0, 0.0));
        assert_eq!(g.bin_rect(9, 4).hi, Point::new(100.0, 50.0));
    }

    #[test]
    fn bins_overlapping_interior() {
        let g = grid();
        let r = Rect::new(12.0, 8.0, 37.0, 22.0);
        assert_eq!(g.bins_overlapping(&r), Some((1, 0, 3, 2)));
    }

    #[test]
    fn bins_overlapping_boundary_exclusive() {
        let g = grid();
        // Ends exactly on a boundary: must not claim the next bin.
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(g.bins_overlapping(&r), Some((0, 0, 0, 0)));
    }

    #[test]
    fn bins_overlapping_outside() {
        let g = grid();
        assert_eq!(
            g.bins_overlapping(&Rect::new(200.0, 0.0, 210.0, 10.0)),
            None
        );
    }

    #[test]
    fn bilinear_constant_field() {
        let g = grid();
        let f = Map2d::filled(10, 5, 3.5);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(55.0, 25.0),
            Point::new(99.0, 49.0),
        ] {
            assert!((g.sample_bilinear(&f, p) - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear2_matches_two_single_samples_bitwise() {
        let g = grid();
        let mut fa = Map2d::new(10, 5);
        let mut fb = Map2d::new(10, 5);
        for iy in 0..5 {
            for ix in 0..10 {
                fa[(ix, iy)] = (ix * 7 + iy * 3) as f64 * 0.37 - 2.0;
                fb[(ix, iy)] = (ix as f64 * 1.3).sin() + iy as f64;
            }
        }
        for p in [
            Point::new(0.0, 0.0),
            Point::new(3.2, 48.7),
            Point::new(55.5, 25.1),
            Point::new(99.99, 0.01),
            Point::new(-4.0, 60.0),
        ] {
            let (a, b) = g.sample_bilinear2(&fa, &fb, p);
            assert_eq!(a.to_bits(), g.sample_bilinear(&fa, p).to_bits());
            assert_eq!(b.to_bits(), g.sample_bilinear(&fb, p).to_bits());
        }
    }

    #[test]
    fn bilinear_linear_ramp_exact_inside() {
        let g = grid();
        // field value = x coordinate of bin center
        let mut f = Map2d::new(10, 5);
        for iy in 0..5 {
            for ix in 0..10 {
                f[(ix, iy)] = g.bin_center(ix, iy).x;
            }
        }
        // Interior point: bilinear reproduces linear functions exactly.
        let p = Point::new(42.0, 25.0);
        assert!((g.sample_bilinear(&f, p) - 42.0).abs() < 1e-9);
    }
}
