//! Planar geometry primitives used throughout the placement stack.
//!
//! All coordinates are in microns stored as `f64`. Analytical global
//! placement works in continuous space, so a floating representation is the
//! natural choice; fixed structures (die, rows, rails) simply carry integral
//! values.

use std::fmt;

/// A point in the placement plane (microns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in microns.
    pub x: f64,
    /// Vertical coordinate in microns.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// ```
    /// use rdp_db::Point;
    /// let p = Point::new(3.0, 4.0);
    /// assert_eq!(p.norm(), 5.0);
    /// ```
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean length of the vector from the origin to this point.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Component-wise addition.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Dot product treating both points as vectors.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Scales both components by `s`.
    pub fn scale(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }

    /// Returns the unit vector in this direction, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, `lo` inclusive, `hi` exclusive by convention.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x0 > x1` or `y0 > y1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        debug_assert!(x0 <= x1 && y0 <= y1, "malformed rect {x0},{y0},{x1},{y1}");
        Rect {
            lo: Point::new(x0, y0),
            hi: Point::new(x1, y1),
        }
    }

    /// Creates a rectangle centered at `c` with the given width and height.
    pub fn centered(c: Point, w: f64, h: f64) -> Self {
        Rect::new(c.x - w / 2.0, c.y - h / 2.0, c.x + w / 2.0, c.y + h / 2.0)
    }

    /// Width (always non-negative).
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height (always non-negative).
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2.0, (self.lo.y + self.hi.y) / 2.0)
    }

    /// Whether the point lies inside (lo-inclusive, hi-exclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// Overlap area with another rectangle (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x)).max(0.0);
        let h = (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y)).max(0.0);
        w * h
    }

    /// Whether the two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// Rectangle expanded by `f` of its own dimensions on every side
    /// (`f = 0.1` grows a 10 × 10 rect to 12 × 12, i.e. by 10 % per side,
    /// matching the macro-bounding-box expansion of the paper's Fig. 4).
    pub fn expanded_fraction(&self, f: f64) -> Rect {
        let dx = self.width() * f;
        let dy = self.height() * f;
        Rect::new(
            self.lo.x - dx,
            self.lo.y - dy,
            self.hi.x + dx,
            self.hi.y + dy,
        )
    }

    /// Rectangle expanded by an absolute margin on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect::new(
            self.lo.x - margin,
            self.lo.y - margin,
            self.hi.x + margin,
            self.hi.y + margin,
        )
    }

    /// Clamps a point into the rectangle (hi-exclusive by a tiny epsilon so
    /// the result always satisfies [`Rect::contains`]).
    pub fn clamp_point(&self, p: Point) -> Point {
        let eps = 1e-9 * (1.0 + self.width().max(self.height()));
        Point::new(
            p.x.clamp(self.lo.x, (self.hi.x - eps).max(self.lo.x)),
            p.y.clamp(self.lo.y, (self.hi.y - eps).max(self.lo.y)),
        )
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.lo.x.min(other.lo.x),
            self.lo.y.min(other.lo.y),
            self.hi.x.max(other.hi.x),
            self.hi.y.max(other.hi.y),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.lo, self.hi)
    }
}

/// Orientation of a one-dimensional structure (row, rail, routing layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Horizontal: extends in x.
    Horizontal,
    /// Vertical: extends in y.
    Vertical,
}

impl Dir {
    /// The perpendicular direction.
    pub fn perp(self) -> Dir {
        match self {
            Dir::Horizontal => Dir::Vertical,
            Dir::Vertical => Dir::Horizontal,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Horizontal => write!(f, "H"),
            Dir::Vertical => write!(f, "V"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arith() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!((b - a), Point::new(3.0, 4.0));
        assert_eq!((b - a).norm(), 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!((a + b), Point::new(5.0, 8.0));
        assert_eq!(a.dot(b), 16.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point::new(0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn rect_basics() {
        let r = Rect::new(0.0, 0.0, 10.0, 4.0);
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 40.0);
        assert_eq!(r.center(), Point::new(5.0, 2.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(10.0, 2.0)));
    }

    #[test]
    fn rect_overlap() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.overlap_area(&b), 4.0);
        assert!(a.intersects(&b));
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn rect_touching_edges_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(4.0, 0.0, 8.0, 4.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn rect_expansion_fraction() {
        let r = Rect::new(10.0, 10.0, 20.0, 30.0);
        let e = r.expanded_fraction(0.1);
        assert!((e.width() - 12.0).abs() < 1e-12);
        assert!((e.height() - 24.0).abs() < 1e-12);
        assert_eq!(e.center(), r.center());
    }

    #[test]
    fn rect_clamp_point_stays_inside() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let p = r.clamp_point(Point::new(50.0, -3.0));
        assert!(r.contains(p));
        let q = r.clamp_point(Point::new(5.0, 5.0));
        assert_eq!(q, Point::new(5.0, 5.0));
    }

    #[test]
    fn rect_union_covers_both() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(5.0, -1.0, 6.0, 1.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, -1.0, 6.0, 2.0));
    }

    #[test]
    fn dir_perp() {
        assert_eq!(Dir::Horizontal.perp(), Dir::Vertical);
        assert_eq!(Dir::Vertical.perp(), Dir::Horizontal);
        assert_eq!(format!("{}/{}", Dir::Horizontal, Dir::Vertical), "H/V");
    }
}
