//! Netlist entities: cells, pins, and nets.
//!
//! A circuit is the hypergraph `H = (V, E)` of Section II-A: cells are the
//! vertices, nets the hyperedges, and pins tie a net to a location on a
//! cell (an offset from the cell center).

use crate::geom::Point;
use crate::ids::{CellId, NetId, PinId};

/// What kind of physical object a cell is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A movable standard cell sitting in a row.
    Std,
    /// A macro block (typically fixed, much larger than row height).
    Macro,
    /// A fixed terminal (I/O pad); zero placement area.
    Terminal,
}

/// A cell: a standard cell, macro block, or fixed terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name (unique within a design).
    pub name: String,
    /// Physical kind.
    pub kind: CellKind,
    /// Width in microns.
    pub w: f64,
    /// Height in microns.
    pub h: f64,
    /// Whether the placer may move this cell.
    pub fixed: bool,
}

impl Cell {
    /// Creates a movable standard cell.
    pub fn std(name: impl Into<String>, w: f64, h: f64) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Std,
            w,
            h,
            fixed: false,
        }
    }

    /// Creates a fixed macro block.
    pub fn fixed_macro(name: impl Into<String>, w: f64, h: f64) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Macro,
            w,
            h,
            fixed: true,
        }
    }

    /// Creates a fixed zero-area terminal (I/O pad).
    pub fn terminal(name: impl Into<String>) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Terminal,
            w: 0.0,
            h: 0.0,
            fixed: true,
        }
    }

    /// Placement area in square microns.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Whether this cell contributes movable area.
    pub fn is_movable(&self) -> bool {
        !self.fixed
    }
}

/// A pin: the attachment of a net to a cell at a fixed offset from the
/// cell center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Net this pin belongs to.
    pub net: NetId,
    /// Offset from the owning cell's center, in microns.
    pub offset: Point,
}

/// A net: a hyperedge connecting two or more pins.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name (unique within a design).
    pub name: String,
    /// Member pins, in arbitrary order.
    pub pins: Vec<PinId>,
    /// Wirelength weight (1.0 for ordinary signal nets).
    pub weight: f64,
}

impl Net {
    /// Creates a unit-weight net with the given pins.
    pub fn new(name: impl Into<String>, pins: Vec<PinId>) -> Self {
        Net {
            name: name.into(),
            pins,
            weight: 1.0,
        }
    }

    /// Pin count (net degree).
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Whether this is a two-pin net — the nets the paper's virtual-cell
    /// net-moving technique (Algorithm 1) applies to.
    pub fn is_two_pin(&self) -> bool {
        self.pins.len() == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_constructors() {
        let c = Cell::std("u1", 1.2, 2.8);
        assert_eq!(c.kind, CellKind::Std);
        assert!(c.is_movable());
        assert!((c.area() - 3.36).abs() < 1e-12);

        let m = Cell::fixed_macro("m0", 100.0, 80.0);
        assert_eq!(m.kind, CellKind::Macro);
        assert!(!m.is_movable());

        let t = Cell::terminal("io0");
        assert_eq!(t.kind, CellKind::Terminal);
        assert_eq!(t.area(), 0.0);
        assert!(t.fixed);
    }

    #[test]
    fn net_degree() {
        let n = Net::new("n0", vec![PinId(0), PinId(1)]);
        assert_eq!(n.degree(), 2);
        assert!(n.is_two_pin());
        assert_eq!(n.weight, 1.0);

        let n3 = Net::new("n1", vec![PinId(0), PinId(1), PinId(2)]);
        assert!(!n3.is_two_pin());
    }
}
