//! Job execution: one flow run under the durability + deadline contract.
//!
//! [`execute_job`] runs a job's flow with the `rdp-core` checkpoint hooks
//! wired to the [`Store`]: every routability iteration persists a
//! [`rdp_core::FlowCheckpoint`] and the running record (with its
//! consumed-time accounting) atomically, then polls the interrupt for
//! cancellation, drain, and the wall-clock deadline. The worker thread is
//! panic-proof: the whole run executes under `catch_unwind`, and a panic
//! surfaces as a typed [`RdpError::Internal`] on the job, never a dead
//! worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rdp_core::{run_flow_with, FlowCheckpoint, FlowControl};
use rdp_db::Design;
use rdp_guard::RdpError;
use rdp_obs::Collector;

use crate::job::{flow_config, retryable, JobRecord, JobResult, JobSpec, JobState};
use crate::store::Store;

/// Live progress of a running job, updated at each checkpoint boundary
/// and read by `status` / `stream` responses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Progress {
    /// Next routability iteration the flow will execute.
    pub route_iter: u64,
    /// HPWL after the last completed iteration (0 before the first).
    pub hpwl: f64,
    /// Routing overflow after the last completed iteration.
    pub overflow: f64,
}

/// Shared handle the server uses to observe and cancel a running job.
#[derive(Debug, Default)]
pub struct JobControl {
    /// Set by a client `cancel`; honored at the next checkpoint boundary.
    pub cancel: AtomicBool,
    /// Latest checkpoint-boundary progress.
    pub progress: Mutex<Progress>,
    /// The running attempt's in-flight collector (disabled unless the
    /// spec asked for capture). `stats`/`watch` read convergence series
    /// and drop accounting from it — read-side snapshots only, so an
    /// observed job stays bitwise identical to an unobserved one.
    pub obs: Mutex<Collector>,
}

/// Why [`execute_job`] stopped.
#[derive(Debug)]
pub enum Disposition {
    /// The flow completed; record the result.
    Done(Box<JobResult>),
    /// A retryable error with retry budget left: requeue with
    /// `attempt + 1` and a fresh (damped) start.
    Retry(RdpError),
    /// Terminal failure.
    Failed(RdpError),
    /// Cancelled by a client.
    Cancelled(String),
    /// Interrupted by drain: requeue with the checkpoint preserved so the
    /// next incarnation resumes bitwise.
    Requeue,
}

/// Outcome of one [`execute_job`] call.
#[derive(Debug)]
pub struct ExecOutcome {
    /// What happened.
    pub disposition: Disposition,
    /// Total wall-clock milliseconds consumed by the job across all
    /// attempts and incarnations (previous `consumed_ms` + this run).
    pub consumed_ms: u64,
}

/// Resolves a job input spec to a design (same grammar as the CLI):
/// suite name, `bookshelf:DIR:BASE`, or `lefdef:LEF:DEF`.
pub fn resolve_input(spec: &str, obs: &Collector) -> Result<Design, RdpError> {
    if let Some(rem) = spec.strip_prefix("bookshelf:") {
        let (dir, base) = rem.split_once(':').ok_or_else(|| RdpError::Config {
            detail: "bookshelf input must be bookshelf:DIR:BASE".into(),
        })?;
        return rdp_parse::load_bookshelf_obs(Path::new(dir), base, obs).map_err(|e| {
            RdpError::Parse {
                context: format!("bookshelf {dir}/{base}"),
                line: None,
                message: e.to_string(),
            }
        });
    }
    if let Some(rem) = spec.strip_prefix("lefdef:") {
        let (lef, def) = rem.split_once(':').ok_or_else(|| RdpError::Config {
            detail: "lefdef input must be lefdef:LEF_PATH:DEF_PATH".into(),
        })?;
        let read = |path: &str| {
            std::fs::read_to_string(path).map_err(|e| RdpError::Parse {
                context: path.to_string(),
                line: None,
                message: e.to_string(),
            })
        };
        let files = rdp_parse::LefDefFiles {
            lef: read(lef)?,
            def: read(def)?,
        };
        return rdp_parse::read_lefdef_obs(&files, obs).map_err(RdpError::from);
    }
    rdp_gen::generate_named_obs(spec, obs).ok_or_else(|| RdpError::Config {
        detail: format!("`{spec}` is not a suite design or bookshelf:/lefdef: input"),
    })
}

/// How the interrupt hook stopped the flow (distinguishes the three
/// abort paths that all surface as `Err` from `run_flow_with`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum StopCause {
    Cancel,
    Drain,
    Deadline,
}

/// Runs one attempt of `rec`'s job. `drain` is the server-wide drain
/// flag. Persistence failures during the run degrade to warnings on
/// stderr (the flow result is still correct; only crash-resume fidelity
/// of *this incarnation* is reduced).
pub fn execute_job(
    store: &Store,
    rec: &JobRecord,
    ctl: &JobControl,
    drain: &AtomicBool,
) -> ExecOutcome {
    let consumed0 = rec.consumed_ms;
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| run_attempt(store, rec, ctl, drain)));
    let consumed_ms = consumed0 + start.elapsed().as_millis() as u64;
    let disposition = match result {
        Ok(d) => d,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Disposition::Failed(RdpError::internal(format!(
                "job {} panicked: {msg}",
                rec.id
            )))
        }
    };
    ExecOutcome {
        disposition,
        consumed_ms,
    }
}

fn run_attempt(
    store: &Store,
    rec: &JobRecord,
    ctl: &JobControl,
    drain: &AtomicBool,
) -> Disposition {
    let spec = &rec.spec;
    let id = rec.id;

    // Budget check before spending anything: a job that already consumed
    // its whole deadline across previous incarnations fails immediately.
    if let Some(budget) = spec.deadline_ms {
        if rec.consumed_ms >= budget && budget > 0 {
            return Disposition::Failed(RdpError::Deadline {
                detail: format!("job {id} exhausted its budget before this attempt"),
                elapsed_ms: rec.consumed_ms,
                budget_ms: budget,
            });
        }
    }

    let cfg = match flow_config(spec, rec.attempt) {
        Ok(cfg) => cfg,
        Err(e) => return Disposition::Failed(e),
    };
    let obs = if spec.capture {
        Collector::enabled()
    } else {
        Collector::disabled()
    };
    // Publish the attempt's collector so `stats`/`watch` can read live
    // series while the flow runs (a clone shares the same Arc'd state).
    *ctl.obs.lock().unwrap() = obs.clone();
    let mut design = match resolve_input(&spec.input, &obs) {
        Ok(d) => d,
        Err(e) => return Disposition::Failed(e),
    };

    // A corrupt checkpoint must not wedge the job: quarantine it and
    // start the attempt fresh (fresh starts reproduce the same final
    // results by determinism; only wall-clock is lost).
    let resume = match store.load_checkpoint(id) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("serve: job {id}: corrupt checkpoint quarantined ({e}); restarting fresh");
            store.quarantine(&store.checkpoint_path(id));
            None
        }
    };

    let consumed0 = rec.consumed_ms;
    let start = Instant::now();
    let stop_cause = std::cell::Cell::new(None::<StopCause>);
    let mut running_rec = rec.clone();
    running_rec.state = JobState::Running;

    let mut on_checkpoint = |cp: &FlowCheckpoint| {
        if let Err(e) = store.persist_checkpoint(id, &cp.to_bytes()) {
            eprintln!("serve: job {id}: checkpoint persist failed: {e}");
        }
        running_rec.consumed_ms = consumed0 + start.elapsed().as_millis() as u64;
        if let Err(e) = store.persist_record_relaxed(&running_rec) {
            eprintln!("serve: job {id}: record persist failed: {e}");
        }
        let mut p = ctl.progress.lock().unwrap();
        p.route_iter = cp.next_route_iter as u64;
        if let Some(last) = cp.log.last() {
            p.hpwl = last.hpwl;
            p.overflow = last.overflow;
        }
    };
    let mut interrupt = |_iter: usize| -> Option<RdpError> {
        if ctl.cancel.load(Ordering::Relaxed) {
            stop_cause.set(Some(StopCause::Cancel));
            return Some(RdpError::Cancelled {
                detail: format!("job {id} cancelled by client"),
            });
        }
        if drain.load(Ordering::Relaxed) {
            stop_cause.set(Some(StopCause::Drain));
            return Some(RdpError::Cancelled {
                detail: format!("job {id} interrupted by server drain"),
            });
        }
        if let Some(budget) = spec.deadline_ms {
            let elapsed = consumed0 + start.elapsed().as_millis() as u64;
            if elapsed >= budget {
                stop_cause.set(Some(StopCause::Deadline));
                return Some(RdpError::Deadline {
                    detail: format!("job {id} hit its wall-clock budget"),
                    elapsed_ms: elapsed,
                    budget_ms: budget,
                });
            }
        }
        None
    };

    let run = run_flow_with(
        &mut design,
        &cfg,
        FlowControl {
            resume,
            on_checkpoint: Some(&mut on_checkpoint),
            interrupt: Some(&mut interrupt),
            fault: None,
            obs: obs.clone(),
        },
    );

    match run {
        Ok(report) => {
            if spec.capture {
                let trace = rdp_obs::export_jsonl(&obs);
                let metrics = rdp_obs::export_metrics_json(&obs);
                if let Err(e) = store.write_run_artifacts(id, &trace, &metrics) {
                    eprintln!("serve: job {id}: run-dir capture failed: {e}");
                }
            }
            Disposition::Done(Box::new(JobResult {
                hpwl: report.hpwl,
                density_overflow: report.density_overflow,
                gp_iterations: report.gp_iterations as u64,
                route_iterations: report.route_iterations as u64,
                place_seconds: report.place_seconds,
                warnings: report.warnings.iter().map(|w| w.to_string()).collect(),
                positions: design.positions().to_vec(),
            }))
        }
        Err(e) => match stop_cause.get() {
            Some(StopCause::Drain) => Disposition::Requeue,
            Some(StopCause::Cancel) => Disposition::Cancelled(e.to_string()),
            Some(StopCause::Deadline) => Disposition::Failed(e),
            None => {
                if retryable(&e) && rec.attempt < spec.max_retries {
                    Disposition::Retry(e)
                } else {
                    Disposition::Failed(e)
                }
            }
        },
    }
}

/// A sanity wrapper used by tests and the bench: run a spec end to end
/// without a server, exactly as a worker would on attempt 0 (no
/// checkpoint persistence). The reference for bitwise comparisons.
pub fn reference_run(spec: &JobSpec) -> Result<(JobResult, Design), RdpError> {
    let cfg = flow_config(spec, 0)?;
    let obs = Collector::disabled();
    let mut design = resolve_input(&spec.input, &obs)?;
    let report = run_flow_with(&mut design, &cfg, FlowControl::default())?;
    Ok((
        JobResult {
            hpwl: report.hpwl,
            density_overflow: report.density_overflow,
            gp_iterations: report.gp_iterations as u64,
            route_iterations: report.route_iterations as u64,
            place_seconds: report.place_seconds,
            warnings: report.warnings.iter().map(|w| w.to_string()).collect(),
            positions: design.positions().to_vec(),
        },
        design,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn store(tag: &str) -> (Store, std::path::PathBuf) {
        let root =
            std::env::temp_dir().join(format!("rdp-serve-worker-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        (Store::open(&root).unwrap(), root)
    }

    fn small_spec() -> JobSpec {
        JobSpec {
            input: "fft_1".into(),
            preset: "ours".into(),
            fast: true,
            gp_max_iters: Some(40),
            max_route_iters: Some(2),
            gp_iters_per_route: Some(4),
            ..JobSpec::default()
        }
    }

    #[test]
    fn job_completes_and_matches_the_reference_bitwise() {
        let (store, root) = store("done");
        let rec = JobRecord::queued(1, small_spec());
        let ctl = JobControl::default();
        let out = execute_job(&store, &rec, &ctl, &AtomicBool::new(false));
        let Disposition::Done(result) = out.disposition else {
            panic!("expected Done, got {:?}", out.disposition);
        };
        let (reference, _) = reference_run(&rec.spec).unwrap();
        assert_eq!(result.hpwl.to_bits(), reference.hpwl.to_bits());
        assert_eq!(result.positions, reference.positions);
        assert!(out.consumed_ms > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_deadline_fails_typed_at_the_first_checkpoint() {
        let (store, root) = store("deadline");
        let mut spec = small_spec();
        spec.deadline_ms = Some(1);
        let rec = JobRecord::queued(2, spec);
        let ctl = JobControl::default();
        let out = execute_job(&store, &rec, &ctl, &AtomicBool::new(false));
        match out.disposition {
            Disposition::Failed(RdpError::Deadline { budget_ms, .. }) => {
                assert_eq!(budget_ms, 1)
            }
            other => panic!("expected Deadline failure, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn pre_cancelled_job_stops_at_the_first_checkpoint() {
        let (store, root) = store("cancel");
        let rec = JobRecord::queued(3, small_spec());
        let ctl = JobControl::default();
        ctl.cancel.store(true, Ordering::Relaxed);
        let out = execute_job(&store, &rec, &ctl, &AtomicBool::new(false));
        assert!(matches!(out.disposition, Disposition::Cancelled(_)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drain_requeues_and_the_resumed_job_is_bitwise() {
        let (store, root) = store("drain");
        let rec = JobRecord::queued(4, small_spec());
        let ctl = JobControl::default();
        let drain = AtomicBool::new(true);
        let out = execute_job(&store, &rec, &ctl, &drain);
        assert!(matches!(out.disposition, Disposition::Requeue));
        // The checkpoint persisted at iteration 1 resumes to the
        // reference's exact results.
        assert!(store.load_checkpoint(4).unwrap().is_some());
        drain.store(false, Ordering::Relaxed);
        let out2 = execute_job(&store, &rec, &ctl, &drain);
        let Disposition::Done(result) = out2.disposition else {
            panic!("expected Done after resume, got {:?}", out2.disposition);
        };
        let (reference, _) = reference_run(&rec.spec).unwrap();
        assert_eq!(result.hpwl.to_bits(), reference.hpwl.to_bits());
        assert_eq!(result.positions, reference.positions);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_input_fails_fast_with_a_config_error() {
        let (store, root) = store("badinput");
        let rec = JobRecord::queued(
            5,
            JobSpec {
                input: "no_such_design".into(),
                ..JobSpec::default()
            },
        );
        let ctl = JobControl::default();
        let out = execute_job(&store, &rec, &ctl, &AtomicBool::new(false));
        assert!(matches!(
            out.disposition,
            Disposition::Failed(RdpError::Config { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
