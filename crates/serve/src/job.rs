//! Job model: specs, states, durable records, retry policy.
//!
//! A [`JobRecord`] is the unit of durability — one versioned,
//! FNV-1a-checksummed `RDPSNAP` record per job, rewritten atomically on
//! every state transition. The queue itself is implicit: recovery scans
//! the records and replays them in ascending job-id order, so there is no
//! separate queue file that could tear mid-write.

use rdp_core::{PlacerPreset, RoutabilityConfig};
use rdp_db::Point;
use rdp_guard::{RdpError, SnapshotReader, SnapshotWriter};
use rdp_obs::json::{self, Value};

/// A JSON string literal: quoted + escaped.
pub(crate) fn jstr(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

/// Job lifecycle: `Queued → Running → Done | Failed | Cancelled`. A
/// `Running` record found on disk at startup means the server died
/// mid-job; recovery requeues it (its checkpoint, if any, resumes the
/// flow bitwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing the flow.
    Running,
    /// Completed; the record carries a [`JobResult`].
    Done,
    /// Failed terminally; the record carries the error kind and detail.
    Failed,
    /// Cancelled by a client (or found cancelled on disk).
    Cancelled,
}

impl JobState {
    /// True for states no worker will touch again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable lowercase label (wire protocol and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn code(self) -> u64 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }
    }

    fn from_code(c: u64) -> Result<Self, RdpError> {
        Ok(match c {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            other => return Err(RdpError::checkpoint(format!("unknown job state {other}"))),
        })
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What to place and under which policy. The submit request carries this
/// verbatim; it is embedded in the durable record so a restarted server
/// re-runs exactly what was asked.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Input spec: a suite design name, `bookshelf:DIR:BASE`, or
    /// `lefdef:LEF:DEF` (same grammar as the CLI).
    pub input: String,
    /// Preset name: `xplace`, `xplace-route`, or `ours`.
    pub preset: String,
    /// Use the CI-sized fast preset variant.
    pub fast: bool,
    /// Capture a run directory (trace.jsonl + metrics.json) next to the
    /// job record, compatible with `rdp report` / `rdp diff`.
    pub capture: bool,
    /// Route incrementally between iterations (checkpointing forces a
    /// resync per iteration, so recovery stays bitwise).
    pub incremental: bool,
    /// Wall-clock budget in milliseconds, enforced at checkpoint
    /// boundaries and accumulated across restarts. `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// Retry budget for retryable errors (divergence after rollback
    /// exhaustion); each retry re-runs with a damped configuration.
    pub max_retries: u32,
    /// Override `max_route_iters` when set.
    pub max_route_iters: Option<u64>,
    /// Override the wirelength-phase iteration cap when set.
    pub gp_max_iters: Option<u64>,
    /// Override the Nesterov steps per routability iteration when set.
    pub gp_iters_per_route: Option<u64>,
    /// Override the incremental-router full-resync cadence when set.
    pub incremental_resync_every: Option<u64>,
    /// Override the incremental-router drift fraction when set.
    pub incremental_drift_frac: Option<f64>,
    /// Enable the online-learned congestion predictor (`--predict`).
    pub predict: bool,
    /// Override the predictor drift gate when set (requires `predict`).
    pub predict_drift_tol: Option<f64>,
    /// Override the predictor warmup route count when set (requires
    /// `predict`).
    pub predict_warmup: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            input: String::new(),
            preset: "ours".into(),
            fast: false,
            capture: false,
            incremental: false,
            deadline_ms: None,
            max_retries: 0,
            max_route_iters: None,
            gp_max_iters: None,
            gp_iters_per_route: None,
            incremental_resync_every: None,
            incremental_drift_frac: None,
            predict: false,
            predict_drift_tol: None,
            predict_warmup: None,
        }
    }
}

impl JobSpec {
    /// Serializes as the `spec` object of a submit request.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"input\":{},\"preset\":{},\"fast\":{},\"capture\":{},\"incremental\":{},\"predict\":{},\"max_retries\":{}",
            jstr(&self.input),
            jstr(&self.preset),
            self.fast,
            self.capture,
            self.incremental,
            self.predict,
            self.max_retries
        );
        for (key, v) in [
            ("deadline_ms", self.deadline_ms),
            ("max_route_iters", self.max_route_iters),
            ("gp_max_iters", self.gp_max_iters),
            ("gp_iters_per_route", self.gp_iters_per_route),
            ("incremental_resync_every", self.incremental_resync_every),
            ("predict_warmup", self.predict_warmup),
        ] {
            if let Some(v) = v {
                out.push_str(&format!(",\"{key}\":{v}"));
            }
        }
        for (key, v) in [
            ("incremental_drift_frac", self.incremental_drift_frac),
            ("predict_drift_tol", self.predict_drift_tol),
        ] {
            if let Some(v) = v {
                out.push_str(&format!(",\"{key}\":{}", json::num(v)));
            }
        }
        out.push('}');
        out
    }

    /// Parses the `spec` object of a submit request. Malformed specs are
    /// typed `Protocol` errors (the *content* is validated again by
    /// [`flow_config`] at execution time).
    pub fn from_json(v: &Value) -> Result<Self, RdpError> {
        let input = v
            .get("input")
            .and_then(Value::as_str)
            .ok_or_else(|| RdpError::protocol("spec needs a string `input`"))?
            .to_string();
        let take_u64 = |key: &str| -> Result<Option<u64>, RdpError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => Ok(Some(*n as u64)),
                Some(_) => Err(RdpError::protocol(format!(
                    "spec field `{key}` must be a non-negative integer"
                ))),
            }
        };
        let take_f64 = |key: &str| -> Result<Option<f64>, RdpError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::Num(n)) if n.is_finite() => Ok(Some(*n)),
                Some(_) => Err(RdpError::protocol(format!(
                    "spec field `{key}` must be a finite number"
                ))),
            }
        };
        let take_bool = |key: &str| match v.get(key) {
            Some(Value::Bool(b)) => *b,
            _ => false,
        };
        Ok(JobSpec {
            input,
            preset: v
                .get("preset")
                .and_then(Value::as_str)
                .unwrap_or("ours")
                .to_string(),
            fast: take_bool("fast"),
            capture: take_bool("capture"),
            incremental: take_bool("incremental"),
            deadline_ms: take_u64("deadline_ms")?,
            max_retries: take_u64("max_retries")?.unwrap_or(0) as u32,
            max_route_iters: take_u64("max_route_iters")?,
            gp_max_iters: take_u64("gp_max_iters")?,
            gp_iters_per_route: take_u64("gp_iters_per_route")?,
            incremental_resync_every: take_u64("incremental_resync_every")?,
            incremental_drift_frac: take_f64("incremental_drift_frac")?,
            predict: take_bool("predict"),
            predict_drift_tol: take_f64("predict_drift_tol")?,
            predict_warmup: take_u64("predict_warmup")?,
        })
    }
}

/// Final numbers of a completed job. Floats cross the wire through the
/// shortest-round-trip formatter, so `hpwl`, `density_overflow`, and the
/// positions are recovered **bitwise** by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Final HPWL in microns.
    pub hpwl: f64,
    /// Final density overflow.
    pub density_overflow: f64,
    /// Wirelength-phase iterations.
    pub gp_iterations: u64,
    /// Routability iterations.
    pub route_iterations: u64,
    /// Placement wall-clock of the *final* attempt in seconds
    /// (informational; not part of the determinism contract).
    pub place_seconds: f64,
    /// Degraded-mode warnings, as display strings.
    pub warnings: Vec<String>,
    /// Final positions of every cell.
    pub positions: Vec<Point>,
}

/// One durable job: spec + lifecycle + outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Monotonically increasing id; queue order is ascending id.
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// What to run.
    pub spec: JobSpec,
    /// Retry attempts consumed so far (0 = first run).
    pub attempt: u32,
    /// Wall-clock milliseconds consumed across all attempts and restarts;
    /// deadlines are enforced against this total, so a crash-restart
    /// cycle cannot launder a job's budget.
    pub consumed_ms: u64,
    /// Terminal error as `(kind, detail)` when `state == Failed`.
    pub error: Option<(String, String)>,
    /// Result when `state == Done`.
    pub result: Option<JobResult>,
}

impl JobRecord {
    /// Current record format version. Version 1 records (pre-predictor)
    /// are still readable; their predictor and incremental-tuning fields
    /// default off, matching the behavior those jobs actually ran with.
    pub const VERSION: u32 = 2;

    /// A fresh queued record.
    pub fn queued(id: u64, spec: JobSpec) -> Self {
        JobRecord {
            id,
            state: JobState::Queued,
            spec,
            attempt: 0,
            consumed_ms: 0,
            error: None,
            result: None,
        }
    }

    /// Serializes into the versioned, checksummed `RDPSNAP` format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(Self::VERSION);
        w.put_u64(self.id);
        w.put_u64(self.state.code());
        w.put_u64(self.attempt as u64);
        w.put_u64(self.consumed_ms);
        let s = &self.spec;
        w.put_str(&s.input);
        w.put_str(&s.preset);
        w.put_u64(s.fast as u64);
        w.put_u64(s.capture as u64);
        w.put_u64(s.incremental as u64);
        w.put_u64(s.max_retries as u64);
        for opt in [
            s.deadline_ms,
            s.max_route_iters,
            s.gp_max_iters,
            s.gp_iters_per_route,
        ] {
            match opt {
                Some(v) => {
                    w.put_u64(1);
                    w.put_u64(v);
                }
                None => w.put_u64(0),
            }
        }
        w.put_u64(s.predict as u64);
        for opt in [s.incremental_resync_every, s.predict_warmup] {
            match opt {
                Some(v) => {
                    w.put_u64(1);
                    w.put_u64(v);
                }
                None => w.put_u64(0),
            }
        }
        for opt in [s.incremental_drift_frac, s.predict_drift_tol] {
            match opt {
                Some(v) => {
                    w.put_u64(1);
                    w.put_f64(v);
                }
                None => w.put_u64(0),
            }
        }
        match &self.error {
            Some((kind, detail)) => {
                w.put_u64(1);
                w.put_str(kind);
                w.put_str(detail);
            }
            None => w.put_u64(0),
        }
        match &self.result {
            Some(r) => {
                w.put_u64(1);
                w.put_f64(r.hpwl);
                w.put_f64(r.density_overflow);
                w.put_u64(r.gp_iterations);
                w.put_u64(r.route_iterations);
                w.put_f64(r.place_seconds);
                w.put_u64(r.warnings.len() as u64);
                for warn in &r.warnings {
                    w.put_str(warn);
                }
                w.put_points(&r.positions);
            }
            None => w.put_u64(0),
        }
        w.finish()
    }

    /// Deserializes [`JobRecord::to_bytes`] output, validating magic,
    /// version, checksum, and exact length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RdpError> {
        let mut r = SnapshotReader::new(bytes, Self::VERSION)?;
        let version = r.version();
        let id = r.take_u64()?;
        let state = JobState::from_code(r.take_u64()?)?;
        let attempt = r.take_u64()? as u32;
        let consumed_ms = r.take_u64()?;
        let input = r.take_str()?;
        let preset = r.take_str()?;
        let fast = r.take_u64()? != 0;
        let capture = r.take_u64()? != 0;
        let incremental = r.take_u64()? != 0;
        let max_retries = r.take_u64()? as u32;
        let mut opts = [None; 4];
        for opt in opts.iter_mut() {
            *opt = match r.take_u64()? {
                0 => None,
                _ => Some(r.take_u64()?),
            };
        }
        let mut predict = false;
        let mut u_opts = [None; 2];
        let mut f_opts = [None; 2];
        if version >= 2 {
            predict = r.take_u64()? != 0;
            for opt in u_opts.iter_mut() {
                *opt = match r.take_u64()? {
                    0 => None,
                    _ => Some(r.take_u64()?),
                };
            }
            for opt in f_opts.iter_mut() {
                *opt = match r.take_u64()? {
                    0 => None,
                    _ => Some(r.take_f64()?),
                };
            }
        }
        let error = match r.take_u64()? {
            0 => None,
            _ => Some((r.take_str()?, r.take_str()?)),
        };
        let result = match r.take_u64()? {
            0 => None,
            _ => {
                let hpwl = r.take_f64()?;
                let density_overflow = r.take_f64()?;
                let gp_iterations = r.take_u64()?;
                let route_iterations = r.take_u64()?;
                let place_seconds = r.take_f64()?;
                let n_warn = r.take_u64()? as usize;
                if n_warn > bytes.len() {
                    return Err(RdpError::checkpoint(format!(
                        "implausible warning count {n_warn}"
                    )));
                }
                let mut warnings = Vec::with_capacity(n_warn);
                for _ in 0..n_warn {
                    warnings.push(r.take_str()?);
                }
                Some(JobResult {
                    hpwl,
                    density_overflow,
                    gp_iterations,
                    route_iterations,
                    place_seconds,
                    warnings,
                    positions: r.take_points()?,
                })
            }
        };
        r.finish()?;
        Ok(JobRecord {
            id,
            state,
            spec: JobSpec {
                input,
                preset,
                fast,
                capture,
                incremental,
                deadline_ms: opts[0],
                max_retries,
                max_route_iters: opts[1],
                gp_max_iters: opts[2],
                gp_iters_per_route: opts[3],
                incremental_resync_every: u_opts[0],
                incremental_drift_frac: f_opts[0],
                predict,
                predict_drift_tol: f_opts[1],
                predict_warmup: u_opts[1],
            },
            attempt,
            consumed_ms,
            error,
            result,
        })
    }

    /// One status line as a JSON object (used by `status` responses).
    pub fn status_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"state\":{},\"attempt\":{},\"consumed_ms\":{}",
            self.id,
            jstr(self.state.label()),
            self.attempt,
            self.consumed_ms
        );
        if let Some((kind, detail)) = &self.error {
            out.push_str(&format!(
                ",\"kind\":{},\"error\":{}",
                jstr(kind),
                jstr(detail)
            ));
        }
        if let Some(res) = &self.result {
            out.push_str(&format!(
                ",\"hpwl\":{},\"density_overflow\":{},\"gp_iterations\":{},\"route_iterations\":{}",
                json::num(res.hpwl),
                json::num(res.density_overflow),
                res.gp_iterations,
                res.route_iterations
            ));
        }
        out.push('}');
        out
    }
}

/// True when the error class is worth a damped re-run: divergence after
/// rollback exhaustion and non-finite blow-ups respond to a gentler
/// schedule. Everything else — bad input, bad config, protocol noise,
/// deadlines, cancellation, internal panics — fails fast.
pub fn retryable(e: &RdpError) -> bool {
    matches!(e, RdpError::Diverged { .. } | RdpError::NonFinite { .. })
}

/// Builds the flow configuration for a spec at a given retry attempt.
/// Attempt 0 is the submitted configuration; each retry damps the
/// schedule exponentially — λ₁ re-anchoring and density growth halve
/// their distance to 1.0, and the rollback budget doubles — so a job
/// that diverged under aggressive settings converges under calmer ones.
pub fn flow_config(spec: &JobSpec, attempt: u32) -> Result<RoutabilityConfig, RdpError> {
    let preset: PlacerPreset = spec
        .preset
        .parse()
        .map_err(|e: String| RdpError::Config { detail: e })?;
    let mut cfg = if spec.fast {
        RoutabilityConfig::preset_fast(preset)
    } else {
        RoutabilityConfig::preset(preset)
    };
    if let Some(n) = spec.max_route_iters {
        cfg.max_route_iters = n as usize;
    }
    if let Some(n) = spec.gp_max_iters {
        if n == 0 {
            return Err(RdpError::Config {
                detail: "gp_max_iters must be at least 1".into(),
            });
        }
        cfg.gp.max_iters = n as usize;
    }
    if let Some(n) = spec.gp_iters_per_route {
        cfg.gp_iters_per_route = n as usize;
    }
    cfg.incremental_routing = spec.incremental;
    if let Some(n) = spec.incremental_resync_every {
        if n == 0 {
            return Err(RdpError::Config {
                detail: "incremental_resync_every must be at least 1".into(),
            });
        }
        cfg.incremental_resync_every = n as usize;
    }
    if let Some(f) = spec.incremental_drift_frac {
        cfg.incremental_drift_frac = f;
    }
    if spec.predict {
        let mut pc = rdp_core::PredictConfig::default();
        if let Some(tol) = spec.predict_drift_tol {
            pc.drift_tol = tol;
        }
        if let Some(k) = spec.predict_warmup {
            if k == 0 {
                return Err(RdpError::Config {
                    detail: "predict_warmup must be at least 1".into(),
                });
            }
            pc.warmup_routes = k as usize;
        }
        cfg.predict = Some(pc);
    } else if spec.predict_drift_tol.is_some() || spec.predict_warmup.is_some() {
        return Err(RdpError::Config {
            detail: "predict_drift_tol/predict_warmup require predict".into(),
        });
    }
    for _ in 0..attempt {
        cfg.lambda1_rebalance = 1.0 + (cfg.lambda1_rebalance - 1.0) * 0.5;
        cfg.gp.lambda_growth = 1.0 + (cfg.gp.lambda_growth - 1.0) * 0.5;
        cfg.gp.health.max_rollbacks = cfg.gp.health.max_rollbacks.saturating_mul(2).max(1);
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_guard::Stage;

    fn spec() -> JobSpec {
        JobSpec {
            input: "fft_1".into(),
            preset: "ours".into(),
            fast: true,
            capture: true,
            incremental: true,
            deadline_ms: Some(60_000),
            max_retries: 2,
            max_route_iters: Some(3),
            gp_max_iters: Some(80),
            gp_iters_per_route: None,
            incremental_resync_every: Some(8),
            incremental_drift_frac: Some(0.25),
            predict: true,
            predict_drift_tol: Some(0.75),
            predict_warmup: Some(1),
        }
    }

    #[test]
    fn record_roundtrips_through_bytes() {
        let mut rec = JobRecord::queued(42, spec());
        rec.state = JobState::Done;
        rec.attempt = 1;
        rec.consumed_ms = 1234;
        rec.result = Some(JobResult {
            hpwl: 12345.678901234,
            density_overflow: 0.0625,
            gp_iterations: 80,
            route_iterations: 3,
            place_seconds: 1.5,
            warnings: vec!["fell back to RUDY".into()],
            positions: vec![Point::new(1.5, -2.25), Point::new(0.0, 7.0)],
        });
        let back = JobRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(rec, back);

        let failed = JobRecord {
            state: JobState::Failed,
            error: Some(("diverged".into(), "rollbacks exhausted".into())),
            result: None,
            ..rec
        };
        assert_eq!(failed, JobRecord::from_bytes(&failed.to_bytes()).unwrap());
    }

    #[test]
    fn version1_records_parse_with_predictor_defaults_off() {
        // Bytes laid out exactly as the VERSION=1 writer produced them:
        // no predict flag, no tuning options.
        let mut w = SnapshotWriter::new(1);
        w.put_u64(42); // id
        w.put_u64(0); // state: queued
        w.put_u64(0); // attempt
        w.put_u64(0); // consumed_ms
        w.put_str("fft_1");
        w.put_str("ours");
        w.put_u64(1); // fast
        w.put_u64(0); // capture
        w.put_u64(1); // incremental
        w.put_u64(0); // max_retries
        for _ in 0..4 {
            w.put_u64(0); // deadline/iters options absent
        }
        w.put_u64(0); // no error
        w.put_u64(0); // no result
        let rec = JobRecord::from_bytes(&w.finish()).unwrap();
        assert_eq!(rec.id, 42);
        assert!(rec.spec.incremental);
        assert!(!rec.spec.predict);
        assert_eq!(rec.spec.incremental_resync_every, None);
        assert_eq!(rec.spec.incremental_drift_frac, None);
        assert_eq!(rec.spec.predict_drift_tol, None);
        assert_eq!(rec.spec.predict_warmup, None);
    }

    #[test]
    fn corrupt_and_truncated_records_are_typed_errors() {
        let rec = JobRecord::queued(7, spec());
        let mut bytes = rec.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        assert!(JobRecord::from_bytes(&bytes).is_err());
        let whole = rec.to_bytes();
        let err = JobRecord::from_bytes(&whole[..whole.len() - 5]).unwrap_err();
        assert_eq!(err.stage(), Some(Stage::Checkpoint), "{err}");
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = spec();
        let v = json::parse(&s.to_json()).unwrap();
        assert_eq!(JobSpec::from_json(&v).unwrap(), s);

        // Optional fields default.
        let v = json::parse("{\"input\":\"fft_1\"}").unwrap();
        let d = JobSpec::from_json(&v).unwrap();
        assert_eq!(d.preset, "ours");
        assert_eq!(d.deadline_ms, None);
        assert!(!d.fast);

        // Bad field types are typed protocol errors.
        let v = json::parse("{\"input\":\"x\",\"deadline_ms\":\"soon\"}").unwrap();
        assert!(matches!(
            JobSpec::from_json(&v),
            Err(RdpError::Protocol { .. })
        ));
        let v = json::parse("{\"preset\":\"ours\"}").unwrap();
        assert!(JobSpec::from_json(&v).is_err(), "missing input");
    }

    #[test]
    fn retry_damping_calms_the_schedule() {
        let s = JobSpec {
            fast: false,
            ..spec()
        };
        let base = flow_config(&s, 0).unwrap();
        let damped = flow_config(&s, 2).unwrap();
        assert!(damped.lambda1_rebalance < base.lambda1_rebalance);
        assert!(damped.gp.lambda_growth < base.gp.lambda_growth);
        assert!(damped.gp.health.max_rollbacks > base.gp.health.max_rollbacks);
        assert!(damped.lambda1_rebalance > 1.0);
        assert!(damped.gp.lambda_growth > 1.0);
        // Overrides stick.
        assert_eq!(damped.max_route_iters, 3);
        assert_eq!(damped.gp.max_iters, 80);
        assert!(damped.incremental_routing);
        assert_eq!(damped.incremental_resync_every, 8);
        assert_eq!(damped.incremental_drift_frac, 0.25);
        let pc = damped.predict.expect("predict enabled by the spec");
        assert_eq!(pc.drift_tol, 0.75);
        assert_eq!(pc.warmup_routes, 1);

        // Predictor tuning without the predictor itself is a config error.
        let bad = JobSpec {
            predict: false,
            ..spec()
        };
        assert!(matches!(flow_config(&bad, 0), Err(RdpError::Config { .. })));
    }

    #[test]
    fn bad_preset_is_a_config_error_not_retryable() {
        let s = JobSpec {
            preset: "warp-speed".into(),
            ..spec()
        };
        let err = flow_config(&s, 0).unwrap_err();
        assert!(matches!(err, RdpError::Config { .. }), "{err}");
        assert!(!retryable(&err));
        assert!(retryable(&RdpError::Diverged {
            stage: Stage::Routability,
            iteration: 3,
            rollbacks: 8,
            detail: "overflow blew up".into(),
        }));
        assert!(!retryable(&RdpError::internal("panic")));
    }
}
