//! Durable on-disk store: job records, flow checkpoints, run artifacts.
//!
//! Layout under the store root:
//!
//! ```text
//! jobs/job-0000000007.rdpjob      versioned record (RDPSNAP, checksummed)
//! jobs/job-0000000007.ckpt        latest FlowCheckpoint of a running job
//! jobs/job-0000000007.run/        run-dir artifacts when capture is on
//! jobs/*.corrupt                  quarantined unreadable files
//! ```
//!
//! Every write is atomic: bytes land in a `.tmp` sibling, are fsynced,
//! and are renamed into place — a `kill -9` at any instant leaves either
//! the old file, the new file, or a dead `.tmp` that recovery deletes.
//! The queue is implicit: [`Store::scan`] loads records in ascending id
//! order, requeues `running` jobs (the crash evidence), quarantines
//! anything unreadable, and never panics on hostile bytes.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use rdp_core::FlowCheckpoint;
use rdp_guard::RdpError;

use crate::job::{JobRecord, JobState};

/// Extension of durable job records.
const RECORD_EXT: &str = "rdpjob";
/// Extension of persisted flow checkpoints.
const CKPT_EXT: &str = "ckpt";

/// What [`Store::scan`] found and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Records loaded successfully.
    pub recovered: usize,
    /// `running` records demoted back to `queued` (killed mid-job).
    pub requeued_running: usize,
    /// File names renamed to `*.corrupt` (unreadable record/checkpoint).
    pub quarantined: Vec<String>,
    /// Leftover `.tmp` files deleted (torn writes).
    pub cleaned_tmp: usize,
}

impl RecoveryReport {
    /// One-line human summary for server startup logs.
    pub fn summary(&self) -> String {
        format!(
            "recovered {} job(s): {} requeued from running, {} quarantined, {} torn tmp file(s) removed",
            self.recovered,
            self.requeued_running,
            self.quarantined.len(),
            self.cleaned_tmp
        )
    }
}

/// Writes `bytes` to `path` atomically (tmp + fsync + rename).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), RdpError> {
    write_atomic_impl(path, bytes, true)
}

/// Atomic write *without* the fsync: tmp + rename only.
///
/// After a crash the renamed file may hold stale or torn bytes (the
/// rename can reach disk before the data), so this is only for files
/// whose readers verify a checksum and degrade gracefully on mismatch —
/// the per-iteration checkpoint/accounting hot path, where a lost write
/// costs re-computation, never correctness. Authoritative state
/// transitions (submit, claim, settle) use [`write_atomic`].
pub fn write_atomic_relaxed(path: &Path, bytes: &[u8]) -> Result<(), RdpError> {
    write_atomic_impl(path, bytes, false)
}

fn write_atomic_impl(path: &Path, bytes: &[u8], sync: bool) -> Result<(), RdpError> {
    let tmp = tmp_sibling(path);
    let io = |what: &str, e: std::io::Error| {
        RdpError::checkpoint(format!("{what} {}: {e}", path.display()))
    };
    {
        let mut f = File::create(&tmp).map_err(|e| io("create", e))?;
        f.write_all(bytes).map_err(|e| io("write", e))?;
        if sync {
            f.sync_all().map_err(|e| io("sync", e))?;
        }
    }
    fs::rename(&tmp, path).map_err(|e| io("rename", e))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// The durable store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    jobs: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: &Path) -> Result<Store, RdpError> {
        let jobs = root.join("jobs");
        fs::create_dir_all(&jobs)
            .map_err(|e| RdpError::checkpoint(format!("create {}: {e}", jobs.display())))?;
        Ok(Store { jobs })
    }

    /// Path of a job's record file.
    pub fn record_path(&self, id: u64) -> PathBuf {
        self.jobs.join(format!("job-{id:010}.{RECORD_EXT}"))
    }

    /// Path of a job's checkpoint file.
    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.jobs.join(format!("job-{id:010}.{CKPT_EXT}"))
    }

    /// Path of a job's run-dir (artifacts for `rdp report` / `rdp diff`).
    pub fn run_dir(&self, id: u64) -> PathBuf {
        self.jobs.join(format!("job-{id:010}.run"))
    }

    /// Persists a record atomically.
    pub fn persist_record(&self, rec: &JobRecord) -> Result<(), RdpError> {
        write_atomic(&self.record_path(rec.id), &rec.to_bytes())
    }

    /// Persists a flow checkpoint atomically. Checkpoints skip the
    /// fsync: they are written once per routability iteration, and a
    /// checkpoint lost (or torn) in a crash only means the job restarts
    /// fresh — [`Store::load_checkpoint`] checksums every read and the
    /// flow is deterministic, so the final result is bitwise-identical
    /// either way.
    pub fn persist_checkpoint(&self, id: u64, bytes: &[u8]) -> Result<(), RdpError> {
        write_atomic_relaxed(&self.checkpoint_path(id), bytes)
    }

    /// Persists a record atomically without the fsync — only for the
    /// per-checkpoint `consumed_ms` accounting rewrite of a `running`
    /// record, where a write lost in a crash merely under-counts the
    /// wall-clock budget by one checkpoint interval.
    pub fn persist_record_relaxed(&self, rec: &JobRecord) -> Result<(), RdpError> {
        write_atomic_relaxed(&self.record_path(rec.id), &rec.to_bytes())
    }

    /// Loads a job's checkpoint. `Ok(None)` when none exists; a corrupt
    /// checkpoint is a typed error (callers quarantine and start fresh).
    pub fn load_checkpoint(&self, id: u64) -> Result<Option<FlowCheckpoint>, RdpError> {
        let path = self.checkpoint_path(id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(RdpError::checkpoint(format!(
                    "read {}: {e}",
                    path.display()
                )))
            }
        };
        FlowCheckpoint::from_bytes(&bytes).map(Some)
    }

    /// Removes a job's checkpoint (job finished or retries from scratch).
    pub fn remove_checkpoint(&self, id: u64) {
        let _ = fs::remove_file(self.checkpoint_path(id));
    }

    /// Renames an unreadable file to `<name>.corrupt` so it stops
    /// poisoning recovery but remains available for forensics. Returns
    /// the file name that was quarantined.
    pub fn quarantine(&self, path: &Path) -> String {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let mut os = path.as_os_str().to_os_string();
        os.push(".corrupt");
        let _ = fs::rename(path, PathBuf::from(os));
        name
    }

    /// Writes run-dir artifacts atomically (used when a job captures).
    pub fn write_run_artifacts(
        &self,
        id: u64,
        trace_jsonl: &str,
        metrics_json: &str,
    ) -> Result<(), RdpError> {
        let dir = self.run_dir(id);
        fs::create_dir_all(&dir)
            .map_err(|e| RdpError::checkpoint(format!("create {}: {e}", dir.display())))?;
        write_atomic(&dir.join("trace.jsonl"), trace_jsonl.as_bytes())?;
        write_atomic(&dir.join("metrics.json"), metrics_json.as_bytes())
    }

    /// Scans the store: loads every record in ascending id order,
    /// requeues `running` jobs, deletes torn `.tmp` files, quarantines
    /// unreadable records and checkpoints. Never panics on hostile bytes.
    pub fn scan(&self) -> Result<(BTreeMap<u64, JobRecord>, RecoveryReport), RdpError> {
        let mut report = RecoveryReport::default();
        let mut records = BTreeMap::new();
        let entries = fs::read_dir(&self.jobs)
            .map_err(|e| RdpError::checkpoint(format!("read {}: {e}", self.jobs.display())))?;
        let mut record_files: Vec<PathBuf> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // A torn write: the rename never happened, the real file
                // (if any) is intact. Safe to delete.
                let _ = fs::remove_file(&path);
                report.cleaned_tmp += 1;
            } else if name.ends_with(&format!(".{RECORD_EXT}")) {
                record_files.push(path);
            }
        }
        record_files.sort();
        for path in record_files {
            let rec = fs::read(&path)
                .map_err(|e| RdpError::checkpoint(format!("read {}: {e}", path.display())))
                .and_then(|bytes| JobRecord::from_bytes(&bytes));
            let mut rec = match rec {
                Ok(rec) => rec,
                Err(_) => {
                    report.quarantined.push(self.quarantine(&path));
                    continue;
                }
            };
            if rec.state == JobState::Running {
                // The server died mid-job. Requeue; a persisted checkpoint
                // resumes the flow bitwise, a missing one restarts it —
                // both produce the uninterrupted run's exact results.
                rec.state = JobState::Queued;
                report.requeued_running += 1;
                self.persist_record(&rec)?;
            }
            report.recovered += 1;
            records.insert(rec.id, rec);
        }
        // Validate checkpoints of queued jobs up front so a corrupt one is
        // quarantined once at startup instead of failing the job later.
        let ids: Vec<u64> = records
            .values()
            .filter(|r| r.state == JobState::Queued)
            .map(|r| r.id)
            .collect();
        for id in ids {
            if let Err(_e) = self.load_checkpoint(id) {
                let path = self.checkpoint_path(id);
                report.quarantined.push(self.quarantine(&path));
            }
        }
        Ok((records, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdp-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(id: u64) -> JobRecord {
        JobRecord::queued(
            id,
            JobSpec {
                input: "fft_1".into(),
                ..JobSpec::default()
            },
        )
    }

    #[test]
    fn scan_orders_requeues_and_cleans() {
        let root = tmp_root("scan");
        let store = Store::open(&root).unwrap();
        let mut running = rec(2);
        running.state = JobState::Running;
        store.persist_record(&rec(10)).unwrap();
        store.persist_record(&running).unwrap();
        store.persist_record(&rec(1)).unwrap();
        // A torn write and a stray tmp checkpoint.
        fs::write(store.jobs.join("job-0000000009.rdpjob.tmp"), b"torn").unwrap();
        fs::write(store.jobs.join("job-0000000002.ckpt.tmp"), b"torn").unwrap();

        let (records, report) = store.scan().unwrap();
        assert_eq!(records.keys().copied().collect::<Vec<_>>(), vec![1, 2, 10]);
        assert_eq!(records[&2].state, JobState::Queued);
        assert_eq!(report.recovered, 3);
        assert_eq!(report.requeued_running, 1);
        assert_eq!(report.cleaned_tmp, 2);
        assert!(report.quarantined.is_empty());
        // The requeue was persisted, not just in-memory.
        let again = JobRecord::from_bytes(&fs::read(store.record_path(2)).unwrap()).unwrap();
        assert_eq!(again.state, JobState::Queued);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_record_and_checkpoint_are_quarantined() {
        let root = tmp_root("corrupt");
        let store = Store::open(&root).unwrap();
        store.persist_record(&rec(1)).unwrap();
        let mut bytes = rec(2).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(store.record_path(2), &bytes).unwrap();
        store.persist_checkpoint(1, b"garbage-checkpoint").unwrap();

        let (records, report) = store.scan().unwrap();
        assert_eq!(records.len(), 1);
        assert!(records.contains_key(&1));
        assert_eq!(report.quarantined.len(), 2, "{report:?}");
        assert!(store.jobs.join("job-0000000002.rdpjob.corrupt").exists());
        // The quarantined checkpoint no longer blocks the job.
        assert!(store.load_checkpoint(1).unwrap().is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let root = tmp_root("atomic");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("file.bin");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!tmp_sibling(&path).exists());
        let _ = fs::remove_dir_all(&root);
    }
}
