//! Fleet-level service telemetry for `rdp serve`.
//!
//! A [`ServiceMetrics`] is a long-lived, always-enabled [`Collector`]
//! that aggregates what the *server* does — per-protocol-op latency
//! histograms (the same IEEE-754 log-2 buckets the flow uses), lifecycle
//! counters (submits, completions, failures, retries, requeues,
//! cancellations, quarantined records, frame-limit and connection-slot
//! rejections, predictor fallbacks), and point-in-time gauges (queue
//! depth, running jobs, live connections, uptime).
//!
//! Two disciplines keep this compatible with the determinism contract:
//!
//! * **Live state is read-side only.** `stats`/`watch` responses read a
//!   running job's [`Collector`] through [`Collector::with_metrics`] /
//!   [`Collector::since`] — snapshots under the collector mutex, never a
//!   write into flow state. A job polled continuously produces bitwise
//!   the same placement as an unobserved one.
//! * **Exported sessions reuse the run schema.** On drain the server
//!   writes its lifetime metrics through the standard exporters
//!   ([`rdp_obs::export_jsonl`] / [`rdp_obs::export_metrics_json`]) into
//!   `<dir>/service/`, so `rdp report` ingests a service session exactly
//!   like a run directory.
//!
//! The `stats` response shape is versioned ([`STATS_VERSION`]) and
//! checked by [`validate_stats_json`] — the CI smoke test validates
//! every scrape.

use std::sync::Arc;
use std::time::Instant;

use rdp_obs::json::{self, Value};
use rdp_obs::{export_metrics_json, Collector, Event};

use crate::job::{jstr, JobRecord, JobState};
use crate::protocol::{Request, PROTOCOL_VERSION};
use crate::store::RecoveryReport;
use crate::worker::JobControl;

/// Version of the `stats` response schema. Bumped when field names or
/// shapes change incompatibly; [`validate_stats_json`] pins it.
pub const STATS_VERSION: u64 = 1;

/// The server's own version string (reported by `ping` and `stats`).
pub const SERVER_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Event-ring capacity for the service collector: the server records
/// lifecycle instants, not per-iteration flow events, so a small ring
/// holds hours of traffic.
const SERVICE_EVENT_CAPACITY: usize = 1 << 14;

/// Series names surfaced in per-job live snapshots when no explicit
/// filter is given: the convergence trio every dashboard wants.
pub const CANONICAL_SERIES: [&str; 3] = ["hpwl", "overflow", "predict_drift"];

/// Cap on points returned per series in one `stats`/`watch` response.
/// Responses carry the tail (newest points) plus the series total, so a
/// poller can detect truncation and page with `after_step`.
pub const SERIES_TAIL_CAP: usize = 64;

/// Long-lived server telemetry: one enabled collector plus the start
/// instant for uptime. Cheap to clone (the collector is an `Arc`).
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    col: Collector,
    started: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// A fresh, enabled service collector.
    pub fn new() -> Self {
        ServiceMetrics {
            col: Collector::with_capacity(SERVICE_EVENT_CAPACITY),
            started: Instant::now(),
        }
    }

    /// The underlying collector (exporters read it on drain).
    pub fn collector(&self) -> &Collector {
        &self.col
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Bump a lifecycle counter.
    pub fn incr(&self, name: &'static str) {
        self.col.counter_add(name, 1);
    }

    /// Add `delta` to a lifecycle counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if delta > 0 {
            self.col.counter_add(name, delta);
        }
    }

    /// Record one protocol op's latency into its per-op histogram.
    pub fn observe_op(&self, op: &'static str, elapsed_ms: f64) {
        self.col.observe(op, elapsed_ms);
    }

    /// Record a lifecycle instant (visible in the exported service trace).
    pub fn instant(&self, name: &'static str, detail: impl Into<String>) {
        self.col.instant(name, rdp_obs::NO_ITER, detail);
    }

    /// Refresh the point-in-time gauges. Called before every snapshot and
    /// before the drain export, so both always carry current values.
    pub fn set_gauges(&self, queue_depth: usize, running: usize, connections: usize) {
        self.col.gauge_set("queue_depth", queue_depth as f64);
        self.col.gauge_set("running_jobs", running as f64);
        self.col.gauge_set("connections", connections as f64);
        self.col.gauge_set("uptime_ms", self.uptime_ms() as f64);
    }

    /// Seed lifetime counters from the recovered store at startup, so
    /// counters are monotonic across restarts: terminal records found on
    /// disk are *re-counted once* (they will not run again), and killed
    /// `running` jobs count as requeues, exactly what recovery did.
    pub fn seed_from_records(
        &self,
        records: &std::collections::BTreeMap<u64, JobRecord>,
        recovery: &RecoveryReport,
    ) {
        let mut done = 0u64;
        let mut failed = 0u64;
        let mut cancelled = 0u64;
        for rec in records.values() {
            match rec.state {
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Queued | JobState::Running => {}
            }
        }
        // Every record on disk was once a submit.
        self.add("submits", records.len() as u64);
        self.add("completions", done);
        self.add("failures", failed);
        self.add("cancellations", cancelled);
        self.add("requeues", recovery.requeued_running as u64);
        self.add("quarantined", recovery.quarantined.len() as u64);
        if recovery.recovered > 0 {
            self.instant(
                "recovery",
                format!(
                    "recovered {} records ({} requeued, {} quarantined)",
                    recovery.recovered,
                    recovery.requeued_running,
                    recovery.quarantined.len()
                ),
            );
        }
    }

    /// Monotonic fleet-activity cursor: the sum of the lifecycle counters
    /// a fleet `watch` cares about. Any submit, settle, retry, requeue, or
    /// cancellation advances it, so a long-poll can wait on `activity() >
    /// seq` and never miss a transition.
    pub fn activity(&self) -> u64 {
        self.col
            .with_metrics(|m| {
                [
                    "submits",
                    "completions",
                    "failures",
                    "cancellations",
                    "retries",
                    "requeues",
                ]
                .iter()
                .map(|k| m.counters.get(*k).copied().unwrap_or(0))
                .sum()
            })
            .unwrap_or(0)
    }

    /// Render the full `stats` response. `jobs` are pre-rendered per-job
    /// objects (see [`job_live_json`]); gauges must already be refreshed.
    pub fn stats_json(&self, draining: bool, jobs: &[String]) -> String {
        let service = export_metrics_json(&self.col);
        let drops = self.col.drop_stats();
        format!(
            "{{\"ok\":true,\"stats_version\":{STATS_VERSION},\
             \"server_version\":{},\"protocol_version\":{PROTOCOL_VERSION},\
             \"uptime_ms\":{},\"draining\":{draining},\
             \"service\":{},\
             \"drops\":{{\"events\":{},\"spans\":{},\"instants\":{},\"frames\":{}}},\
             \"jobs\":[{}]}}",
            jstr(SERVER_VERSION),
            self.uptime_ms(),
            service.trim_end(),
            drops.events,
            drops.spans,
            drops.instants,
            drops.frames,
            jobs.join(",")
        )
    }
}

/// Stable per-op histogram name for a request (latency in milliseconds).
pub fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Ping => "op_ping_ms",
        Request::Submit(_) => "op_submit_ms",
        Request::Status(_) => "op_status_ms",
        Request::Cancel(_) => "op_cancel_ms",
        Request::Result(..) => "op_result_ms",
        Request::Stream(_) => "op_stream_ms",
        Request::Stats => "op_stats_ms",
        Request::Watch(_) => "op_watch_ms",
        Request::Shutdown => "op_shutdown_ms",
    }
}

/// Append `"series":{...}` live-series tails (and a per-kind drop object
/// when anything dropped) read from a job's collector. `filter` restricts
/// the series names; empty means [`CANONICAL_SERIES`]. With `after_step`
/// only points past that step are returned (`watch` deltas); without it,
/// the newest [`SERIES_TAIL_CAP`] points. Returns whether any point was
/// rendered. Read-side only: one lock hold, no flow-visible effect.
fn push_live_series(
    out: &mut String,
    col: &Collector,
    filter: &[String],
    after_step: Option<u64>,
) -> bool {
    let mut any_points = false;
    let rendered = col.with_metrics(|m| {
        let mut parts = Vec::new();
        for (name, points) in &m.series {
            let wanted = if filter.is_empty() {
                CANONICAL_SERIES.contains(name)
            } else {
                filter.iter().any(|f| f == name)
            };
            if !wanted || points.is_empty() {
                continue;
            }
            let delta: Vec<(u64, f64)> = match after_step {
                Some(s) => points
                    .iter()
                    .filter(|(step, _)| *step > s)
                    .copied()
                    .collect(),
                None => points.to_vec(),
            };
            if after_step.is_some() && delta.is_empty() {
                continue;
            }
            let tail = &delta[delta.len().saturating_sub(SERIES_TAIL_CAP)..];
            any_points |= !tail.is_empty();
            let pts: Vec<String> = tail
                .iter()
                .map(|(step, v)| format!("[{step},{}]", json::num(*v)))
                .collect();
            parts.push(format!(
                "\"{}\":{{\"total\":{},\"points\":[{}]}}",
                json::escape(name),
                points.len(),
                pts.join(",")
            ));
        }
        parts.join(",")
    });
    if let Some(series) = rendered {
        out.push_str(&format!(",\"series\":{{{series}}}"));
    }
    let drops = col.drop_stats();
    if drops.any() {
        out.push_str(&format!(
            ",\"drops\":{{\"events\":{},\"spans\":{},\"instants\":{},\"frames\":{}}}",
            drops.events, drops.spans, drops.instants, drops.frames
        ));
    }
    any_points
}

/// One job's live snapshot object for `stats`/`watch`: identity + state +
/// checkpoint progress, and for a running captured job the in-flight
/// collector's convergence-series tails and per-kind drop accounting.
pub fn job_live_json(rec: &JobRecord, ctl: Option<&Arc<JobControl>>, filter: &[String]) -> String {
    let mut out = format!(
        "{{\"id\":{},\"state\":{},\"attempt\":{},\"consumed_ms\":{}",
        rec.id,
        jstr(rec.state.label()),
        rec.attempt,
        rec.consumed_ms
    );
    if let Some(res) = &rec.result {
        out.push_str(&format!(
            ",\"hpwl\":{},\"density_overflow\":{}",
            json::num(res.hpwl),
            json::num(res.density_overflow)
        ));
    }
    if let Some((kind, _)) = &rec.error {
        out.push_str(&format!(",\"kind\":{}", jstr(kind)));
    }
    if let Some(ctl) = ctl {
        let p = *ctl.progress.lock().unwrap();
        out.push_str(&format!(
            ",\"route_iter\":{},\"progress_hpwl\":{},\"progress_overflow\":{}",
            p.route_iter,
            json::num(p.hpwl),
            json::num(p.overflow)
        ));
        let col = ctl.obs.lock().unwrap().clone();
        push_live_series(&mut out, &col, filter, None);
    }
    out.push('}');
    out
}

/// Cap on trace events returned in one `watch` response frame; a poller
/// that fell behind pages through the backlog via the returned `seq`.
pub const WATCH_EVENT_CAP: usize = 512;

fn event_json(ev: &Event) -> String {
    match ev {
        Event::Span {
            name,
            cat,
            tid,
            start_ns,
            dur_ns,
            iter,
        } => format!(
            "{{\"type\":\"span\",\"name\":{},\"cat\":{},\"tid\":{tid},\
             \"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\"iter\":{iter}}}",
            jstr(name),
            jstr(cat)
        ),
        Event::Instant {
            name,
            detail,
            tid,
            ts_ns,
            iter,
        } => format!(
            "{{\"type\":\"instant\",\"name\":{},\"detail\":{},\"tid\":{tid},\
             \"ts_ns\":{ts_ns},\"iter\":{iter}}}",
            jstr(name),
            jstr(detail)
        ),
    }
}

/// One job `watch` response: live status + series points past
/// `after_step` + trace events past the `seq` cursor (capped at
/// [`WATCH_EVENT_CAP`]; the returned `seq` resumes a truncated read),
/// plus `done` once the job is terminal. Returns `(json, next_seq,
/// has_news)` — `has_news` is false when nothing moved past the cursors,
/// letting the server keep the long-poll open.
pub fn job_watch_json(
    rec: &JobRecord,
    ctl: Option<&Arc<JobControl>>,
    p: &crate::protocol::WatchParams,
) -> (String, u64, bool) {
    let terminal = rec.state.is_terminal();
    let mut core = format!(
        "{{\"id\":{},\"state\":{},\"attempt\":{},\"consumed_ms\":{}",
        rec.id,
        jstr(rec.state.label()),
        rec.attempt,
        rec.consumed_ms
    );
    let col = ctl.map(|c| c.obs.lock().unwrap().clone());
    let mut series_news = false;
    if let Some(ctl) = ctl {
        let pr = *ctl.progress.lock().unwrap();
        core.push_str(&format!(
            ",\"route_iter\":{},\"progress_hpwl\":{},\"progress_overflow\":{}",
            pr.route_iter,
            json::num(pr.hpwl),
            json::num(pr.overflow)
        ));
    }
    if let Some(col) = &col {
        // No `after_step` means "send me the current tails" — which always
        // counts as news on the first poll; pollers pass the cursor back
        // to get true deltas afterwards.
        series_news = push_live_series(&mut core, col, &p.series, p.after_step);
    }
    core.push('}');
    let (events, first_seq, next_seq) = match col.as_ref().and_then(|c| c.since(p.seq)) {
        Some(delta) => {
            let kept = delta.events.len().min(WATCH_EVENT_CAP);
            let next = if kept < delta.events.len() {
                // Truncated: resume exactly after the last returned event.
                delta.first_seq + kept as u64 - 1
            } else {
                delta.high_seq
            };
            let rendered: Vec<String> = delta.events[..kept].iter().map(event_json).collect();
            (rendered.join(","), delta.first_seq, next)
        }
        // Disabled collector (no capture): no event stream, cursor parks.
        None => (String::new(), p.seq + 1, p.seq),
    };
    let has_news = terminal || series_news || !events.is_empty();
    let json = format!(
        "{{\"ok\":true,\"job\":{core},\"seq\":{next_seq},\"first_seq\":{first_seq},\
         \"events\":[{events}],\"done\":{terminal}}}"
    );
    (json, next_seq, has_news)
}

/// Summary returned by a successful [`validate_stats_json`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSummary {
    /// Number of per-job entries.
    pub jobs: usize,
    /// Sum over all lifecycle counters.
    pub counter_total: u64,
    /// Total observations across the per-op latency histograms.
    pub op_observations: u64,
}

fn req_num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("stats: missing or non-numeric `{key}`"))
}

/// Validate a `stats` response against the [`STATS_VERSION`] schema:
/// envelope fields present and typed, the embedded service metrics doc
/// structurally sound (histogram invariants included), per-kind drops
/// numeric, and every job entry carrying a known state label. Returns a
/// small summary on success, a diagnostic string on the first violation.
pub fn validate_stats_json(text: &str) -> Result<StatsSummary, String> {
    let v = json::parse(text).map_err(|e| format!("stats: bad JSON: {e}"))?;
    if v.get("ok") != Some(&Value::Bool(true)) {
        return Err("stats: `ok` is not true".into());
    }
    let version = req_num(&v, "stats_version")? as u64;
    if version != STATS_VERSION {
        return Err(format!(
            "stats: version {version} does not match supported {STATS_VERSION}"
        ));
    }
    v.get("server_version")
        .and_then(Value::as_str)
        .ok_or("stats: missing `server_version`")?;
    req_num(&v, "protocol_version")?;
    req_num(&v, "uptime_ms")?;
    if !matches!(v.get("draining"), Some(Value::Bool(_))) {
        return Err("stats: missing boolean `draining`".into());
    }

    let service = v.get("service").ok_or("stats: missing `service` object")?;
    let mut counter_total = 0u64;
    let mut op_observations = 0u64;
    match service.get("counters") {
        Some(Value::Obj(counters)) => {
            for (name, val) in counters {
                let n = val
                    .as_f64()
                    .ok_or_else(|| format!("stats: counter `{name}` is not numeric"))?;
                counter_total += n as u64;
            }
        }
        _ => return Err("stats: `service.counters` is not an object".into()),
    }
    if !matches!(service.get("gauges"), Some(Value::Obj(_))) {
        return Err("stats: `service.gauges` is not an object".into());
    }
    match service.get("histograms") {
        Some(Value::Obj(hists)) => {
            for (name, h) in hists {
                let count = req_num(h, "count")? as u64;
                let zeros = req_num(h, "zeros")? as u64;
                let non_finite = req_num(h, "non_finite")? as u64;
                let bucketed: u64 = match h.get("log2_buckets") {
                    Some(Value::Obj(buckets)) => buckets
                        .values()
                        .map(|c| c.as_f64().unwrap_or(0.0) as u64)
                        .sum(),
                    _ => {
                        return Err(format!(
                            "stats: histogram `{name}` is missing `log2_buckets`"
                        ))
                    }
                };
                if count != zeros + non_finite + bucketed {
                    return Err(format!(
                        "stats: histogram `{name}` breaks its invariant \
                         ({count} != {zeros} + {non_finite} + {bucketed})"
                    ));
                }
                if name.starts_with("op_") {
                    op_observations += count;
                }
            }
        }
        _ => return Err("stats: `service.histograms` is not an object".into()),
    }
    if !matches!(service.get("series"), Some(Value::Obj(_))) {
        return Err("stats: `service.series` is not an object".into());
    }

    let drops = v.get("drops").ok_or("stats: missing `drops` object")?;
    for key in ["events", "spans", "instants", "frames"] {
        req_num(drops, key)?;
    }

    let jobs = match v.get("jobs") {
        Some(Value::Arr(jobs)) => jobs,
        _ => return Err("stats: `jobs` is not an array".into()),
    };
    for job in jobs {
        let id = req_num(job, "id")? as u64;
        let state = job
            .get("state")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("stats: job {id} is missing `state`"))?;
        if !matches!(
            state,
            "queued" | "running" | "done" | "failed" | "cancelled"
        ) {
            return Err(format!("stats: job {id} has unknown state `{state}`"));
        }
        req_num(job, "attempt")?;
        req_num(job, "consumed_ms")?;
    }
    Ok(StatsSummary {
        jobs: jobs.len(),
        counter_total,
        op_observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    #[test]
    fn stats_json_passes_its_own_validator() {
        let m = ServiceMetrics::new();
        m.incr("submits");
        m.incr("completions");
        m.observe_op("op_ping_ms", 0.2);
        m.observe_op("op_submit_ms", 1.5);
        m.set_gauges(3, 1, 2);
        let rec = JobRecord::queued(7, JobSpec::default());
        let jobs = vec![job_live_json(&rec, None, &[])];
        let text = m.stats_json(false, &jobs);
        let summary = validate_stats_json(&text).expect("schema-valid stats");
        assert_eq!(summary.jobs, 1);
        assert_eq!(summary.counter_total, 2);
        assert_eq!(summary.op_observations, 2);
    }

    #[test]
    fn validator_rejects_broken_envelopes() {
        let m = ServiceMetrics::new();
        m.set_gauges(0, 0, 0);
        let good = m.stats_json(false, &[]);
        for (mangle, why) in [
            (good.replace("\"ok\":true", "\"ok\":false"), "ok"),
            (
                good.replace("\"stats_version\":1", "\"stats_version\":99"),
                "version",
            ),
            (
                good.replace("\"draining\":false", "\"draining\":3"),
                "drain",
            ),
            (good.replace("\"jobs\":[]", "\"jobs\":{}"), "jobs"),
        ] {
            assert!(validate_stats_json(&mangle).is_err(), "{why} not caught");
        }
        assert!(validate_stats_json("not json").is_err());
    }

    #[test]
    fn validator_catches_histogram_invariant_breaks() {
        let m = ServiceMetrics::new();
        m.observe_op("op_ping_ms", 1.0);
        m.set_gauges(0, 0, 0);
        let good = m.stats_json(false, &[]);
        let broken = good.replace("\"count\": 1", "\"count\": 5");
        assert!(validate_stats_json(&broken).is_err());
    }

    #[test]
    fn job_live_json_carries_series_tails_and_drops() {
        let rec = JobRecord {
            state: JobState::Running,
            ..JobRecord::queued(3, JobSpec::default())
        };
        let ctl = Arc::new(JobControl::default());
        let col = Collector::with_capacity(4);
        for i in 0..100 {
            col.series_push("hpwl", i, 1000.0 - i as f64);
            col.instant("tick", rdp_obs::NO_ITER, "");
        }
        col.series_push("not_canonical", 0, 1.0);
        *ctl.obs.lock().unwrap() = col;
        let text = job_live_json(&rec, Some(&ctl), &[]);
        let v = json::parse(&text).unwrap();
        let series = v.get("series").expect("series object");
        let hpwl = series.get("hpwl").expect("canonical series");
        assert_eq!(hpwl.get("total").and_then(Value::as_f64), Some(100.0));
        match hpwl.get("points") {
            Some(Value::Arr(pts)) => assert_eq!(pts.len(), SERIES_TAIL_CAP),
            other => panic!("points not an array: {other:?}"),
        }
        assert!(series.get("not_canonical").is_none());
        // The tiny ring dropped instants; the per-kind breakdown surfaces.
        let drops = v.get("drops").expect("drops object");
        assert!(drops.get("instants").and_then(Value::as_f64).unwrap() > 0.0);

        // An explicit filter overrides the canonical set.
        let filtered = job_live_json(&rec, Some(&ctl), &["not_canonical".to_string()]);
        let v = json::parse(&filtered).unwrap();
        assert!(v.get("series").unwrap().get("hpwl").is_none());
        assert!(v.get("series").unwrap().get("not_canonical").is_some());
    }
}
