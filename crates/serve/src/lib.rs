//! Crash-safe placement-as-a-service.
//!
//! `rdp-serve` puts a long-running daemon in front of the placement flow:
//! clients submit jobs over a length-prefixed JSON-over-TCP protocol
//! ([`protocol`]), a **durable job queue** persists every job as a
//! versioned `RDPSNAP`-style record ([`job`], [`store`]) through states
//! `queued → running → done/failed/cancelled`, and worker threads
//! ([`worker`], [`server`]) run the flow with the `rdp-guard` checkpoint
//! hooks so the server can be `kill -9`ed at **any** instant and, on
//! restart, replay the queue and resume partial placements
//! bitwise-identically (the flow's checkpoint/resume contract).
//!
//! Robustness invariants, each exercised by a named fault-injection
//! scenario in `tests/serve_robustness.rs`:
//!
//! - **Durability**: every job-state transition is written atomically
//!   (tmp + rename + fsync); a torn write can only lose the tmp file.
//!   Corrupt records and checkpoints found at startup are quarantined
//!   (renamed `*.corrupt`), never panicked on.
//! - **Deadlines**: per-job wall-clock budgets are enforced at checkpoint
//!   boundaries via [`rdp_core::FlowControl::interrupt`] — an expired job
//!   fails with a typed [`RdpError::Deadline`](rdp_guard::RdpError), it
//!   never wedges a worker.
//! - **Retry with backoff**: retryable failures (`Diverged`, `NonFinite`)
//!   re-run with an exponentially damped configuration up to the job's
//!   retry budget; `Parse`/`Config`/`Internal` fail fast.
//! - **Backpressure**: the queue is bounded; submits beyond the bound are
//!   rejected with a typed `Busy { retry_after_ms }`, never queued
//!   unboundedly.
//! - **No unbounded waits**: every accept, read, write, queue wait, and
//!   join path carries a deadline or poll bound. Slow-loris clients and
//!   garbage/oversized/truncated frames produce typed `Protocol` errors.
//! - **Graceful drain**: shutdown stops accepting, interrupts running
//!   jobs at their next checkpoint (requeueing them with the checkpoint
//!   persisted), and exits with the whole queue durable on disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod protocol;
pub mod server;
pub mod store;
pub mod telemetry;
pub mod worker;

pub use client::{Client, JobStatus, PingInfo};
pub use job::{flow_config, retryable, JobRecord, JobResult, JobSpec, JobState};
pub use protocol::{error_kind, FrameLimits, Request, WatchParams, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server};
pub use store::{RecoveryReport, Store};
pub use telemetry::{validate_stats_json, ServiceMetrics, StatsSummary, STATS_VERSION};
