//! The `rdp serve` daemon: listener, worker pool, durable queue glue.
//!
//! Startup replays the store ([`Store::scan`]) — killed `running` jobs
//! come back `queued` with their checkpoints intact — then binds the
//! listener and spawns the worker pool. The accept loop blocks in
//! `accept` (zero poll tax while jobs run); shutdown paths unblock it
//! with a loopback self-connect. Every other wait is bounded:
//! connection handlers inherit [`FrameLimits`] deadlines, workers wake
//! from the queue condvar at least every `poll_ms`, `result` long-polls
//! are capped at [`RESULT_WAIT_CAP_MS`] per request, and live
//! connections are capped (excess clients get a typed `Busy` and a
//! clean close).

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rdp_guard::RdpError;
use rdp_obs::json;

use crate::job::{JobRecord, JobState};
use crate::protocol::{
    error_kind, error_response, is_frame_limit, parse_request, read_frame_opt, write_frame,
    FrameLimits, Request, WatchParams, IO_TIMEOUT_DEFAULT_MS, MAX_FRAME_DEFAULT, PROTOCOL_VERSION,
};
use crate::store::{write_atomic, RecoveryReport, Store};
use crate::telemetry::{job_live_json, job_watch_json, op_name, ServiceMetrics, SERVER_VERSION};
use crate::worker::{execute_job, Disposition, JobControl};

/// Server configuration (all bounds explicit; every default finite).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Store root directory (job records, checkpoints, run dirs).
    pub dir: PathBuf,
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads executing jobs concurrently.
    pub workers: usize,
    /// Maximum non-terminal (queued + running) jobs; submits beyond this
    /// bound are rejected with `Busy { retry_after_ms }`.
    pub max_queue: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Per-frame I/O deadline in milliseconds.
    pub io_timeout_ms: u64,
    /// Suggested client back-off returned with `Busy` rejections.
    pub retry_after_ms: u64,
    /// Poll interval for the worker condvar, progress streams, and
    /// accept-error backoff.
    pub poll_ms: u64,
    /// Compute threads per job; 0 splits the global thread budget evenly
    /// across workers (at least 1 each).
    pub job_threads: usize,
    /// When set, the bound address is written here atomically after
    /// listen succeeds (`host:port\n`) — scripts poll it to rendezvous.
    pub port_file: Option<PathBuf>,
    /// Cap on simultaneously live client connections.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            dir: PathBuf::from("rdp-serve"),
            addr: "127.0.0.1:0".into(),
            workers: 1,
            max_queue: 64,
            max_frame: MAX_FRAME_DEFAULT,
            io_timeout_ms: IO_TIMEOUT_DEFAULT_MS,
            retry_after_ms: 250,
            poll_ms: 25,
            job_threads: 0,
            port_file: None,
            max_connections: 64,
        }
    }
}

/// Server-side cap on one `result` long-poll (milliseconds). Keeps every
/// held connection bounded regardless of what the client asked for;
/// clients with a larger budget simply re-issue the request.
const RESULT_WAIT_CAP_MS: u64 = 10_000;

/// Mutable server state behind one mutex.
struct Inner {
    records: BTreeMap<u64, JobRecord>,
    controls: BTreeMap<u64, Arc<JobControl>>,
    next_id: u64,
}

struct Shared {
    cfg: ServeConfig,
    limits: FrameLimits,
    store: Store,
    /// The actually-bound address; shutdown paths connect to it to wake
    /// the (blocking) accept loop.
    addr: SocketAddr,
    inner: Mutex<Inner>,
    queue_cv: Condvar,
    /// Signalled whenever a job reaches a terminal state; long-poll
    /// `result` requests wait on it instead of making clients poll.
    done_cv: Condvar,
    shutdown: AtomicBool,
    drain: AtomicBool,
    connections: AtomicUsize,
    /// Lifetime service telemetry (always enabled; exported on drain).
    metrics: ServiceMetrics,
}

impl Shared {
    fn poll(&self) -> Duration {
        Duration::from_millis(self.cfg.poll_ms.max(1))
    }
}

/// A running server instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    recovery: RecoveryReport,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens the store, replays the queue, binds, and spawns the pool.
    pub fn start(cfg: ServeConfig) -> Result<Server, RdpError> {
        let store = Store::open(&cfg.dir)?;
        let (records, recovery) = store.scan()?;
        let next_id = records.keys().next_back().map_or(1, |id| id + 1);
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| RdpError::protocol(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RdpError::protocol(format!("local_addr: {e}")))?;
        if let Some(path) = &cfg.port_file {
            write_atomic(path, format!("{addr}\n").as_bytes())?;
        }
        let limits = FrameLimits {
            max_frame: cfg.max_frame,
            io_timeout: Duration::from_millis(cfg.io_timeout_ms.max(1)),
        };
        let workers_n = cfg.workers;
        // Seed lifetime counters from the recovered store so they stay
        // monotonic across restarts (terminal records re-counted exactly
        // once — they never re-run).
        let metrics = ServiceMetrics::new();
        metrics.seed_from_records(&records, &recovery);
        let shared = Arc::new(Shared {
            cfg,
            limits,
            store,
            addr,
            inner: Mutex::new(Inner {
                records,
                controls: BTreeMap::new(),
                next_id,
            }),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            metrics,
        });
        let mut workers = Vec::with_capacity(workers_n);
        for w in 0..workers_n {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rdp-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| RdpError::internal(format!("spawn worker: {e}")))?,
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rdp-serve-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| RdpError::internal(format!("spawn accept loop: {e}")))?
        };
        Ok(Server {
            shared,
            addr,
            recovery,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup recovery found and did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Initiates graceful drain: stop accepting, interrupt running jobs
    /// at their next checkpoint (requeued durable), let workers exit.
    pub fn request_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Waits for the accept loop and every worker to exit, then gives
    /// in-flight connections a bounded window (two frame deadlines) to
    /// finish writing their responses — so a caller dropping straight to
    /// process exit after `join` cannot cut a response off mid-frame.
    /// Returns once the whole queue is durable on disk.
    pub fn join(mut self) -> Result<(), RdpError> {
        if let Some(h) = self.accept.take() {
            h.join()
                .map_err(|_| RdpError::internal("accept loop panicked"))?;
        }
        for h in self.workers.drain(..) {
            h.join()
                .map_err(|_| RdpError::internal("worker thread panicked"))?;
        }
        let deadline = Instant::now() + 2 * self.shared.limits.io_timeout;
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(self.shared.poll());
        }
        export_service_session(&self.shared);
        Ok(())
    }

    /// `request_shutdown` + `join`.
    pub fn shutdown(self) -> Result<(), RdpError> {
        self.request_shutdown();
        self.join()
    }
}

/// Exports the lifetime service telemetry into `<dir>/service/` through
/// the standard run exporters, so `rdp report`/`rdp diff` ingest a
/// service session exactly like a run directory. Failures degrade to a
/// stderr warning — a full disk must not turn a clean drain into an
/// error.
fn export_service_session(shared: &Shared) {
    let (queued, running) = {
        let inner = shared.inner.lock().unwrap();
        (
            inner
                .records
                .values()
                .filter(|r| r.state == JobState::Queued)
                .count(),
            inner
                .records
                .values()
                .filter(|r| r.state == JobState::Running)
                .count(),
        )
    };
    let m = &shared.metrics;
    m.set_gauges(queued, running, shared.connections.load(Ordering::SeqCst));
    m.instant("drain", format!("drained with {queued} queued jobs"));
    let dir = shared.cfg.dir.join("service");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("serve: service-session export failed: {e}");
        return;
    }
    let col = m.collector();
    for (name, text) in [
        ("trace.jsonl", rdp_obs::export_jsonl(col)),
        ("metrics.json", rdp_obs::export_metrics_json(col)),
    ] {
        if let Err(e) = write_atomic(&dir.join(name), text.as_bytes()) {
            eprintln!("serve: service-session export of {name} failed: {e}");
        }
    }
}

/// Wakes the blocking accept loop by connecting to the server's own
/// address (the accepted connection is discarded once the shutdown flag
/// is observed). If loopback connect somehow fails, the accept loop is
/// still bounded: the next real client — or a listener error — also
/// lands on the shutdown check.
fn wake_accept(shared: &Shared) {
    for _ in 0..2 {
        if TcpStream::connect_timeout(&shared.addr, Duration::from_millis(250)).is_ok() {
            return;
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    // A *blocking* accept: no poll tax while jobs run, no accept
    // latency for clients. Shutdown paths unblock it via `wake_accept`.
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    return;
                }
                if shared.connections.fetch_add(1, Ordering::SeqCst) >= shared.cfg.max_connections {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.incr("slot_rejections");
                    let mut stream = stream;
                    let busy = RdpError::Busy {
                        detail: format!("connection limit {} reached", shared.cfg.max_connections),
                        retry_after_ms: shared.cfg.retry_after_ms,
                    };
                    let _ = write_frame(&mut stream, &error_response(&busy), &shared.limits);
                    continue;
                }
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("rdp-serve-conn".into())
                    .spawn(move || {
                        handle_connection(&conn_shared, stream);
                        conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            // Transient accept errors (EMFILE, ECONNABORTED): back off
            // one poll interval instead of spinning.
            Err(_) => std::thread::sleep(shared.poll()),
        }
    }
}

/// Serves one client connection: frames in, frames out, every I/O under
/// the configured deadline. A protocol error is answered (best-effort)
/// and ends the session; it never ends the server.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let payload = match read_frame_opt(&mut stream, &shared.limits) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) => {
                if is_frame_limit(&e) {
                    shared.metrics.incr("frame_limit_rejections");
                }
                let _ = write_frame(&mut stream, &error_response(&e), &shared.limits);
                return;
            }
        };
        let parsed = parse_request(&payload);
        let op = parsed.as_ref().ok().map(op_name);
        let op_start = Instant::now();
        let observe = |shared: &Shared| {
            if let Some(op) = op {
                shared
                    .metrics
                    .observe_op(op, op_start.elapsed().as_secs_f64() * 1e3);
            }
        };
        let response = match parsed {
            Ok(Request::Stream(id)) => {
                stream_progress(shared, &mut stream, id);
                observe(shared);
                continue;
            }
            Ok(Request::Shutdown) => {
                // Answer *before* initiating the drain: the wake below
                // lets the accept loop — and with it the whole process —
                // exit, which must not cut this response off mid-frame.
                // The response reports how many non-terminal jobs the
                // drain leaves durable for the next incarnation.
                let drained_jobs = {
                    let inner = shared.inner.lock().unwrap();
                    inner
                        .records
                        .values()
                        .filter(|r| !r.state.is_terminal())
                        .count()
                };
                let _ = write_frame(
                    &mut stream,
                    format!("{{\"ok\":true,\"draining\":true,\"drained_jobs\":{drained_jobs}}}")
                        .as_bytes(),
                    &shared.limits,
                );
                observe(shared);
                begin_shutdown(shared);
                return;
            }
            Ok(req) => handle_request(shared, req),
            Err(e) => Err(e),
        };
        let bytes = match response {
            Ok(json) => json.into_bytes(),
            Err(e) => error_response(&e),
        };
        observe(shared);
        if write_frame(&mut stream, &bytes, &shared.limits).is_err() {
            return;
        }
        // Draining: finish the in-flight request, then close instead of
        // waiting (up to a full read deadline) for a next frame that may
        // never come — keeps the post-join connection window short.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn status_with_progress(inner: &Inner, rec: &JobRecord) -> String {
    let mut out = rec.status_json();
    if rec.state == JobState::Running {
        if let Some(ctl) = inner.controls.get(&rec.id) {
            let p = *ctl.progress.lock().unwrap();
            out.pop();
            out.push_str(&format!(
                ",\"route_iter\":{},\"progress_hpwl\":{},\"progress_overflow\":{}}}",
                p.route_iter,
                json::num(p.hpwl),
                json::num(p.overflow)
            ));
        }
    }
    out
}

fn handle_request(shared: &Arc<Shared>, req: Request) -> Result<String, RdpError> {
    match req {
        Request::Ping => Ok(format!(
            "{{\"ok\":true,\"pong\":true,\"server_version\":{},\"protocol_version\":{PROTOCOL_VERSION}}}",
            crate::job::jstr(SERVER_VERSION)
        )),
        Request::Submit(spec) => {
            if shared.drain.load(Ordering::SeqCst) {
                return Err(RdpError::Busy {
                    detail: "server is draining".into(),
                    retry_after_ms: shared.cfg.retry_after_ms,
                });
            }
            let mut inner = shared.inner.lock().unwrap();
            let pending = inner
                .records
                .values()
                .filter(|r| !r.state.is_terminal())
                .count();
            if pending >= shared.cfg.max_queue {
                return Err(RdpError::Busy {
                    detail: format!(
                        "queue full ({pending} of {} jobs pending)",
                        shared.cfg.max_queue
                    ),
                    retry_after_ms: shared.cfg.retry_after_ms,
                });
            }
            let id = inner.next_id;
            let rec = JobRecord::queued(id, spec);
            // Durability before visibility: the record must be on disk
            // before the submit is acknowledged.
            shared.store.persist_record(&rec)?;
            inner.next_id += 1;
            inner.records.insert(id, rec);
            drop(inner);
            shared.metrics.incr("submits");
            shared.queue_cv.notify_one();
            // Fleet watchers long-poll on activity; a submit is news.
            shared.done_cv.notify_all();
            Ok(format!("{{\"ok\":true,\"id\":{id}}}"))
        }
        Request::Status(None) => {
            let inner = shared.inner.lock().unwrap();
            let jobs: Vec<String> = inner
                .records
                .values()
                .map(|r| status_with_progress(&inner, r))
                .collect();
            Ok(format!(
                "{{\"ok\":true,\"draining\":{},\"jobs\":[{}]}}",
                shared.drain.load(Ordering::SeqCst),
                jobs.join(",")
            ))
        }
        Request::Status(Some(id)) => {
            let inner = shared.inner.lock().unwrap();
            let rec = inner
                .records
                .get(&id)
                .ok_or_else(|| RdpError::protocol(format!("no such job {id}")))?;
            Ok(format!(
                "{{\"ok\":true,\"job\":{}}}",
                status_with_progress(&inner, rec)
            ))
        }
        Request::Cancel(id) => {
            let mut inner = shared.inner.lock().unwrap();
            let rec = inner
                .records
                .get_mut(&id)
                .ok_or_else(|| RdpError::protocol(format!("no such job {id}")))?;
            match rec.state {
                JobState::Queued => {
                    rec.state = JobState::Cancelled;
                    rec.error = Some(("cancelled".into(), "cancelled while queued".into()));
                    let rec = rec.clone();
                    shared.store.persist_record(&rec)?;
                    shared.store.remove_checkpoint(id);
                    shared.metrics.incr("cancellations");
                    shared.done_cv.notify_all();
                    Ok(format!(
                        "{{\"ok\":true,\"id\":{id},\"state\":\"cancelled\"}}"
                    ))
                }
                JobState::Running => {
                    if let Some(ctl) = inner.controls.get(&id) {
                        ctl.cancel.store(true, Ordering::SeqCst);
                    }
                    Ok(format!(
                        "{{\"ok\":true,\"id\":{id},\"state\":\"cancelling\"}}"
                    ))
                }
                terminal => Ok(format!(
                    "{{\"ok\":true,\"id\":{id},\"state\":{},\"already_terminal\":true}}",
                    crate::job::jstr(terminal.label())
                )),
            }
        }
        Request::Result(id, want_positions, wait_ms) => {
            // Long-poll: while the job is queued/running, wait on the
            // settle condvar up to min(wait_ms, RESULT_WAIT_CAP_MS) —
            // one held connection instead of a client poll storm, and
            // still a bounded wait. Timeout or shutdown answers `Busy`.
            let deadline = Instant::now() + Duration::from_millis(wait_ms.min(RESULT_WAIT_CAP_MS));
            let mut inner = shared.inner.lock().unwrap();
            loop {
                let state = inner
                    .records
                    .get(&id)
                    .ok_or_else(|| RdpError::protocol(format!("no such job {id}")))?
                    .state;
                if state.is_terminal() {
                    break;
                }
                let now = Instant::now();
                if now >= deadline || shared.shutdown.load(Ordering::SeqCst) {
                    return Err(RdpError::Busy {
                        detail: format!("job {id} is {state}"),
                        retry_after_ms: shared.cfg.retry_after_ms,
                    });
                }
                let (g, _timeout) = shared.done_cv.wait_timeout(inner, deadline - now).unwrap();
                inner = g;
            }
            let rec = inner.records.get(&id).unwrap();
            match rec.state {
                JobState::Done => {
                    let res = rec.result.as_ref().ok_or_else(|| {
                        RdpError::internal(format!("done job {id} has no result record"))
                    })?;
                    let mut out = format!(
                        "{{\"ok\":true,\"id\":{id},\"attempt\":{},\"consumed_ms\":{},\
                         \"hpwl\":{},\"hpwl_bits\":\"{:#018x}\",\"density_overflow\":{},\
                         \"gp_iterations\":{},\"route_iterations\":{},\"place_seconds\":{},\
                         \"warnings\":[{}]",
                        rec.attempt,
                        rec.consumed_ms,
                        json::num(res.hpwl),
                        res.hpwl.to_bits(),
                        json::num(res.density_overflow),
                        res.gp_iterations,
                        res.route_iterations,
                        json::num(res.place_seconds),
                        res.warnings
                            .iter()
                            .map(|w| crate::job::jstr(w))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    if want_positions {
                        let mut coords = String::with_capacity(res.positions.len() * 16);
                        for (i, p) in res.positions.iter().enumerate() {
                            if i > 0 {
                                coords.push(',');
                            }
                            coords.push_str(&json::num(p.x));
                            coords.push(',');
                            coords.push_str(&json::num(p.y));
                        }
                        out.push_str(&format!(",\"positions\":[{coords}]"));
                    }
                    out.push('}');
                    Ok(out)
                }
                JobState::Failed => {
                    let (kind, detail) = rec
                        .error
                        .clone()
                        .unwrap_or_else(|| ("internal".into(), "no error recorded".into()));
                    Err(rebuild_failure(&kind, detail))
                }
                JobState::Cancelled => Err(RdpError::Cancelled {
                    detail: format!("job {id} was cancelled"),
                }),
                JobState::Queued | JobState::Running => {
                    unreachable!("the wait loop exits only on a terminal state")
                }
            }
        }
        Request::Stats => {
            let (jobs, queued, running) = {
                let inner = shared.inner.lock().unwrap();
                let jobs: Vec<String> = inner
                    .records
                    .values()
                    .map(|r| job_live_json(r, inner.controls.get(&r.id), &[]))
                    .collect();
                let queued = inner
                    .records
                    .values()
                    .filter(|r| r.state == JobState::Queued)
                    .count();
                (jobs, queued, inner.controls.len())
            };
            shared
                .metrics
                .set_gauges(queued, running, shared.connections.load(Ordering::SeqCst));
            Ok(shared
                .metrics
                .stats_json(shared.drain.load(Ordering::SeqCst), &jobs))
        }
        Request::Watch(p) => handle_watch(shared, p),
        Request::Stream(_) => unreachable!("stream handled by the connection loop"),
        Request::Shutdown => unreachable!("shutdown handled by the connection loop"),
    }
}

/// `watch` long-poll: job mode returns trace/series deltas past the
/// request's cursors (news = new events, new series points, or a terminal
/// state); fleet mode returns counter activity past the `seq` cursor.
/// While there is no news the handler waits on the settle condvar in
/// poll-interval slices (series updates don't signal it; `poll_ms` bounds
/// the staleness), capped at [`RESULT_WAIT_CAP_MS`] like `result`.
/// Timeout or shutdown with no news answers `Busy { retry_after_ms }`.
fn handle_watch(shared: &Arc<Shared>, p: WatchParams) -> Result<String, RdpError> {
    let deadline = Instant::now() + Duration::from_millis(p.wait_ms.min(RESULT_WAIT_CAP_MS));
    let mut inner = shared.inner.lock().unwrap();
    loop {
        let (json, has_news) = match p.id {
            Some(id) => {
                let rec = inner
                    .records
                    .get(&id)
                    .ok_or_else(|| RdpError::protocol(format!("no such job {id}")))?;
                let (json, _next, news) = job_watch_json(rec, inner.controls.get(&id), &p);
                (json, news)
            }
            None => {
                let activity = shared.metrics.activity();
                let jobs: Vec<String> = inner
                    .records
                    .values()
                    .map(|r| job_live_json(r, inner.controls.get(&r.id), &p.series))
                    .collect();
                let json = format!(
                    "{{\"ok\":true,\"seq\":{activity},\"draining\":{},\"jobs\":[{}]}}",
                    shared.drain.load(Ordering::SeqCst),
                    jobs.join(",")
                );
                (json, activity > p.seq)
            }
        };
        if has_news || p.wait_ms == 0 {
            return Ok(json);
        }
        let now = Instant::now();
        if now >= deadline || shared.shutdown.load(Ordering::SeqCst) {
            return Err(RdpError::Busy {
                detail: match p.id {
                    Some(id) => format!("watch: no news on job {id} within the poll window"),
                    None => "watch: no fleet activity within the poll window".into(),
                },
                retry_after_ms: shared.cfg.retry_after_ms,
            });
        }
        // Slice the wait: settles signal the condvar, but series points
        // and trace events do not, so wake at least every poll interval.
        let slice = (deadline - now).min(shared.poll());
        let (g, _timeout) = shared.done_cv.wait_timeout(inner, slice).unwrap();
        inner = g;
    }
}

/// Flips the drain/shutdown flags and wakes every waiter: the worker
/// condvar, long-poll `result` holders (they recheck, see shutdown, and
/// answer `Busy` instead of riding out their full wait), and the
/// blocking accept loop.
fn begin_shutdown(shared: &Shared) {
    shared.drain.store(true, Ordering::SeqCst);
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    shared.done_cv.notify_all();
    wake_accept(shared);
}

/// Rebuilds a stored `(kind, detail)` failure as a typed error for the
/// wire (detail already carries the original display string).
fn rebuild_failure(kind: &str, detail: String) -> RdpError {
    match kind {
        "deadline" => RdpError::Deadline {
            detail,
            elapsed_ms: 0,
            budget_ms: 0,
        },
        "cancelled" => RdpError::Cancelled { detail },
        "config" => RdpError::Config { detail },
        "checkpoint" => RdpError::Checkpoint { detail },
        "parse" => RdpError::Parse {
            context: "job input".into(),
            line: None,
            message: detail,
        },
        "design" => RdpError::Design { message: detail },
        "protocol" => RdpError::Protocol { detail },
        _ => RdpError::Internal { detail },
    }
}

/// Writes progress frames at the poll interval until the job reaches a
/// terminal state (then one final status frame). Every write carries the
/// per-frame deadline, so a stalled client ends the stream, not the
/// server; total duration is bounded by the job's own lifetime (its
/// deadline, when set).
fn stream_progress(shared: &Arc<Shared>, stream: &mut TcpStream, id: u64) {
    loop {
        let (frame, terminal) = {
            let inner = shared.inner.lock().unwrap();
            match inner.records.get(&id) {
                Some(rec) => (
                    format!(
                        "{{\"ok\":true,\"job\":{}}}",
                        status_with_progress(&inner, rec)
                    ),
                    rec.state.is_terminal(),
                ),
                None => (
                    String::from_utf8_lossy(&error_response(&RdpError::protocol(format!(
                        "no such job {id}"
                    ))))
                    .into_owned(),
                    true,
                ),
            }
        };
        if write_frame(stream, frame.as_bytes(), &shared.limits).is_err() {
            return;
        }
        if terminal {
            return;
        }
        std::thread::sleep(shared.poll());
    }
}

/// Claims the lowest-id queued job, marks it running (durably), and
/// returns it with its control handle.
fn claim_next(shared: &Shared) -> Option<(JobRecord, Arc<JobControl>)> {
    let mut inner = shared.inner.lock().unwrap();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let next = inner
            .records
            .values()
            .find(|r| r.state == JobState::Queued)
            .map(|r| r.id);
        if let Some(id) = next {
            let rec = inner.records.get_mut(&id).unwrap();
            rec.state = JobState::Running;
            let snapshot = rec.clone();
            // Persist the transition before running: a crash from here on
            // leaves `running` evidence that recovery requeues.
            if let Err(e) = shared.store.persist_record(&snapshot) {
                eprintln!("serve: job {id}: running-state persist failed: {e}");
            }
            let ctl = Arc::new(JobControl::default());
            inner.controls.insert(id, Arc::clone(&ctl));
            return Some((snapshot, ctl));
        }
        let (g, _timeout) = shared.queue_cv.wait_timeout(inner, shared.poll()).unwrap();
        inner = g;
    }
}

/// Applies a finished job's outcome to the in-memory map and the store,
/// and folds the attempt's telemetry into the service counters (settle
/// disposition, predictor fallbacks, and a one-line warning when the
/// job's trace ring dropped anything).
fn settle(shared: &Shared, rec: JobRecord, ctl: &JobControl, outcome: crate::worker::ExecOutcome) {
    let id = rec.id;
    let mut rec = rec;
    rec.consumed_ms = outcome.consumed_ms;
    let attempt_col = ctl.obs.lock().unwrap().clone();
    if let Some(fallbacks) =
        attempt_col.with_metrics(|m| m.counters.get("predict_fallbacks").copied().unwrap_or(0))
    {
        shared.metrics.add("predict_fallbacks", fallbacks);
    }
    let drops = attempt_col.drop_stats();
    if drops.any() {
        eprintln!(
            "serve: job {id}: trace ring dropped {} events ({} spans, {} instants) \
             and {} frames during this attempt; the capture is truncated",
            drops.events, drops.spans, drops.instants, drops.frames
        );
    }
    let keep_checkpoint = match outcome.disposition {
        Disposition::Done(result) => {
            shared.metrics.incr("completions");
            rec.state = JobState::Done;
            rec.result = Some(*result);
            rec.error = None;
            false
        }
        Disposition::Failed(e) => {
            shared.metrics.incr("failures");
            rec.state = JobState::Failed;
            rec.error = Some((error_kind(&e).into(), e.to_string()));
            false
        }
        Disposition::Cancelled(detail) => {
            shared.metrics.incr("cancellations");
            rec.state = JobState::Cancelled;
            rec.error = Some(("cancelled".into(), detail));
            false
        }
        Disposition::Retry(e) => {
            eprintln!(
                "serve: job {id}: attempt {} failed retryably ({e}); requeueing damped",
                rec.attempt
            );
            shared.metrics.incr("retries");
            rec.state = JobState::Queued;
            rec.attempt += 1;
            rec.error = None;
            // A fresh (damped) run must not resume the diverged trajectory.
            false
        }
        Disposition::Requeue => {
            shared.metrics.incr("requeues");
            rec.state = JobState::Queued;
            // Keep the checkpoint: the next incarnation resumes bitwise.
            true
        }
    };
    shared
        .metrics
        .instant("settle", format!("job {id} -> {}", rec.state.label()));
    if !keep_checkpoint {
        shared.store.remove_checkpoint(id);
    }
    if let Err(e) = shared.store.persist_record(&rec) {
        eprintln!("serve: job {id}: outcome persist failed: {e}");
    }
    let mut inner = shared.inner.lock().unwrap();
    inner.controls.remove(&id);
    inner.records.insert(id, rec);
    drop(inner);
    shared.queue_cv.notify_one();
    shared.done_cv.notify_all();
}

fn worker_loop(shared: &Arc<Shared>) {
    let threads = if shared.cfg.job_threads > 0 {
        shared.cfg.job_threads
    } else {
        (rdp_par::global_threads() / shared.cfg.workers.max(1)).max(1)
    };
    while let Some((rec, ctl)) = claim_next(shared) {
        let outcome = rdp_par::with_local_threads(threads, || {
            execute_job(&shared.store, &rec, &ctl, &shared.drain)
        });
        settle(shared, rec, &ctl, outcome);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::job::JobSpec;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdp-serve-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec() -> JobSpec {
        JobSpec {
            input: "fft_1".into(),
            preset: "ours".into(),
            fast: true,
            gp_max_iters: Some(40),
            max_route_iters: Some(2),
            gp_iters_per_route: Some(4),
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_wait_fetch_roundtrip() {
        let root = tmp_root("roundtrip");
        let server = Server::start(ServeConfig {
            dir: root.clone(),
            ..ServeConfig::default()
        })
        .unwrap();
        let client = Client::new(server.local_addr().to_string());
        client.ping().unwrap();
        let id = client.submit(&small_spec()).unwrap();
        let outcome = client.wait(id, 20, 120_000).unwrap();
        let (reference, _) = crate::worker::reference_run(&small_spec()).unwrap();
        assert_eq!(outcome.hpwl_bits, reference.hpwl.to_bits());
        assert_eq!(outcome.positions.len(), reference.positions.len());
        assert_eq!(outcome.positions, reference.positions);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn queue_full_is_typed_busy_with_retry_hint() {
        let root = tmp_root("busy");
        // No workers: jobs stay queued, making the bound deterministic.
        let server = Server::start(ServeConfig {
            dir: root.clone(),
            workers: 0,
            max_queue: 2,
            retry_after_ms: 350,
            ..ServeConfig::default()
        })
        .unwrap();
        let client = Client::new(server.local_addr().to_string());
        client.submit(&small_spec()).unwrap();
        client.submit(&small_spec()).unwrap();
        let err = client.submit(&small_spec()).unwrap_err();
        match err {
            RdpError::Busy { retry_after_ms, .. } => assert_eq!(retry_after_ms, 350),
            other => panic!("expected Busy, got {other}"),
        }
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancel_queued_job_is_durable() {
        let root = tmp_root("cancel");
        let server = Server::start(ServeConfig {
            dir: root.clone(),
            workers: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let client = Client::new(server.local_addr().to_string());
        let id = client.submit(&small_spec()).unwrap();
        client.cancel(id).unwrap();
        let status = client.status(id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        // Durable: the record on disk is cancelled too.
        let store = Store::open(&root).unwrap();
        let bytes = std::fs::read(store.record_path(id)).unwrap();
        assert_eq!(
            JobRecord::from_bytes(&bytes).unwrap().state,
            JobState::Cancelled
        );
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}
