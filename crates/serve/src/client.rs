//! Typed client for the `rdp serve` protocol.
//!
//! One TCP connection per request (the protocol is stateless), every
//! connect/read/write under the [`FrameLimits`] deadline, and `ok:false`
//! responses rebuilt into typed [`RdpError`]s. Floats cross the wire via
//! the shortest-round-trip formatter, so results (`hpwl`, positions) are
//! recovered **bitwise** — [`JobOutcome::hpwl_bits`] carries the exact
//! bit pattern for scripted comparisons.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rdp_db::Point;
use rdp_guard::RdpError;
use rdp_obs::json::{self, Value};

use crate::job::{JobSpec, JobState};
use crate::protocol::{error_from_response, read_frame, write_frame, FrameLimits, WatchParams};
use crate::telemetry::{validate_stats_json, StatsSummary};

/// What `ping` reports about the peer: liveness plus identity. `rdp top`
/// refuses to render against a peer whose `protocol_version` differs
/// from this build's [`crate::protocol::PROTOCOL_VERSION`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PingInfo {
    /// The server's crate version string (absent on pre-telemetry peers).
    pub server_version: Option<String>,
    /// The server's wire protocol version (absent on pre-telemetry peers).
    pub protocol_version: Option<u64>,
}

/// One job's status as reported by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Retry attempts consumed.
    pub attempt: u64,
    /// Wall-clock milliseconds consumed across attempts and restarts.
    pub consumed_ms: u64,
    /// Error `(kind, detail)` for failed jobs.
    pub error: Option<(String, String)>,
    /// Final HPWL for done jobs.
    pub hpwl: Option<f64>,
    /// Next routability iteration, for running jobs with progress.
    pub route_iter: Option<u64>,
}

/// A completed job's result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: u64,
    /// Final attempt number.
    pub attempt: u64,
    /// Total wall-clock milliseconds consumed.
    pub consumed_ms: u64,
    /// Final HPWL (bitwise-identical to the server's).
    pub hpwl: f64,
    /// Exact bit pattern of `hpwl` as transported in `hpwl_bits`.
    pub hpwl_bits: u64,
    /// Final density overflow.
    pub density_overflow: f64,
    /// Wirelength-phase iterations.
    pub gp_iterations: u64,
    /// Routability iterations.
    pub route_iterations: u64,
    /// Final attempt's placement wall-clock in seconds.
    pub place_seconds: f64,
    /// Degraded-mode warnings.
    pub warnings: Vec<String>,
    /// Cell positions (empty unless requested).
    pub positions: Vec<Point>,
}

fn state_from_label(label: &str) -> Result<JobState, RdpError> {
    Ok(match label {
        "queued" => JobState::Queued,
        "running" => JobState::Running,
        "done" => JobState::Done,
        "failed" => JobState::Failed,
        "cancelled" => JobState::Cancelled,
        other => {
            return Err(RdpError::protocol(format!(
                "unknown job state `{other}` in response"
            )))
        }
    })
}

fn take_u64(v: &Value, key: &str) -> Result<u64, RdpError> {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| RdpError::protocol(format!("response missing integer `{key}`")))
}

fn take_f64(v: &Value, key: &str) -> Result<f64, RdpError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| RdpError::protocol(format!("response missing number `{key}`")))
}

fn parse_status(v: &Value) -> Result<JobStatus, RdpError> {
    let state = state_from_label(
        v.get("state")
            .and_then(Value::as_str)
            .ok_or_else(|| RdpError::protocol("status missing `state`"))?,
    )?;
    Ok(JobStatus {
        id: take_u64(v, "id")?,
        state,
        attempt: take_u64(v, "attempt")?,
        consumed_ms: take_u64(v, "consumed_ms")?,
        error: match (
            v.get("kind").and_then(Value::as_str),
            v.get("error").and_then(Value::as_str),
        ) {
            (Some(k), Some(e)) => Some((k.to_string(), e.to_string())),
            _ => None,
        },
        hpwl: v.get("hpwl").and_then(Value::as_f64),
        route_iter: v
            .get("route_iter")
            .and_then(Value::as_f64)
            .map(|n| n as u64),
    })
}

/// One long-poll chunk issued by [`Client::wait`] (milliseconds). Kept
/// well under the default frame read deadline so a chunk can never trip
/// the client's own I/O timeout.
const WAIT_CHUNK_MS: u64 = 2_000;

/// Protocol client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    limits: FrameLimits,
}

impl Client {
    /// A client with default frame limits.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            limits: FrameLimits::default(),
        }
    }

    /// A client with explicit frame limits (timeouts, max frame).
    pub fn with_limits(addr: impl Into<String>, limits: FrameLimits) -> Client {
        Client {
            addr: addr.into(),
            limits,
        }
    }

    /// One request/response roundtrip on a fresh connection.
    fn roundtrip(&self, payload: &str) -> Result<Value, RdpError> {
        self.roundtrip_waiting(payload, 0)
    }

    /// Roundtrip whose *read* deadline is widened by `extra_wait_ms` —
    /// for long-poll requests where the server legitimately holds the
    /// response that long before answering.
    fn roundtrip_waiting(&self, payload: &str, extra_wait_ms: u64) -> Result<Value, RdpError> {
        self.roundtrip_text(payload, extra_wait_ms).map(|(_, v)| v)
    }

    /// Like [`Client::roundtrip_waiting`], but also hands back the exact
    /// response text — for callers that re-validate or persist the raw
    /// payload (e.g. `stats --json`).
    fn roundtrip_text(
        &self,
        payload: &str,
        extra_wait_ms: u64,
    ) -> Result<(String, Value), RdpError> {
        let target = self
            .addr
            .to_socket_addrs()
            .map_err(|e| RdpError::protocol(format!("resolve {}: {e}", self.addr)))?
            .next()
            .ok_or_else(|| RdpError::protocol(format!("{} resolves to nothing", self.addr)))?;
        let mut stream = TcpStream::connect_timeout(&target, self.limits.io_timeout)
            .map_err(|e| RdpError::protocol(format!("connect {}: {e}", self.addr)))?;
        write_frame(&mut stream, payload.as_bytes(), &self.limits)?;
        let read_limits = FrameLimits {
            max_frame: self.limits.max_frame,
            io_timeout: self.limits.io_timeout + Duration::from_millis(extra_wait_ms),
        };
        let response = read_frame(&mut stream, &read_limits)?;
        let text = std::str::from_utf8(&response)
            .map_err(|e| RdpError::protocol(format!("response is not UTF-8: {e}")))?;
        let v =
            json::parse(text).map_err(|e| RdpError::protocol(format!("bad response JSON: {e}")))?;
        match v.get("ok") {
            Some(Value::Bool(true)) => Ok((text.to_string(), v)),
            Some(Value::Bool(false)) => Err(error_from_response(&v)),
            _ => Err(RdpError::protocol("response missing `ok` field")),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), RdpError> {
        self.roundtrip("{\"cmd\":\"ping\"}").map(|_| ())
    }

    /// Liveness probe that also reports the peer's identity (version
    /// fields are `None` on pre-telemetry servers).
    pub fn ping_info(&self) -> Result<PingInfo, RdpError> {
        let v = self.roundtrip("{\"cmd\":\"ping\"}")?;
        Ok(PingInfo {
            server_version: v
                .get("server_version")
                .and_then(Value::as_str)
                .map(str::to_string),
            protocol_version: v
                .get("protocol_version")
                .and_then(Value::as_f64)
                .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                .map(|n| n as u64),
        })
    }

    /// Fetches the server's lifetime telemetry snapshot, schema-checked
    /// with [`validate_stats_json`] before it is handed back. Returns
    /// the exact response text (for `--json` passthrough or writing to
    /// a file) alongside the validated summary.
    pub fn stats(&self) -> Result<(String, StatsSummary), RdpError> {
        let (text, _) = self.roundtrip_text("{\"cmd\":\"stats\"}", 0)?;
        let summary = validate_stats_json(&text)
            .map_err(|e| RdpError::protocol(format!("stats response failed validation: {e}")))?;
        Ok((text, summary))
    }

    /// One watch poll. With `id` set the server reports that job's
    /// events past `seq` and series points past `after_step`; without,
    /// it reports fleet activity past `seq`. The server holds the
    /// request up to `wait_ms`; no news inside its cap answers a typed
    /// `Busy { retry_after_ms }`.
    pub fn watch(&self, p: &WatchParams) -> Result<Value, RdpError> {
        let mut payload = String::from("{\"cmd\":\"watch\"");
        if let Some(id) = p.id {
            payload.push_str(&format!(",\"id\":{id}"));
        }
        payload.push_str(&format!(",\"seq\":{}", p.seq));
        if let Some(step) = p.after_step {
            payload.push_str(&format!(",\"after_step\":{step}"));
        }
        if !p.series.is_empty() {
            payload.push_str(",\"series\":[");
            for (i, name) in p.series.iter().enumerate() {
                if i > 0 {
                    payload.push(',');
                }
                payload.push('"');
                payload.push_str(&json::escape(name));
                payload.push('"');
            }
            payload.push(']');
        }
        payload.push_str(&format!(",\"wait_ms\":{}}}", p.wait_ms));
        self.roundtrip_waiting(&payload, p.wait_ms)
    }

    /// Submits a job; returns its id.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, RdpError> {
        let v = self.roundtrip(&format!(
            "{{\"cmd\":\"submit\",\"spec\":{}}}",
            spec.to_json()
        ))?;
        take_u64(&v, "id")
    }

    /// Status of one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, RdpError> {
        let v = self.roundtrip(&format!("{{\"cmd\":\"status\",\"id\":{id}}}"))?;
        parse_status(
            v.get("job")
                .ok_or_else(|| RdpError::protocol("status response missing `job`"))?,
        )
    }

    /// Status of every job the server knows about.
    pub fn status_all(&self) -> Result<Vec<JobStatus>, RdpError> {
        let v = self.roundtrip("{\"cmd\":\"status\"}")?;
        let jobs = v
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or_else(|| RdpError::protocol("status response missing `jobs`"))?;
        jobs.iter().map(parse_status).collect()
    }

    /// Requests cancellation of a queued or running job.
    pub fn cancel(&self, id: u64) -> Result<(), RdpError> {
        self.roundtrip(&format!("{{\"cmd\":\"cancel\",\"id\":{id}}}"))
            .map(|_| ())
    }

    /// Fetches a terminal job's result. Queued/running jobs come back as
    /// `Busy` (poll again), failed jobs as their stored typed error.
    pub fn result(&self, id: u64, positions: bool) -> Result<JobOutcome, RdpError> {
        self.result_wait(id, positions, 0)
    }

    /// Like [`Client::result`], but asks the server to hold the request
    /// open up to `wait_ms` while the job is still queued/running
    /// (long-poll). The server caps the hold on its side; a capped or
    /// drained wait still answers `Busy`.
    pub fn result_wait(
        &self,
        id: u64,
        positions: bool,
        wait_ms: u64,
    ) -> Result<JobOutcome, RdpError> {
        let v = self.roundtrip_waiting(
            &format!("{{\"cmd\":\"result\",\"id\":{id},\"positions\":{positions},\"wait_ms\":{wait_ms}}}"),
            wait_ms,
        )?;
        let hpwl_bits = v
            .get("hpwl_bits")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .ok_or_else(|| RdpError::protocol("result missing `hpwl_bits`"))?;
        let warnings = v
            .get("warnings")
            .and_then(Value::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let mut out = JobOutcome {
            id: take_u64(&v, "id")?,
            attempt: take_u64(&v, "attempt")?,
            consumed_ms: take_u64(&v, "consumed_ms")?,
            hpwl: take_f64(&v, "hpwl")?,
            hpwl_bits,
            density_overflow: take_f64(&v, "density_overflow")?,
            gp_iterations: take_u64(&v, "gp_iterations")?,
            route_iterations: take_u64(&v, "route_iterations")?,
            place_seconds: take_f64(&v, "place_seconds")?,
            warnings,
            positions: Vec::new(),
        };
        if let Some(arr) = v.get("positions").and_then(Value::as_arr) {
            if arr.len() % 2 != 0 {
                return Err(RdpError::protocol("positions array has odd length"));
            }
            out.positions = arr
                .chunks(2)
                .map(|xy| match (xy[0].as_f64(), xy[1].as_f64()) {
                    (Some(x), Some(y)) => Ok(Point::new(x, y)),
                    _ => Err(RdpError::protocol("non-numeric position coordinate")),
                })
                .collect::<Result<_, _>>()?;
        }
        Ok(out)
    }

    /// Polls until the job is terminal, up to `budget_ms` wall-clock.
    /// Done jobs return their outcome (with positions); failed/cancelled
    /// jobs return their typed error; budget exhaustion is a typed
    /// `Deadline` error.
    pub fn wait(&self, id: u64, poll_ms: u64, budget_ms: u64) -> Result<JobOutcome, RdpError> {
        let start = Instant::now();
        loop {
            // Long-poll in bounded chunks: the server holds each request
            // until the job settles (or its own cap), so a waiting
            // client costs one held connection instead of a poll storm.
            let remaining = budget_ms.saturating_sub(start.elapsed().as_millis() as u64);
            match self.result_wait(id, true, remaining.min(WAIT_CHUNK_MS)) {
                Err(RdpError::Busy { .. }) => {}
                other => return other,
            }
            let elapsed = start.elapsed().as_millis() as u64;
            if elapsed >= budget_ms {
                return Err(RdpError::Deadline {
                    detail: format!("waiting for job {id}"),
                    elapsed_ms: elapsed,
                    budget_ms,
                });
            }
            // Only reached when the server answered `Busy` early (its
            // cap, or a drain); back off at the caller's poll interval.
            std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
        }
    }

    /// Asks the server to drain and exit; returns how many still-live
    /// (queued/running) jobs the drain left durable for the next start
    /// (`0` when a pre-telemetry server omits the count).
    pub fn shutdown(&self) -> Result<u64, RdpError> {
        let v = self.roundtrip("{\"cmd\":\"shutdown\"}")?;
        Ok(v.get("drained_jobs")
            .and_then(Value::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as u64)
            .unwrap_or(0))
    }
}
