//! Length-prefixed JSON-over-TCP wire protocol.
//!
//! Frame layout: a 4-byte little-endian payload length followed by that
//! many bytes of UTF-8 JSON (one request or response object per frame).
//! Both directions enforce [`FrameLimits`]: a claimed length above
//! `max_frame` is rejected before any payload is read, and every read and
//! write carries a hard wall-clock deadline so a slow or stalled peer
//! produces a typed [`RdpError::Protocol`] instead of a hang.
//!
//! Requests are `{"cmd": "...", ...}` objects; responses carry
//! `{"ok": true, ...}` or `{"ok": false, "kind": K, "error": msg, ...}`
//! where `kind` is the stable [`error_kind`] label of the [`RdpError`]
//! variant, letting clients rebuild typed errors across the wire.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rdp_guard::RdpError;
use rdp_obs::json::{self, Value};

use crate::job::JobSpec;

/// Wire protocol version. Bumped whenever a request/response shape changes
/// incompatibly; `ping` reports it so clients (notably `rdp top`, which
/// parses streaming responses) can refuse a mismatched peer with a typed
/// error instead of a JSON parse failure.
pub const PROTOCOL_VERSION: u64 = 2;

/// Default cap on a single frame's payload (1 MiB holds the positions of
/// well over 30k cells; larger results stream in run-dir artifacts).
pub const MAX_FRAME_DEFAULT: usize = 1 << 20;

/// Bounds on a `watch` request's series-name filter: at most
/// [`WATCH_MAX_SERIES`] names of at most [`WATCH_MAX_NAME_BYTES`] bytes
/// each. An oversized filter is a typed `Protocol` error at parse time —
/// the request never reaches a handler.
pub const WATCH_MAX_SERIES: usize = 16;
/// Per-name byte cap for `watch` series filters.
pub const WATCH_MAX_NAME_BYTES: usize = 64;

/// Default per-frame I/O deadline.
pub const IO_TIMEOUT_DEFAULT_MS: u64 = 5_000;

/// Per-connection frame bounds (shared by server and client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Maximum payload bytes a frame may claim or carry.
    pub max_frame: usize,
    /// Wall-clock budget for reading or writing one complete frame.
    pub io_timeout: Duration,
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits {
            max_frame: MAX_FRAME_DEFAULT,
            io_timeout: Duration::from_millis(IO_TIMEOUT_DEFAULT_MS),
        }
    }
}

fn io_protocol(what: &str, e: std::io::Error) -> RdpError {
    RdpError::protocol(format!("{what}: {e}"))
}

/// Reads exactly `buf.len()` bytes before `deadline`, whatever the peer's
/// pacing — a slow-loris sending one byte per poll still cannot extend
/// the total budget.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), RdpError> {
    let mut done = 0usize;
    while done < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(RdpError::protocol(format!(
                "read deadline exceeded after {done} of {} frame bytes",
                buf.len()
            )));
        }
        stream
            .set_read_timeout(Some(deadline - now))
            .map_err(|e| io_protocol("set_read_timeout", e))?;
        match stream.read(&mut buf[done..]) {
            Ok(0) => {
                return Err(RdpError::protocol(format!(
                    "connection closed mid-frame ({done} of {} bytes)",
                    buf.len()
                )))
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(RdpError::protocol(format!(
                    "read deadline exceeded after {done} of {} frame bytes",
                    buf.len()
                )))
            }
            Err(e) => return Err(io_protocol("read", e)),
        }
    }
    Ok(())
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly before sending any header byte (the normal end of a session).
pub fn read_frame_opt(
    stream: &mut TcpStream,
    limits: &FrameLimits,
) -> Result<Option<Vec<u8>>, RdpError> {
    let deadline = Instant::now() + limits.io_timeout;
    let mut header = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a truncated header.
    stream
        .set_read_timeout(Some(limits.io_timeout))
        .map_err(|e| io_protocol("set_read_timeout", e))?;
    let first = loop {
        match stream.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break header[0],
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(RdpError::protocol("read deadline exceeded awaiting frame"))
            }
            Err(e) => return Err(io_protocol("read", e)),
        }
    };
    header[0] = first;
    read_exact_deadline(stream, &mut header[1..], deadline)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > limits.max_frame {
        return Err(RdpError::protocol(format!(
            "frame of {len} bytes exceeds the {}-byte limit",
            limits.max_frame
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_deadline(stream, &mut payload, deadline)?;
    Ok(Some(payload))
}

/// Reads one frame, treating clean EOF as a protocol error (client side,
/// where a response is always expected).
pub fn read_frame(stream: &mut TcpStream, limits: &FrameLimits) -> Result<Vec<u8>, RdpError> {
    read_frame_opt(stream, limits)?
        .ok_or_else(|| RdpError::protocol("connection closed before a response frame"))
}

/// Writes one frame under the write deadline.
pub fn write_frame(
    stream: &mut TcpStream,
    payload: &[u8],
    limits: &FrameLimits,
) -> Result<(), RdpError> {
    if payload.len() > limits.max_frame {
        return Err(RdpError::protocol(format!(
            "refusing to send a {}-byte frame (limit {})",
            payload.len(),
            limits.max_frame
        )));
    }
    stream
        .set_write_timeout(Some(limits.io_timeout))
        .map_err(|e| io_protocol("set_write_timeout", e))?;
    let header = (payload.len() as u32).to_le_bytes();
    let write_all = |stream: &mut TcpStream, bytes: &[u8]| match stream.write_all(bytes) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => Err(
            RdpError::protocol("write deadline exceeded sending a frame"),
        ),
        Err(e) => Err(io_protocol("write", e)),
    };
    write_all(stream, &header)?;
    write_all(stream, payload)?;
    stream.flush().map_err(|e| io_protocol("flush", e))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a job.
    Submit(JobSpec),
    /// Status of one job (`Some(id)`) or the whole queue (`None`).
    Status(Option<u64>),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Fetch a terminal job's result; `bool` asks for cell positions,
    /// the `u64` is a long-poll budget in milliseconds — the server
    /// holds the request open (bounded by its own cap) while the job is
    /// still queued/running, 0 answers immediately.
    Result(u64, bool, u64),
    /// Stream progress frames until the job reaches a terminal state.
    Stream(u64),
    /// One-shot service telemetry snapshot (fleet counters, per-op latency
    /// histograms, gauges, per-job live state).
    Stats,
    /// Bounded long-poll for telemetry deltas on one job (`id: Some`) or
    /// the whole fleet (`id: None`); see [`WatchParams`].
    Watch(WatchParams),
    /// Graceful drain: stop accepting, checkpoint running jobs, exit.
    Shutdown,
}

/// Parameters of a `watch` long-poll.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WatchParams {
    /// Job to watch, or `None` for fleet-level activity.
    pub id: Option<u64>,
    /// Event-sequence cursor: only trace events with sequence number
    /// greater than this are returned (job watch); for a fleet watch this
    /// is the activity cursor from the previous response.
    pub seq: u64,
    /// Series cursor: only series points with `step > after_step` are
    /// returned.
    pub after_step: Option<u64>,
    /// Restrict returned series to these names (empty = canonical set).
    pub series: Vec<String>,
    /// Long-poll budget in ms; the server holds the request open (bounded
    /// by its own cap) until there is news. 0 answers immediately.
    pub wait_ms: u64,
}

fn need_id(v: &Value, cmd: &str) -> Result<u64, RdpError> {
    v.get("id")
        .and_then(Value::as_f64)
        .filter(|id| id.fract() == 0.0 && *id >= 0.0)
        .map(|id| id as u64)
        .ok_or_else(|| RdpError::protocol(format!("`{cmd}` needs a non-negative integer `id`")))
}

/// Parses a request frame. Any malformed input — invalid UTF-8, invalid
/// JSON, an unknown command, a missing field — is a typed `Protocol`
/// error, never a panic.
pub fn parse_request(payload: &[u8]) -> Result<Request, RdpError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| RdpError::protocol(format!("frame is not UTF-8: {e}")))?;
    let v = json::parse(text).map_err(|e| RdpError::protocol(format!("bad request JSON: {e}")))?;
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| RdpError::protocol("request object needs a string `cmd`"))?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let spec = v
                .get("spec")
                .ok_or_else(|| RdpError::protocol("`submit` needs a `spec` object"))?;
            Ok(Request::Submit(JobSpec::from_json(spec)?))
        }
        "status" => match v.get("id") {
            Some(_) => Ok(Request::Status(Some(need_id(&v, "status")?))),
            None => Ok(Request::Status(None)),
        },
        "cancel" => Ok(Request::Cancel(need_id(&v, "cancel")?)),
        "result" => {
            let positions = matches!(v.get("positions"), Some(Value::Bool(true)));
            let wait_ms = v
                .get("wait_ms")
                .and_then(Value::as_f64)
                .filter(|w| *w >= 0.0 && w.is_finite())
                .map_or(0, |w| w as u64);
            Ok(Request::Result(need_id(&v, "result")?, positions, wait_ms))
        }
        "stream" => Ok(Request::Stream(need_id(&v, "stream")?)),
        "stats" => Ok(Request::Stats),
        "watch" => {
            let id = match v.get("id") {
                Some(_) => Some(need_id(&v, "watch")?),
                None => None,
            };
            let take_u64 = |key: &str| {
                v.get(key)
                    .and_then(Value::as_f64)
                    .filter(|w| *w >= 0.0 && w.is_finite())
                    .map(|w| w as u64)
            };
            let mut series = Vec::new();
            if let Some(list) = v.get("series") {
                let items = match list {
                    Value::Arr(items) => items,
                    _ => return Err(RdpError::protocol("`watch` `series` must be an array")),
                };
                if items.len() > WATCH_MAX_SERIES {
                    return Err(RdpError::protocol(format!(
                        "oversized watch filter: {} series names exceed the cap of {WATCH_MAX_SERIES}",
                        items.len()
                    )));
                }
                for item in items {
                    let name = item.as_str().ok_or_else(|| {
                        RdpError::protocol("`watch` `series` entries must be strings")
                    })?;
                    if name.len() > WATCH_MAX_NAME_BYTES {
                        return Err(RdpError::protocol(format!(
                            "oversized watch filter: series name of {} bytes exceeds the \
                             {WATCH_MAX_NAME_BYTES}-byte cap",
                            name.len()
                        )));
                    }
                    series.push(name.to_string());
                }
            }
            Ok(Request::Watch(WatchParams {
                id,
                seq: take_u64("seq").unwrap_or(0),
                after_step: take_u64("after_step"),
                series,
                wait_ms: take_u64("wait_ms").unwrap_or(0),
            }))
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RdpError::protocol(format!("unknown command `{other}`"))),
    }
}

/// Whether an error is a frame-size rejection (either direction). The
/// server's telemetry counts these separately from other protocol faults:
/// they indicate a peer pushing past [`FrameLimits::max_frame`], not a
/// malformed payload.
pub fn is_frame_limit(e: &RdpError) -> bool {
    matches!(e, RdpError::Protocol { detail } if detail.contains("-byte limit")
        || detail.contains("refusing to send"))
}

/// Stable wire label for each [`RdpError`] variant.
pub fn error_kind(e: &RdpError) -> &'static str {
    match e {
        RdpError::Parse { .. } => "parse",
        RdpError::Design { .. } => "design",
        RdpError::NonFinite { .. } => "non-finite",
        RdpError::Diverged { .. } => "diverged",
        RdpError::Checkpoint { .. } => "checkpoint",
        RdpError::Config { .. } => "config",
        RdpError::Deadline { .. } => "deadline",
        RdpError::Cancelled { .. } => "cancelled",
        RdpError::Protocol { .. } => "protocol",
        RdpError::Busy { .. } => "busy",
        RdpError::Internal { .. } => "internal",
    }
}

/// Serializes an error as an `{"ok":false,...}` response payload.
pub fn error_response(e: &RdpError) -> Vec<u8> {
    let mut out = format!(
        "{{\"ok\":false,\"kind\":{},\"error\":{}",
        crate::job::jstr(error_kind(e)),
        crate::job::jstr(&e.to_string())
    );
    if let RdpError::Busy { retry_after_ms, .. } = e {
        out.push_str(&format!(",\"retry_after_ms\":{retry_after_ms}"));
    }
    if let RdpError::Deadline {
        elapsed_ms,
        budget_ms,
        ..
    } = e
    {
        out.push_str(&format!(
            ",\"elapsed_ms\":{elapsed_ms},\"budget_ms\":{budget_ms}"
        ));
    }
    out.push('}');
    out.into_bytes()
}

/// Rebuilds a typed error from a parsed `{"ok":false,...}` response.
/// Variants whose full payload does not cross the wire (`Parse`,
/// `Diverged`, …) come back with the transported display string intact.
pub fn error_from_response(v: &Value) -> RdpError {
    let detail = v
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or("(no detail)")
        .to_string();
    match v.get("kind").and_then(Value::as_str) {
        Some("busy") => RdpError::Busy {
            detail,
            retry_after_ms: v
                .get("retry_after_ms")
                .and_then(Value::as_f64)
                .unwrap_or(0.0) as u64,
        },
        Some("deadline") => RdpError::Deadline {
            detail,
            elapsed_ms: v.get("elapsed_ms").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            budget_ms: v.get("budget_ms").and_then(Value::as_f64).unwrap_or(0.0) as u64,
        },
        Some("cancelled") => RdpError::Cancelled { detail },
        Some("protocol") => RdpError::Protocol { detail },
        Some("config") => RdpError::Config { detail },
        Some("checkpoint") => RdpError::Checkpoint { detail },
        Some("parse") => RdpError::Parse {
            context: "serve response".into(),
            line: None,
            message: detail,
        },
        Some("design") => RdpError::Design { message: detail },
        _ => RdpError::Internal { detail },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject_garbage() {
        assert_eq!(parse_request(b"{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request(b"{\"cmd\":\"status\"}").unwrap(),
            Request::Status(None)
        );
        assert_eq!(
            parse_request(b"{\"cmd\":\"status\",\"id\":7}").unwrap(),
            Request::Status(Some(7))
        );
        assert_eq!(
            parse_request(b"{\"cmd\":\"result\",\"id\":1,\"positions\":true}").unwrap(),
            Request::Result(1, true, 0)
        );
        assert_eq!(
            parse_request(b"{\"cmd\":\"result\",\"id\":1,\"wait_ms\":2500}").unwrap(),
            Request::Result(1, false, 2500)
        );
        assert_eq!(
            parse_request(b"{\"cmd\":\"result\",\"id\":1,\"wait_ms\":-4}").unwrap(),
            Request::Result(1, false, 0)
        );

        for bad in [
            &b"\xff\xfe"[..],
            b"not json",
            b"{\"cmd\":\"warp\"}",
            b"{\"cmd\":\"cancel\"}",
            b"{\"cmd\":\"cancel\",\"id\":-1}",
            b"{\"cmd\":\"cancel\",\"id\":1.5}",
            b"{\"no_cmd\":1}",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(matches!(err, RdpError::Protocol { .. }), "{bad:?}: {err}");
        }
    }

    #[test]
    fn stats_and_watch_parse_with_filter_caps() {
        assert_eq!(
            parse_request(b"{\"cmd\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(b"{\"cmd\":\"watch\"}").unwrap(),
            Request::Watch(WatchParams::default())
        );
        assert_eq!(
            parse_request(
                b"{\"cmd\":\"watch\",\"id\":3,\"seq\":17,\"after_step\":4,\
                  \"series\":[\"hpwl\",\"overflow\"],\"wait_ms\":500}"
            )
            .unwrap(),
            Request::Watch(WatchParams {
                id: Some(3),
                seq: 17,
                after_step: Some(4),
                series: vec!["hpwl".into(), "overflow".into()],
                wait_ms: 500,
            })
        );

        // Oversized filters are typed Protocol errors at parse time.
        let many: String = (0..WATCH_MAX_SERIES + 1)
            .map(|i| format!("\"s{i}\""))
            .collect::<Vec<_>>()
            .join(",");
        let long_name = "n".repeat(WATCH_MAX_NAME_BYTES + 1);
        for bad in [
            format!("{{\"cmd\":\"watch\",\"series\":[{many}]}}"),
            format!("{{\"cmd\":\"watch\",\"series\":[\"{long_name}\"]}}"),
            "{\"cmd\":\"watch\",\"series\":\"hpwl\"}".to_string(),
            "{\"cmd\":\"watch\",\"series\":[7]}".to_string(),
            "{\"cmd\":\"watch\",\"id\":-2}".to_string(),
        ] {
            let err = parse_request(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, RdpError::Protocol { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn frame_limit_errors_are_classified() {
        let read_side = RdpError::protocol("frame of 9999999 bytes exceeds the 1048576-byte limit");
        let write_side =
            RdpError::protocol("refusing to send a 2000000-byte frame (limit 1048576)");
        assert!(is_frame_limit(&read_side));
        assert!(is_frame_limit(&write_side));
        assert!(!is_frame_limit(&RdpError::protocol("bad request JSON: x")));
        assert!(!is_frame_limit(&RdpError::Busy {
            detail: "q".into(),
            retry_after_ms: 1,
        }));
    }

    #[test]
    fn errors_roundtrip_through_the_wire_shape() {
        let cases = vec![
            RdpError::Busy {
                detail: "queue full (4 queued)".into(),
                retry_after_ms: 250,
            },
            RdpError::Deadline {
                detail: "job 3".into(),
                elapsed_ms: 900,
                budget_ms: 500,
            },
            RdpError::Cancelled {
                detail: "drain".into(),
            },
            RdpError::protocol("oversized frame"),
            RdpError::Config {
                detail: "unknown preset".into(),
            },
        ];
        for e in cases {
            let bytes = error_response(&e);
            let v = json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
            let back = error_from_response(&v);
            assert_eq!(error_kind(&back), error_kind(&e));
            if let (
                RdpError::Busy { retry_after_ms, .. },
                RdpError::Busy {
                    retry_after_ms: back_ms,
                    ..
                },
            ) = (&e, &back)
            {
                assert_eq!(retry_after_ms, back_ms);
            }
        }
    }
}
