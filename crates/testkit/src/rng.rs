//! Deterministic, seedable PRNG: a SplitMix64-seeded xoshiro256++ core
//! with the sampling helpers the workspace needs (`gen_range`,
//! `gen_bool`, `shuffle`, normal deviates).
//!
//! The generator is defined purely over wrapping 64-bit integer
//! arithmetic, so a given seed yields a bit-identical stream on every
//! platform — the property the benchmark generator's *same seed → same
//! design* contract rests on.

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output.
///
/// Used to expand a single `u64` seed into the 256-bit xoshiro state and
/// to derive independent per-case seeds in the property harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random generator seeded via SplitMix64.
///
/// Not cryptographic — this is a *reproducibility* tool for benchmark
/// generation and property-based tests, chosen for its tiny state,
/// excellent statistical quality, and platform-independent definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box–Muller deviate (see [`Rng::normal`]).
    spare_normal: Option<u64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64 so that nearby seeds
    /// (0, 1, 2, …) still produce uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)` (`span > 0`).
    ///
    /// Uses the widening-multiply bound (Lemire's method without the
    /// rejection step): deterministic, branch-free, and with bias below
    /// `span / 2^64` — negligible for test-generation purposes.
    #[inline]
    pub fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0, "bounded(0)");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`; integer or `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard-normal deviate scaled to `mean + std_dev·N(0,1)`,
    /// via Box–Muller (the second deviate of each pair is cached).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return mean + std_dev * f64::from_bits(bits);
        }
        // Box–Muller: u1 ∈ (0,1] so ln(u1) is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some((r * theta.sin()).to_bits());
        mean + std_dev * r * theta.cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen reference into `slice` (`None` when empty).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded(slice.len() as u64) as usize])
        }
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                if span == u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded(span as u64 + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        let v: f64 = (self.start as f64..self.end as f64).sample(rng);
        v as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector_xoshiro256pp() {
        // State seeded directly (SplitMix64 of seed 0), first outputs must
        // be stable forever: this pins the generator definition so the
        // suite's generated designs can never silently change.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let a = r.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(1u64..=3);
            assert!((1..=3).contains(&b));
            let c = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = Rng::new(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "{freq}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Rng::new(23).shuffle(&mut a);
        Rng::new(23).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut r = Rng::new(29);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(r.choose(&v).unwrap()));
        }
        assert_eq!(r.choose::<u8>(&[]), None);
    }
}
