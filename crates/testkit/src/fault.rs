//! Fault-injection harness: deterministic, declarative fault plans for
//! the robustness suite.
//!
//! A [`FaultPlan`] names a fault, says where it strikes, and states the
//! contract the pipeline must honor when it does. File-level faults are
//! pure text transforms applied here ([`FaultKind::mutate_text`]); flow-
//! level faults (injected NaNs, capacity exhaustion) are descriptors that
//! the driver (`tests/robustness.rs`) translates into flow hooks. Nothing
//! here is random: every fault is a deterministic function of the plan,
//! so a failing scenario replays exactly.

/// What the pipeline must do when the fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultExpectation {
    /// The stage must return a clean typed error — never panic.
    TypedError,
    /// The flow must complete in degraded mode and record a warning.
    DegradedOk,
    /// The flow must roll back, re-tune, and still complete.
    RecoveredOk,
}

/// The fault itself.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Replace the `occurrence`-th (0-based) numeric token of an input
    /// file with unparseable garbage.
    CorruptNumber {
        /// 0-based index of the numeric token to corrupt.
        occurrence: usize,
    },
    /// Replace the `occurrence`-th numeric token with `NaN` — parsers
    /// must reject non-finite geometry, not ingest it silently.
    NonFiniteNumber {
        /// 0-based index of the numeric token to replace.
        occurrence: usize,
    },
    /// Drop every line containing `needle` (lost sections, lost headers).
    DropLinesContaining {
        /// Substring selecting the lines to drop.
        needle: &'static str,
    },
    /// Keep only the first `keep` lines of the file (truncated upload).
    TruncateLines {
        /// Number of leading lines to keep.
        keep: usize,
    },
    /// Poison the solver's reference position at a chosen iteration.
    /// `route_iter` 0 means the wirelength phase; ≥1 is that routability
    /// iteration's GP burst. The fault fires exactly once.
    NanReference {
        /// Routability iteration (0 = wirelength phase).
        route_iter: usize,
        /// GP step within that iteration.
        gp_iter: usize,
    },
    /// Poison the DC congestion gradient at a routability iteration.
    NanCongestionGrad {
        /// Routability iteration at which the gradient is poisoned.
        route_iter: usize,
    },
    /// All routing layers get zero capacity: router congestion becomes
    /// non-finite and the flow must fall back to RUDY-only congestion.
    ZeroCapacity,
    /// Triple the routed demand maps after the chosen routability
    /// iteration's real route — the congestion predictor's drift gate
    /// must trip and fall back to full routing.
    CongestionSpike {
        /// Routability iteration whose routed demand is inflated.
        route_iter: usize,
    },
    /// Degenerate power-rail geometry: DPA track derivation fails and the
    /// flow must skip the D^PG addend with a warning.
    DegenerateRails,
    /// XOR a byte of a checkpoint stream at `offset` (wrapped to len).
    CorruptCheckpointByte {
        /// Byte offset to XOR (wrapped to the stream length).
        offset: usize,
    },
    /// Keep only the first `keep` bytes of a binary stream (torn write:
    /// a record or checkpoint cut off mid-file).
    TruncateBytes {
        /// Number of leading bytes to keep.
        keep: usize,
    },
    /// Service fault: `kill -9` the server `after_ms` into the run, then
    /// restart it. The queue must replay and results stay bitwise.
    KillServer {
        /// Milliseconds to let the server run before the kill.
        after_ms: u64,
    },
    /// Service fault: send a frame whose payload is not valid JSON (or
    /// not valid UTF-8). The server must answer a typed protocol error.
    GarbageFrame,
    /// Service fault: claim a frame length beyond the server's limit.
    /// Must be rejected before any payload is read.
    OversizedFrame,
    /// Service fault: send a frame header, then only part of the payload,
    /// then stall. The server's read deadline must fire.
    TruncatedFrame,
    /// Service fault: drip request bytes slower than the read deadline
    /// allows (slow-loris). The connection must be cut, not held.
    SlowClient,
}

/// A named scenario: one fault plus its contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scenario name, printed on failure.
    pub name: &'static str,
    /// The fault to inject.
    pub kind: FaultKind,
    /// The contract the pipeline must honor.
    pub expect: FaultExpectation,
}

impl FaultPlan {
    /// Builds a named scenario.
    pub fn new(name: &'static str, kind: FaultKind, expect: FaultExpectation) -> Self {
        FaultPlan { name, kind, expect }
    }
}

fn is_numeric_token(tok: &str) -> bool {
    !tok.is_empty() && tok.parse::<f64>().is_ok()
}

impl FaultKind {
    /// Applies a file-level fault to `text`. Flow-level faults return the
    /// text unchanged (they are interpreted by the flow driver instead).
    pub fn mutate_text(&self, text: &str) -> String {
        match self {
            FaultKind::CorruptNumber { occurrence } => {
                replace_numeric_token(text, *occurrence, "x?7")
            }
            FaultKind::NonFiniteNumber { occurrence } => {
                replace_numeric_token(text, *occurrence, "NaN")
            }
            FaultKind::DropLinesContaining { needle } => text
                .lines()
                .filter(|l| !l.contains(needle))
                .map(|l| format!("{l}\n"))
                .collect(),
            FaultKind::TruncateLines { keep } => {
                text.lines().take(*keep).map(|l| format!("{l}\n")).collect()
            }
            _ => text.to_string(),
        }
    }

    /// Applies a byte-level fault to a binary stream (checkpoints, job
    /// records). Faults that are not byte transforms return the stream
    /// unchanged.
    pub fn mutate_bytes(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        match self {
            FaultKind::CorruptCheckpointByte { offset } => {
                if !out.is_empty() {
                    let i = offset % out.len();
                    out[i] ^= 0x5a;
                }
            }
            FaultKind::TruncateBytes { keep } => out.truncate(*keep),
            _ => {}
        }
        out
    }
}

/// Replaces the nth whitespace-separated numeric token, preserving all
/// other bytes of the file.
fn replace_numeric_token(text: &str, occurrence: usize, replacement: &str) -> String {
    let mut seen = 0usize;
    let mut out = String::with_capacity(text.len() + replacement.len());
    for line in text.split_inclusive('\n') {
        let body = line.strip_suffix('\n').unwrap_or(line);
        let had_newline = body.len() != line.len();
        let mut first = true;
        for tok in body.split_whitespace() {
            if !first {
                out.push(' ');
            }
            first = false;
            if is_numeric_token(tok) && seen == occurrence {
                out.push_str(replacement);
                seen += 1;
            } else {
                if is_numeric_token(tok) {
                    seen += 1;
                }
                out.push_str(tok);
            }
        }
        if body.split_whitespace().next().is_none() {
            out.push_str(body); // keep blank/whitespace-only lines
        }
        if had_newline {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "NumNodes : 3\no1 4.0 2.0\n\no2 5.5 2.0 terminal\n";

    #[test]
    fn corrupt_number_hits_exactly_one_token() {
        let m = FaultKind::CorruptNumber { occurrence: 1 }.mutate_text(SAMPLE);
        assert!(m.contains("o1 x?7 2.0"), "{m}");
        assert!(m.contains("NumNodes : 3"), "{m}");
        assert!(m.contains("o2 5.5 2.0 terminal"), "{m}");
    }

    #[test]
    fn nonfinite_number_injects_nan() {
        let m = FaultKind::NonFiniteNumber { occurrence: 3 }.mutate_text(SAMPLE);
        assert!(m.contains("o2 NaN 2.0"), "{m}");
    }

    #[test]
    fn drop_and_truncate() {
        let m = FaultKind::DropLinesContaining { needle: "o2" }.mutate_text(SAMPLE);
        assert!(!m.contains("o2"), "{m}");
        assert!(m.contains("o1"), "{m}");
        let t = FaultKind::TruncateLines { keep: 2 }.mutate_text(SAMPLE);
        assert_eq!(t.lines().count(), 2, "{t}");
    }

    #[test]
    fn flow_faults_leave_text_untouched() {
        let m = FaultKind::NanReference {
            route_iter: 1,
            gp_iter: 2,
        }
        .mutate_text(SAMPLE);
        assert_eq!(m, SAMPLE);
    }

    #[test]
    fn byte_fault_flips_one_byte() {
        let bytes = vec![1u8, 2, 3, 4];
        let m = FaultKind::CorruptCheckpointByte { offset: 6 }.mutate_bytes(&bytes);
        assert_eq!(m.len(), bytes.len());
        assert_eq!(m.iter().zip(&bytes).filter(|(a, b)| a != b).count(), 1);
        assert_ne!(m[2], bytes[2]);
    }

    #[test]
    fn truncate_bytes_cuts_the_tail() {
        let bytes = vec![9u8; 16];
        let t = FaultKind::TruncateBytes { keep: 5 }.mutate_bytes(&bytes);
        assert_eq!(t, vec![9u8; 5]);
        // Service descriptors leave streams untouched.
        let s = FaultKind::SlowClient.mutate_bytes(&bytes);
        assert_eq!(s, bytes);
    }

    #[test]
    fn mutation_is_deterministic() {
        let k = FaultKind::CorruptNumber { occurrence: 2 };
        assert_eq!(k.mutate_text(SAMPLE), k.mutate_text(SAMPLE));
    }
}
