//! # rdp-testkit — hermetic verification substrate
//!
//! In-repo, dependency-free replacements for the three external dev
//! dependencies the workspace used to pull from crates-io, so the full
//! tier-1 gate (`cargo build --release --offline && cargo test -q
//! --offline`) runs with **no network access**:
//!
//! | module | replaces | contents |
//! |---|---|---|
//! | [`rng`] | `rand` | [`Rng`]: SplitMix64-seeded xoshiro256++ with `gen_range` / `gen_bool` / `shuffle` / `normal` |
//! | [`prop`] | `proptest` | [`prop_check!`](crate::prop_check) harness: generator combinators, shrinking, seed replay |
//! | [`bench`] | `criterion` | [`BenchHarness`]: warmup + timed samples, median/p95, `BENCH_*.json` output |
//!
//! ## Determinism contract
//!
//! Everything in this crate is deterministic given its seed. The same
//! seed produces the same `u64` stream on every platform (xoshiro256++
//! is defined purely over wrapping 64-bit integer ops), which is the
//! foundation of the workspace-wide contract *same seed → same design →
//! same placement metrics* that the end-to-end determinism test
//! enforces.
//!
//! ## Replaying a property-test failure
//!
//! When a [`prop_check!`](crate::prop_check) property fails, the
//! harness shrinks the input (halving scalars toward their lower bound,
//! truncating vectors) and prints the per-case seed of the failure:
//!
//! ```text
//! [crates/gen/tests/properties.rs:35] property falsified after 7 cases (12 shrink steps)
//!   minimal input: (50, 0, 0.25, ...)
//!   error: assertion failed: ...
//!   replay: RDP_PROP_SEED=0x9e3779b97f4a7c15 cargo test -q <test_name>
//! ```
//!
//! Re-running the named test with that `RDP_PROP_SEED` environment
//! variable executes exactly the failing case (plus its shrink), which
//! makes failures reproducible across machines and CI runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod prop;
pub mod rng;

pub use bench::{BenchHarness, BenchResult, Bencher};
pub use fault::{FaultExpectation, FaultKind, FaultPlan};
pub use prop::{range, range_inclusive, select, vecs, Gen, PropConfig};
pub use rng::Rng;
