//! Micro-benchmark harness (in-repo `criterion` replacement).
//!
//! [`BenchHarness`] mirrors the slice of the criterion API the workspace
//! uses — `bench_function(name, |b| b.iter(|| …))` — with a much simpler
//! measurement model: a calibration/warmup phase sizes the per-sample
//! iteration count so one sample takes roughly
//! [`BenchHarness::target_sample_ms`], then `samples` timed samples are
//! collected and summarized as mean / median / p95 / min / max
//! nanoseconds per iteration.
//!
//! [`BenchHarness::finish`] prints a summary table and writes
//! `BENCH_<suite>.json` (machine-readable, schema below) into the
//! current directory, or `$RDP_BENCH_DIR` when set:
//!
//! ```json
//! {
//!   "suite": "kernels",
//!   "results": [
//!     { "name": "fft_1024", "samples": 20, "iters_per_sample": 512,
//!       "mean_ns": 1834.2, "median_ns": 1820.0, "p95_ns": 1910.4,
//!       "min_ns": 1799.1, "max_ns": 2012.7 }
//!   ]
//! }
//! ```
//!
//! Running a bench binary with `--test` (as `cargo test --benches` does)
//! executes every benchmark exactly once without timing or JSON output,
//! keeping the tier-1 test gate fast.

use std::time::Instant;

/// Per-sample timing context handed to the benchmark closure.
///
/// The closure must call [`Bencher::iter`] exactly once; the harness
/// decides the iteration count.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Runs `f` the harness-chosen number of times and records the
    /// wall-clock total. The closure's return value is passed through
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (fixed after calibration).
    pub iters_per_sample: u64,
    /// Mean ns/iter across samples.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
    /// Slowest sample ns/iter.
    pub max_ns: f64,
}

/// Collects benchmarks of one suite and reports them on [`finish`](BenchHarness::finish).
pub struct BenchHarness {
    suite: String,
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Calibration target for one sample's duration, in milliseconds.
    pub target_sample_ms: f64,
    /// Smoke mode (`--test`): run each benchmark once, skip reporting.
    pub test_mode: bool,
    /// Whether `RDP_BENCH_SAMPLES` fixed the sample count (the env var
    /// wins over [`sample_size`](BenchHarness::sample_size)).
    samples_from_env: bool,
    results: Vec<BenchResult>,
}

impl BenchHarness {
    /// Creates a harness for `suite`, reading CLI args: `--test` (or
    /// `RDP_BENCH_SMOKE=1`) enables smoke mode, `RDP_BENCH_SAMPLES`
    /// overrides the sample count.
    pub fn new(suite: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test")
            || std::env::var("RDP_BENCH_SMOKE").map_or(false, |v| v == "1");
        let env_samples: Option<usize> = std::env::var("RDP_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok());
        BenchHarness {
            suite: suite.to_string(),
            samples: env_samples.unwrap_or(20),
            target_sample_ms: 25.0,
            test_mode,
            samples_from_env: env_samples.is_some(),
            results: Vec::new(),
        }
    }

    /// Sets the number of timed samples (criterion's `sample_size`).
    /// A run-time `RDP_BENCH_SAMPLES` override takes precedence.
    pub fn sample_size(mut self, samples: usize) -> Self {
        if !self.samples_from_env {
            self.samples = samples.max(2);
        }
        self
    }

    /// Measures one benchmark. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`] with the code under test.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let name = name.as_ref();
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            println!("bench {name}: ok (smoke)");
            return;
        }

        // Calibration: double the iteration count until one sample takes
        // at least a quarter of the target, then scale to the target.
        let mut iters = 1u64;
        let per_iter_ns = loop {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            let per = b.elapsed_ns / iters as f64;
            if b.elapsed_ns >= self.target_sample_ms * 1e6 / 4.0 || iters >= 1 << 20 {
                break per.max(0.1);
            }
            iters *= 2;
        };
        let iters = ((self.target_sample_ms * 1e6 / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            per_iter.push(b.elapsed_ns / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);

        let result = BenchResult {
            name: name.to_string(),
            samples: self.samples,
            iters_per_sample: iters,
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            median_ns: percentile(&per_iter, 0.5),
            p95_ns: percentile(&per_iter, 0.95),
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        println!(
            "bench {:<32} median {:>12} p95 {:>12} ({} iters × {} samples)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            iters,
            self.samples
        );
        self.results.push(result);
    }

    /// Prints the summary table, writes `BENCH_<suite>.json`, and
    /// returns the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        if self.test_mode {
            println!("suite {}: smoke mode, no report written", self.suite);
            return self.results;
        }
        let path = match std::env::var("RDP_BENCH_DIR") {
            Ok(dir) => format!("{dir}/BENCH_{}.json", self.suite),
            Err(_) => format!("BENCH_{}.json", self.suite),
        };
        let json = render_json(&self.suite, &self.results);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        self.results
    }
}

/// Percentile of an ascending-sorted slice (nearest-rank interpolation).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn render_json(suite: &str, results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", escape_json(suite)));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \"p95_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"max_ns\": {:.3} }}{}\n",
            escape_json(&r.name),
            r.samples,
            r.iters_per_sample,
            r.mean_ns,
            r.median_ns,
            r.p95_ns,
            r.min_ns,
            r.max_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_harness(suite: &str) -> BenchHarness {
        BenchHarness {
            suite: suite.to_string(),
            samples: 5,
            target_sample_ms: 0.05,
            test_mode: false,
            samples_from_env: false,
            results: Vec::new(),
        }
    }

    #[test]
    fn measures_and_summarizes() {
        let mut h = quiet_harness("unit");
        h.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        assert_eq!(h.results.len(), 1);
        let r = &h.results[0];
        assert_eq!(r.name, "sum_1k");
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns <= r.p95_ns + 1e-9);
    }

    #[test]
    fn test_mode_runs_once_without_results() {
        let mut h = quiet_harness("unit");
        h.test_mode = true;
        let mut calls = 0u32;
        h.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        assert_eq!(calls, 1);
        assert!(h.results.is_empty());
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let results = vec![BenchResult {
            name: "a\"b".into(),
            samples: 3,
            iters_per_sample: 7,
            mean_ns: 1.0,
            median_ns: 1.0,
            p95_ns: 2.0,
            min_ns: 0.5,
            max_ns: 2.0,
        }];
        let json = render_json("suite", &results);
        assert!(json.contains("\"suite\": \"suite\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"iters_per_sample\": 7"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn percentile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }
}
