//! Minimal property-based testing harness (in-repo `proptest`
//! replacement).
//!
//! A property is a [`Gen`] (value generator with in-domain shrinking)
//! plus a test closure returning `Result<(), String>`. The
//! [`prop_check!`](crate::prop_check) macro runs the closure over many
//! generated cases; on failure it shrinks the input — halving scalars
//! toward their lower bound and truncating vectors — and panics with
//! the minimal counterexample **and the per-case seed**, so the failure
//! can be replayed exactly by re-running the test with
//! `RDP_PROP_SEED=<seed>`.
//!
//! ```
//! use rdp_testkit::{prop_check, prop_assert, range, vecs, PropConfig};
//!
//! prop_check!(
//!     PropConfig::cases(64),
//!     (range(0.0..100.0), vecs(range(0usize..10), 1..20)),
//!     |(scale, v): (f64, Vec<usize>)| {
//!         prop_assert!(v.iter().sum::<usize>() as f64 * scale >= 0.0);
//!         Ok(())
//!     }
//! );
//! ```

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::ops::Range;

/// Configuration of one property check.
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Number of generated cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it via SplitMix64.
    pub seed: u64,
    /// Upper bound on shrink-candidate evaluations after a failure.
    pub max_shrink_iters: u32,
}

impl PropConfig {
    /// `cases` runs from the default base seed.
    pub fn cases(cases: u32) -> Self {
        PropConfig {
            cases,
            seed: 0x5EED_0000_0000_0001,
            max_shrink_iters: 1024,
        }
    }

    /// Overrides the base seed (for fixing a suite-wide stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for PropConfig {
    fn default() -> Self {
        PropConfig::cases(256)
    }
}

/// A value generator with in-domain shrinking.
///
/// `shrink` returns *simpler* candidate values derived from a failing
/// value; every candidate must lie in the generator's domain, so the
/// harness only ever reports counterexamples the generator could have
/// produced. An empty vec ends shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
    /// Proposes simpler in-domain candidates (tried in order).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Scalar range generators
// ---------------------------------------------------------------------

/// Uniform generator over a half-open range; shrinks by halving the
/// distance to the lower bound. Built by [`range`].
#[derive(Debug, Clone)]
pub struct RangeGen<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

/// Uniform values in `lo..hi`, shrinking toward `lo`.
pub fn range<T: Copy>(r: Range<T>) -> RangeGen<T> {
    RangeGen {
        lo: r.start,
        hi: r.end,
        inclusive: false,
    }
}

/// Uniform values in `lo..=hi`, shrinking toward `lo`.
pub fn range_inclusive<T: Copy>(lo: T, hi: T) -> RangeGen<T> {
    RangeGen {
        lo,
        hi,
        inclusive: true,
    }
}

macro_rules! impl_int_range_gen {
    ($($t:ty),*) => {$(
        impl Gen for RangeGen<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                if self.inclusive {
                    rng.gen_range(self.lo..=self.hi)
                } else {
                    rng.gen_range(self.lo..self.hi)
                }
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != self.lo {
                    out.push(self.lo);
                    let half = self.lo + (v - self.lo) / 2;
                    if half != self.lo && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}
impl_int_range_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Gen for RangeGen<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        if v != self.lo {
            out.push(self.lo);
            let half = self.lo + (v - self.lo) / 2.0;
            if half != self.lo && half != v {
                out.push(half);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Choice generator
// ---------------------------------------------------------------------

/// Uniform choice from a fixed list; shrinks toward earlier entries.
/// Built by [`select`].
#[derive(Debug, Clone)]
pub struct SelectGen<T> {
    choices: Vec<T>,
}

/// Uniformly selects one of `choices` (must be non-empty); shrinking
/// proposes entries listed *before* the failing one, so put the
/// simplest choice first.
pub fn select<T: Clone + Debug + PartialEq>(choices: Vec<T>) -> SelectGen<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    SelectGen { choices }
}

impl<T: Clone + Debug + PartialEq> Gen for SelectGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        rng.choose(&self.choices).expect("non-empty").clone()
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        let idx = self
            .choices
            .iter()
            .position(|c| c == value)
            .unwrap_or(self.choices.len());
        self.choices[..idx].to_vec()
    }
}

// ---------------------------------------------------------------------
// Vec generator
// ---------------------------------------------------------------------

/// Vector of generated elements with a random length; shrinks by
/// truncation, then element-wise. Built by [`vecs`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

/// A vector of `elem`-generated values with length drawn from `len`
/// (half-open). Shrinking first truncates (half length, then one
/// shorter), then shrinks individual elements.
pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen { elem, len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.gen_range(self.len.start..self.len.end);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        // Truncations (always stay within the length domain).
        for target in [self.len.start, n / 2, n.saturating_sub(1)] {
            if target >= self.len.start && target < n {
                out.push(value[..target].to_vec());
            }
        }
        // Element-wise shrinks: first candidate per element, bounded.
        for i in 0..n.min(16) {
            if let Some(simpler) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v = value.clone();
                v[i] = simpler;
                out.push(v);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Tuple generators
// ---------------------------------------------------------------------

macro_rules! impl_tuple_gen {
    ($($g:ident / $v:ident / $i:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut v = value.clone();
                        v.$i = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_gen!(G0 / V0 / 0, G1 / V1 / 1);
impl_tuple_gen!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2);
impl_tuple_gen!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2, G3 / V3 / 3);
impl_tuple_gen!(
    G0 / V0 / 0,
    G1 / V1 / 1,
    G2 / V2 / 2,
    G3 / V3 / 3,
    G4 / V4 / 4
);
impl_tuple_gen!(
    G0 / V0 / 0,
    G1 / V1 / 1,
    G2 / V2 / 2,
    G3 / V3 / 3,
    G4 / V4 / 4,
    G5 / V5 / 5
);
impl_tuple_gen!(
    G0 / V0 / 0,
    G1 / V1 / 1,
    G2 / V2 / 2,
    G3 / V3 / 3,
    G4 / V4 / 4,
    G5 / V5 / 5,
    G6 / V6 / 6
);

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Environment variable replaying a single failing case: set it to the
/// seed printed in a failure report.
pub const REPLAY_ENV: &str = "RDP_PROP_SEED";

/// Runs a property over `config.cases` generated inputs; called via
/// [`prop_check!`](crate::prop_check).
///
/// # Panics
///
/// Panics with the shrunk counterexample, failure message, and replay
/// seed when the property is falsified.
pub fn run_prop<G, F>(file: &str, line: u32, config: &PropConfig, gen: &G, test: F)
where
    G: Gen,
    F: Fn(G::Value) -> Result<(), String>,
{
    if let Ok(replay) = std::env::var(REPLAY_ENV) {
        let raw = replay.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(raw, 16)
            .or_else(|_| replay.trim().parse::<u64>())
            .unwrap_or_else(|_| panic!("unparseable {REPLAY_ENV}={replay}"));
        run_case(file, line, config, gen, &test, seed, 0);
        return;
    }
    let mut seed_state = config.seed;
    for case in 0..config.cases {
        let case_seed = splitmix64(&mut seed_state);
        run_case(file, line, config, gen, &test, case_seed, case);
    }
}

fn run_case<G, F>(
    file: &str,
    line: u32,
    config: &PropConfig,
    gen: &G,
    test: &F,
    case_seed: u64,
    case: u32,
) where
    G: Gen,
    F: Fn(G::Value) -> Result<(), String>,
{
    let mut rng = Rng::new(case_seed);
    let value = gen.generate(&mut rng);
    if let Err(err) = test(value.clone()) {
        let (min_value, min_err, steps) = shrink_failure(gen, test, value, err, config);
        panic!(
            "[{file}:{line}] property falsified after {} case(s) ({steps} shrink step(s))\n  \
             minimal input: {min_value:?}\n  \
             error: {min_err}\n  \
             replay: {REPLAY_ENV}={case_seed:#x} cargo test -q",
            case + 1,
        );
    }
}

/// Greedy shrink: repeatedly adopt the first candidate that still fails,
/// until no candidate fails or the iteration budget is exhausted.
fn shrink_failure<G, F>(
    gen: &G,
    test: &F,
    mut value: G::Value,
    mut err: String,
    config: &PropConfig,
) -> (G::Value, String, u32)
where
    G: Gen,
    F: Fn(G::Value) -> Result<(), String>,
{
    let mut iters = 0u32;
    let mut steps = 0u32;
    'outer: while iters < config.max_shrink_iters {
        for cand in gen.shrink(&value) {
            iters += 1;
            if let Err(e) = test(cand.clone()) {
                value = cand;
                err = e;
                steps += 1;
                continue 'outer;
            }
            if iters >= config.max_shrink_iters {
                break 'outer;
            }
        }
        break;
    }
    (value, err, steps)
}

/// Runs a property: `prop_check!(config, generator, |value| { ... Ok(()) })`.
///
/// * `config` — a [`PropConfig`] (case count, seed, shrink budget).
/// * `generator` — any [`Gen`]; tuples of generators are generators.
/// * the closure takes the generated value **by value** and returns
///   `Result<(), String>`; use [`prop_assert!`](crate::prop_assert) /
///   [`prop_assert_eq!`](crate::prop_assert_eq) inside it.
#[macro_export]
macro_rules! prop_check {
    ($config:expr, $gen:expr, $test:expr $(,)?) => {
        $crate::prop::run_prop(file!(), line!(), &$config, &$gen, $test)
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: returns
/// `Err` from the property closure instead of panicking, so the harness
/// can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality counterpart of [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) ({}:{})",
                stringify!($a),
                stringify!($b),
                va,
                vb,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) — {} ({}:{})",
                stringify!($a),
                stringify!($b),
                va,
                vb,
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    }};
}

/// Inequality counterpart of [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err(format!(
                "assertion failed: {} != {} (both {:?}) ({}:{})",
                stringify!($a),
                stringify!($b),
                va,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        prop_check!(PropConfig::cases(33), range(0u64..100), |_v: u64| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 33);
    }

    #[test]
    fn failing_property_panics_with_replay_seed() {
        let result = std::panic::catch_unwind(|| {
            prop_check!(PropConfig::cases(50), range(0u64..1000), |v: u64| {
                prop_assert!(v < 10, "v was {v}");
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("RDP_PROP_SEED="), "{msg}");
        assert!(msg.contains("minimal input"), "{msg}");
    }

    #[test]
    fn shrinking_halves_scalars_to_boundary() {
        // Property fails for v >= 100: minimal failing input must shrink
        // to within one halving step of the boundary.
        let result = std::panic::catch_unwind(|| {
            prop_check!(PropConfig::cases(100), range(0u64..10_000), |v: u64| {
                prop_assert!(v < 100);
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        let min: u64 = msg
            .split("minimal input: ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((100..200).contains(&min), "shrunk to {min}");
    }

    #[test]
    fn shrinking_truncates_vecs() {
        let result = std::panic::catch_unwind(|| {
            prop_check!(
                PropConfig::cases(100),
                vecs(range(0u64..10), 0..50),
                |v: Vec<u64>| {
                    prop_assert!(v.len() < 5);
                    Ok(())
                }
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Minimal failing vec has exactly 5 elements.
        let list = msg
            .split("minimal input: ")
            .nth(1)
            .unwrap()
            .lines()
            .next()
            .unwrap();
        let n = list.matches(',').count() + 1;
        assert_eq!(n, 5, "minimal vec {list}");
    }

    #[test]
    fn tuple_generators_compose() {
        prop_check!(
            PropConfig::cases(64),
            (range(1usize..10), range(0.0..1.0), select(vec![2u32, 4, 8])),
            |(n, f, p): (usize, f64, u32)| {
                prop_assert!(n >= 1 && n < 10);
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!([2u32, 4, 8].contains(&p));
                Ok(())
            }
        );
    }

    #[test]
    fn select_shrinks_toward_earlier_choices() {
        let g = select(vec![1u32, 2, 3]);
        assert_eq!(g.shrink(&3), vec![1, 2]);
        assert!(g.shrink(&1).is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = (range(0u64..1_000_000), vecs(range(0.0..1.0), 1..10));
        let a = g.generate(&mut Rng::new(99));
        let b = g.generate(&mut Rng::new(99));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
