//! # rdp-legal — legalization and detailed placement
//!
//! The back end of the placement flow (the paper adopts Xplace-Route's
//! legalization + detailed placement; this crate is our equivalent):
//!
//! * [`build_segments`] — rows split into free intervals around macros,
//! * [`legalize`] — Tetris row assignment + Abacus in-row placement +
//!   site snapping,
//! * [`detailed_place`] — HPWL-driven adjacent swaps and order-preserving
//!   in-row shifts,
//! * [`check_legality`] — the invariant checker used by tests and flows.
//!
//! ```
//! use rdp_gen::{generate, GenParams};
//! use rdp_legal::{check_legality, legalize, LegalizeConfig};
//!
//! let mut design = generate("demo", &GenParams { num_cells: 200, ..GenParams::default() });
//! let report = legalize(&mut design, &LegalizeConfig::default());
//! assert_eq!(report.failed, 0);
//! assert!(check_legality(&design).is_legal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod detailed;
mod legalize;
mod segments;

pub use check::{check_legality, LegalityReport};
pub use detailed::{
    detailed_place, detailed_place_obs, detailed_place_virtual, detailed_place_virtual_obs,
    DetailedConfig,
};
pub use legalize::{
    legalize, legalize_obs, legalize_virtual, legalize_virtual_obs, LegalizeConfig, LegalizeReport,
};
pub use segments::{build_segments, Segment};
