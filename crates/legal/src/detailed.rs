//! Greedy detailed placement: order-preserving in-row re-optimization and
//! HPWL-driven adjacent swaps.

use crate::legalize::abacus;
use crate::segments::{build_segments, Segment};
use rdp_db::{CellId, Design, NetId, Point};

/// Configuration for [`detailed_place`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedConfig {
    /// Number of improvement passes.
    pub passes: usize,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        DetailedConfig { passes: 2 }
    }
}

/// Runs detailed placement on an already-legal design; returns the HPWL
/// improvement (positive = better). Legality is preserved.
pub fn detailed_place(design: &mut Design, cfg: &DetailedConfig) -> f64 {
    detailed_impl(design, cfg, None)
}

/// [`detailed_place`] with a `"detailed_place"` span recorded on `obs`;
/// the HPWL improvement is recorded as the `detailed_hpwl_gain` gauge.
pub fn detailed_place_obs(
    design: &mut Design,
    cfg: &DetailedConfig,
    obs: &rdp_obs::Collector,
) -> f64 {
    let _span = obs.span("detailed_place", "legal");
    let gain = detailed_impl(design, cfg, None);
    obs.gauge_set("detailed_hpwl_gain", gain);
    gain
}

/// Detailed placement that moves cells by their **virtual widths** (see
/// [`crate::legalize_virtual`]): the congestion-driven spacing from
/// inflation is preserved through the swap and shift moves.
///
/// # Panics
///
/// Panics if `virtual_widths.len() != design.num_cells()`.
pub fn detailed_place_virtual(
    design: &mut Design,
    cfg: &DetailedConfig,
    virtual_widths: &[f64],
) -> f64 {
    assert_eq!(virtual_widths.len(), design.num_cells());
    detailed_impl(design, cfg, Some(virtual_widths))
}

/// [`detailed_place_virtual`] with a `"detailed_place"` span recorded on
/// `obs`; the HPWL improvement is recorded as `detailed_hpwl_gain`.
pub fn detailed_place_virtual_obs(
    design: &mut Design,
    cfg: &DetailedConfig,
    virtual_widths: &[f64],
    obs: &rdp_obs::Collector,
) -> f64 {
    assert_eq!(virtual_widths.len(), design.num_cells());
    let _span = obs.span("detailed_place", "legal");
    let gain = detailed_impl(design, cfg, Some(virtual_widths));
    obs.gauge_set("detailed_hpwl_gain", gain);
    gain
}

fn detailed_impl(design: &mut Design, cfg: &DetailedConfig, virtual_widths: Option<&[f64]>) -> f64 {
    let before = design.hpwl();
    let segments = build_segments(design);
    let eps = 1e-6;

    for _ in 0..cfg.passes.max(1) {
        // Group movable cells by segment.
        let mut per_seg: Vec<Vec<CellId>> = vec![Vec::new(); segments.len()];
        for c in design.movable_cells() {
            let p = design.pos(c);
            if let Some(si) = segments.iter().position(|s| {
                (s.y + s.height / 2.0 - p.y).abs() < eps && p.x >= s.x0 - eps && p.x <= s.x1 + eps
            }) {
                per_seg[si].push(c);
            }
        }
        for cells in &mut per_seg {
            cells.sort_by(|&a, &b| design.pos(a).x.total_cmp(&design.pos(b).x));
        }

        // (a) adjacent swaps driven by HPWL delta. After an accepted swap
        // the next pair is skipped, so every swap stays inside its own
        // pair extent and legality is preserved.
        for cells in &per_seg {
            let mut i = 0;
            while i + 1 < cells.len() {
                if try_swap(design, cells[i], cells[i + 1], virtual_widths) {
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }

        // (b) order-preserving in-row shift toward each cell's optimal x.
        for (si, cells) in per_seg.iter().enumerate() {
            if cells.is_empty() {
                continue;
            }
            shift_row(design, &segments[si], cells, virtual_widths);
        }
    }
    before - design.hpwl()
}

/// Swaps two same-row neighbors (`a` left of `b`) by exchanging their
/// extents — `b` moves to `a`'s left edge, `a` to `b`'s right edge — when
/// that reduces the HPWL of their nets. Returns whether the swap was kept.
/// Both new footprints stay inside the union of the old ones, so no other
/// cell can be collided with.
fn try_swap(design: &mut Design, a: CellId, b: CellId, virtual_widths: Option<&[f64]>) -> bool {
    let width_of = |c: CellId| -> f64 {
        let real = design.cell(c).w;
        virtual_widths
            .map(|v| v[c.index()].max(real))
            .unwrap_or(real)
    };
    let (wa, wb) = (width_of(a), width_of(b));
    let nets = affected_nets(design, a, b);
    let before: f64 = nets.iter().map(|&n| design.net_hpwl(n)).sum();
    let (pa, pb) = (design.pos(a), design.pos(b));
    let new_pa = Point::new(pb.x + wb / 2.0 - wa / 2.0, pa.y);
    let new_pb = Point::new(pa.x - wa / 2.0 + wb / 2.0, pb.y);
    design.set_pos(a, new_pa);
    design.set_pos(b, new_pb);
    let after: f64 = nets.iter().map(|&n| design.net_hpwl(n)).sum();
    if after >= before {
        design.set_pos(a, pa);
        design.set_pos(b, pb);
        return false;
    }
    true
}

fn affected_nets(design: &Design, a: CellId, b: CellId) -> Vec<NetId> {
    let mut nets: Vec<NetId> = design
        .pins_of_cell(a)
        .iter()
        .chain(design.pins_of_cell(b))
        .map(|&p| design.pin(p).net)
        .collect();
    nets.sort_unstable();
    nets.dedup();
    nets
}

/// Order-preserving Abacus shift of a row's cells toward the x that
/// minimizes each cell's connected-net HPWL (the median of the other pin
/// positions).
fn shift_row(design: &mut Design, seg: &Segment, cells: &[CellId], virtual_widths: Option<&[f64]>) {
    let widths: Vec<f64> = cells
        .iter()
        .map(|&c| {
            let real = design.cell(c).w;
            virtual_widths
                .map(|v| v[c.index()].max(real))
                .unwrap_or(real)
        })
        .collect();
    let mut desired: Vec<f64> = Vec::with_capacity(cells.len());
    for (&c, w) in cells.iter().zip(&widths) {
        let ox = optimal_x(design, c).unwrap_or(design.pos(c).x);
        desired.push(ox - w / 2.0);
    }
    // Keep the current order (Abacus requires sorted desired input to
    // avoid reordering): clamp each desired to be ≥ its predecessor.
    for i in 1..desired.len() {
        if desired[i] < desired[i - 1] {
            desired[i] = desired[i - 1];
        }
    }
    let lefts = abacus(&desired, &widths, seg.x0, seg.x1);
    // Only the nets touching this segment's cells can change.
    let mut nets: Vec<NetId> = cells
        .iter()
        .flat_map(|&c| design.pins_of_cell(c).iter().map(|&p| design.pin(p).net))
        .collect();
    nets.sort_unstable();
    nets.dedup();
    let hpwl_before: f64 = nets.iter().map(|&n| design.net_hpwl(n)).sum();
    let old: Vec<Point> = cells.iter().map(|&c| design.pos(c)).collect();
    // Snap to sites, monotone.
    let mut cursor = seg.x0;
    for ((&c, w), l) in cells.iter().zip(&widths).zip(&lefts) {
        let k = ((l - seg.x0) / seg.site_w).floor().max(0.0);
        let x = (seg.x0 + k * seg.site_w).max(cursor).min(seg.x1 - w);
        design.set_pos(c, Point::new(x + w / 2.0, seg.y + seg.height / 2.0));
        cursor = x + w;
    }
    let hpwl_after: f64 = nets.iter().map(|&n| design.net_hpwl(n)).sum();
    if hpwl_after > hpwl_before {
        for (&c, &p) in cells.iter().zip(&old) {
            design.set_pos(c, p);
        }
    }
}

/// The x minimizing the cell's total connected HPWL: median of the other
/// pins' x positions over all its nets.
fn optimal_x(design: &Design, c: CellId) -> Option<f64> {
    let mut xs: Vec<f64> = Vec::new();
    for &pid in design.pins_of_cell(c) {
        let net = design.pin(pid).net;
        for &q in &design.net(net).pins {
            if design.pin(q).cell != c {
                xs.push(design.pin_position(q).x);
            }
        }
    }
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    Some(xs[xs.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_legality;
    use rdp_db::{Cell, DesignBuilder, Rect, RoutingSpec, Row};

    /// Two cells placed in swapped order relative to their connections:
    /// detailed placement must swap them.
    #[test]
    fn swap_improves_crossed_connections() {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 40.0, 2.0));
        b.add_row(Row {
            y: 0.0,
            height: 2.0,
            x0: 0.0,
            x1: 40.0,
            site_w: 0.2,
        });
        let left_io = b.add_cell(Cell::terminal("l"), Point::new(0.0, 1.0));
        let right_io = b.add_cell(Cell::terminal("r"), Point::new(40.0, 1.0));
        // a wants to be right, b wants to be left — but placed crossed.
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(19.0, 1.0));
        let c = b.add_cell(Cell::std("b", 2.0, 2.0), Point::new(21.0, 1.0));
        b.add_net(
            "na",
            vec![(a, Point::default()), (right_io, Point::default())],
        );
        b.add_net(
            "nb",
            vec![(c, Point::default()), (left_io, Point::default())],
        );
        b.routing(RoutingSpec::uniform(2, 10.0, 4, 4));
        let mut d = b.build().unwrap();
        let improved = detailed_place(&mut d, &DetailedConfig::default());
        assert!(improved > 0.0, "no improvement: {improved}");
        assert!(design_x(&d, a) > design_x(&d, c), "cells not swapped");
        assert!(check_legality(&d).is_legal());
    }

    fn design_x(d: &Design, c: CellId) -> f64 {
        d.pos(c).x
    }

    #[test]
    fn shift_moves_cell_toward_its_net() {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 40.0, 2.0));
        b.add_row(Row {
            y: 0.0,
            height: 2.0,
            x0: 0.0,
            x1: 40.0,
            site_w: 0.2,
        });
        let io = b.add_cell(Cell::terminal("io"), Point::new(40.0, 1.0));
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(5.0, 1.0));
        b.add_net("n", vec![(a, Point::default()), (io, Point::default())]);
        b.routing(RoutingSpec::uniform(2, 10.0, 4, 4));
        let mut d = b.build().unwrap();
        let improved = detailed_place(&mut d, &DetailedConfig::default());
        assert!(improved > 0.0);
        // Cell slides right toward the terminal (clamped by the row edge).
        assert!(d.pos(a).x > 30.0, "x = {}", d.pos(a).x);
        assert!(check_legality(&d).is_legal());
    }

    #[test]
    fn detailed_never_degrades_hpwl() {
        let mut b = DesignBuilder::new("d", Rect::new(0.0, 0.0, 40.0, 4.0));
        for r in 0..2 {
            b.add_row(Row {
                y: r as f64 * 2.0,
                height: 2.0,
                x0: 0.0,
                x1: 40.0,
                site_w: 0.2,
            });
        }
        let mut ids = Vec::new();
        for i in 0..16 {
            let x = 1.0 + (i % 8) as f64 * 4.8;
            let y = if i < 8 { 1.0 } else { 3.0 };
            ids.push(b.add_cell(Cell::std(format!("c{i}"), 1.6, 2.0), Point::new(x, y)));
        }
        for i in 0..12 {
            b.add_net(
                format!("n{i}"),
                vec![
                    (ids[i], Point::default()),
                    (ids[(i * 7 + 3) % 16], Point::default()),
                ],
            );
        }
        b.routing(RoutingSpec::uniform(2, 10.0, 4, 4));
        let mut d = b.build().unwrap();
        let improved = detailed_place(&mut d, &DetailedConfig { passes: 3 });
        assert!(improved >= -1e-9);
        let rep = check_legality(&d);
        assert!(rep.is_legal(), "{rep:?}");
    }
}
