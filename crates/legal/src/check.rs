//! Legality verification used by tests and the evaluation flow.

use rdp_db::{CellId, Design};

/// Violations found by [`check_legality`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LegalityReport {
    /// Pairs of movable cells that overlap with positive area.
    pub overlaps: usize,
    /// Movable cells not vertically centered in any row.
    pub off_row: usize,
    /// Movable cells whose footprint leaves the die.
    pub outside_die: usize,
    /// Movable cells overlapping a macro footprint.
    pub on_macro: usize,
}

impl LegalityReport {
    /// Whether the placement is fully legal.
    pub fn is_legal(&self) -> bool {
        self.overlaps == 0 && self.off_row == 0 && self.outside_die == 0 && self.on_macro == 0
    }
}

/// Checks row alignment, die containment, macro avoidance, and pairwise
/// overlap of all movable cells.
pub fn check_legality(design: &Design) -> LegalityReport {
    let mut report = LegalityReport::default();
    let die = design.die();
    let eps = 1e-6;

    let macro_rects: Vec<_> = design.macros().map(|m| design.cell_rect(m)).collect();
    let rows = design.rows();

    // Bucket movable cells by row.
    let mut buckets: Vec<Vec<CellId>> = vec![Vec::new(); rows.len().max(1)];
    for c in design.movable_cells() {
        let r = design.cell_rect(c);
        if r.lo.x < die.lo.x - eps
            || r.lo.y < die.lo.y - eps
            || r.hi.x > die.hi.x + eps
            || r.hi.y > die.hi.y + eps
        {
            report.outside_die += 1;
        }
        if macro_rects.iter().any(|m| m.overlap_area(&r) > eps) {
            report.on_macro += 1;
        }
        let cy = design.pos(c).y;
        let row = rows
            .iter()
            .position(|row| (row.y + row.height / 2.0 - cy).abs() < eps);
        match row {
            Some(ri) => buckets[ri].push(c),
            None => report.off_row += 1,
        }
    }

    // Pairwise overlap per row (sweep on x).
    for bucket in &mut buckets {
        bucket.sort_by(|&a, &b| design.pos(a).x.total_cmp(&design.pos(b).x));
        for w in bucket.windows(2) {
            let a = design.cell_rect(w[0]);
            let b = design.cell_rect(w[1]);
            if a.hi.x > b.lo.x + eps {
                report.overlaps += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec, Row};

    fn base() -> DesignBuilder {
        let mut b = DesignBuilder::new("c", Rect::new(0.0, 0.0, 20.0, 4.0));
        for r in 0..2 {
            b.add_row(Row {
                y: r as f64 * 2.0,
                height: 2.0,
                x0: 0.0,
                x1: 20.0,
                site_w: 0.2,
            });
        }
        b
    }

    fn finish(mut b: DesignBuilder, a: rdp_db::CellId, c: rdp_db::CellId) -> Design {
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(2, 10.0, 4, 4));
        b.build().unwrap()
    }

    #[test]
    fn legal_placement_reports_clean() {
        let mut b = base();
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(1.0, 1.0));
        let c = b.add_cell(Cell::std("b", 2.0, 2.0), Point::new(5.0, 3.0));
        let d = finish(b, a, c);
        assert!(check_legality(&d).is_legal());
    }

    #[test]
    fn detects_overlap_and_off_row() {
        let mut b = base();
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(1.0, 1.0));
        let c = b.add_cell(Cell::std("b", 2.0, 2.0), Point::new(2.0, 1.0));
        let d = finish(b, a, c);
        let r = check_legality(&d);
        assert_eq!(r.overlaps, 1);
        assert!(!r.is_legal());

        let mut b = base();
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(1.0, 1.3));
        let c = b.add_cell(Cell::std("b", 2.0, 2.0), Point::new(5.0, 1.0));
        let d = finish(b, a, c);
        assert_eq!(check_legality(&d).off_row, 1);
    }

    #[test]
    fn detects_outside_die() {
        let mut b = base();
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(19.5, 1.0));
        let c = b.add_cell(Cell::std("b", 2.0, 2.0), Point::new(5.0, 1.0));
        let d = finish(b, a, c);
        assert_eq!(check_legality(&d).outside_die, 1);
    }

    #[test]
    fn detects_macro_overlap() {
        let mut b = base();
        let m = b.add_cell(Cell::fixed_macro("m", 4.0, 2.0), Point::new(10.0, 1.0));
        let a = b.add_cell(Cell::std("a", 2.0, 2.0), Point::new(9.0, 1.0));
        let d = finish(b, m, a);
        assert_eq!(check_legality(&d).on_macro, 1);
    }
}
