//! Tetris-style row assignment followed by Abacus-style in-row placement.
//!
//! The paper's flow hands the routability-optimized global placement to
//! the legalization + detailed placement of Xplace-Route; this module is
//! our equivalent. Cells are greedily assigned to row segments in order
//! of their global x (Tetris), then each segment's cells are placed at
//! minimum weighted squared displacement without overlap (Abacus
//! clustering), and finally snapped to the site grid.

use crate::segments::{build_segments, Segment};
use rdp_db::{CellId, Design, Point};

/// Configuration for [`legalize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizeConfig {
    /// Initial row search window (rows above/below the cell's position).
    pub row_window: usize,
}

impl Default for LegalizeConfig {
    fn default() -> Self {
        LegalizeConfig { row_window: 16 }
    }
}

/// Outcome statistics of a legalization run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LegalizeReport {
    /// Largest cell displacement (microns).
    pub max_displacement: f64,
    /// Mean cell displacement (microns).
    pub avg_displacement: f64,
    /// Cells that could not be placed in any segment (left at their
    /// global position; should be zero for any sane utilization).
    pub failed: usize,
}

struct SegState {
    seg: Segment,
    /// Total width of cells assigned so far.
    used: f64,
    /// (cell, desired center x) in placement order.
    cells: Vec<(CellId, f64)>,
}

/// Legalizes all movable cells of the design in place.
///
/// Positions after this call are: inside the die, vertically centered in a
/// row, horizontally non-overlapping and site-aligned within each row
/// segment, and outside macro footprints.
pub fn legalize(design: &mut Design, cfg: &LegalizeConfig) -> LegalizeReport {
    legalize_impl(design, cfg, None)
}

/// [`legalize`] with a `"legalize"` span recorded on `obs`.
pub fn legalize_obs(
    design: &mut Design,
    cfg: &LegalizeConfig,
    obs: &rdp_obs::Collector,
) -> LegalizeReport {
    let _span = obs.span("legalize", "legal");
    let report = legalize_impl(design, cfg, None);
    obs.counter_add("legalize_failed", report.failed as u64);
    report
}

/// Routability-driven legalization: cells are legalized using **virtual
/// widths** (typically the inflated widths the routability-driven global
/// placement spread them by), then centered in their virtual slots. The
/// extra spacing that mitigates congestion survives legalization; real
/// footprints are strictly inside the virtual ones, so the result is
/// legal for the real widths too.
///
/// Falls back to plain [`legalize`] when the virtual widths do not fit
/// (e.g. a pathological ratio set on a full die).
///
/// # Panics
///
/// Panics if `virtual_widths.len() != design.num_cells()`.
pub fn legalize_virtual(
    design: &mut Design,
    cfg: &LegalizeConfig,
    virtual_widths: &[f64],
) -> LegalizeReport {
    assert_eq!(virtual_widths.len(), design.num_cells());
    let saved: Vec<Point> = design.positions().to_vec();
    let report = legalize_impl(design, cfg, Some(virtual_widths));
    if report.failed > 0 {
        design.set_positions(&saved);
        return legalize_impl(design, cfg, None);
    }
    report
}

/// [`legalize_virtual`] with a `"legalize"` span recorded on `obs`. A
/// `"legalize_virtual_fallback"` instant is emitted when the virtual
/// widths do not fit and the plain pass is used instead.
pub fn legalize_virtual_obs(
    design: &mut Design,
    cfg: &LegalizeConfig,
    virtual_widths: &[f64],
    obs: &rdp_obs::Collector,
) -> LegalizeReport {
    assert_eq!(virtual_widths.len(), design.num_cells());
    let _span = obs.span("legalize", "legal");
    let saved: Vec<Point> = design.positions().to_vec();
    let report = legalize_impl(design, cfg, Some(virtual_widths));
    if report.failed > 0 {
        obs.instant(
            "legalize_virtual_fallback",
            rdp_obs::NO_ITER,
            format!("{} cells failed with virtual widths", report.failed),
        );
        design.set_positions(&saved);
        return legalize_impl(design, cfg, None);
    }
    report
}

fn legalize_impl(
    design: &mut Design,
    cfg: &LegalizeConfig,
    virtual_widths: Option<&[f64]>,
) -> LegalizeReport {
    let width_of = |design: &Design, cid: CellId| -> f64 {
        let real = design.cell(cid).w;
        match virtual_widths {
            Some(v) => v[cid.index()].max(real),
            None => real,
        }
    };
    let segments = build_segments(design);
    if segments.is_empty() {
        return LegalizeReport::default();
    }
    let mut states: Vec<SegState> = segments
        .iter()
        .map(|&seg| SegState {
            seg,
            used: 0.0,
            cells: Vec::new(),
        })
        .collect();
    // Segment indices grouped by row for windowed lookup.
    let num_rows = design.rows().len();
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); num_rows];
    for (i, s) in states.iter().enumerate() {
        by_row[s.seg.row].push(i);
    }
    let row_h = design.rows().first().map(|r| r.height).unwrap_or(1.0);

    // Tetris assignment in order of global x.
    let mut order: Vec<CellId> = design.movable_cells().collect();
    order.sort_by(|&a, &b| design.pos(a).x.total_cmp(&design.pos(b).x).then(a.cmp(&b)));

    let mut report = LegalizeReport::default();
    let mut displacement_sum = 0.0;
    let mut placed = 0usize;

    for cid in order {
        let cell_w = width_of(design, cid);
        let g = design.pos(cid);
        let desired_left = g.x - cell_w / 2.0;
        let row_guess = ((g.y - row_h / 2.0) / row_h).round().max(0.0) as usize;

        let mut best: Option<(f64, usize, f64)> = None; // (cost, seg idx, left x)
        let mut window = cfg.row_window;
        while best.is_none() && window < num_rows * 2 + cfg.row_window {
            let lo = row_guess.saturating_sub(window);
            let hi = (row_guess + window).min(num_rows.saturating_sub(1));
            for row in lo..=hi {
                for &si in &by_row[row] {
                    let s = &states[si];
                    // Capacity test: Abacus packs the segment afterward,
                    // so any segment with room left is a candidate.
                    if s.used + cell_w > s.seg.width() + 1e-9 {
                        continue;
                    }
                    // Cost: displacement to the clamped desired spot plus
                    // a crowding penalty steering cells to emptier rows.
                    // The weight (24 row heights at full fill) is tuned on
                    // the high-utilization suite designs: weaker weights
                    // let early cells pile into their nearest rows, and
                    // the spill displacement that follows destroys the
                    // congestion structure the placer built (measured:
                    // 4x the post-legalization routing overflow at weight
                    // 4 vs 24 on des_perf_1/matrix_mult_1).
                    let left = desired_left.clamp(s.seg.x0, s.seg.x1 - cell_w);
                    let cx = left + cell_w / 2.0;
                    let cy = s.seg.y + s.seg.height / 2.0;
                    let crowding = (s.used + cell_w) / s.seg.width() * 24.0 * row_h;
                    let cost = (cx - g.x).abs() + (cy - g.y).abs() + crowding;
                    if best.map(|(bc, _, _)| cost < bc).unwrap_or(true) {
                        best = Some((cost, si, left));
                    }
                }
            }
            window *= 2;
        }

        match best {
            Some((_, si, _left)) => {
                let s = &mut states[si];
                s.used += cell_w;
                s.cells.push((cid, g.x));
                placed += 1;
            }
            None => report.failed += 1,
        }
    }

    // Abacus refinement + site snapping per segment, then commit.
    for s in &states {
        if s.cells.is_empty() {
            continue;
        }
        let widths: Vec<f64> = s.cells.iter().map(|&(c, _)| width_of(design, c)).collect();
        let desired: Vec<f64> = s
            .cells
            .iter()
            .zip(&widths)
            .map(|(&(_, gx), w)| gx - w / 2.0)
            .collect();
        let lefts = abacus(&desired, &widths, s.seg.x0, s.seg.x1);
        let lefts = snap_to_sites(&lefts, &widths, s.seg);
        let cy = s.seg.y + s.seg.height / 2.0;
        for ((&(cid, _), w), left) in s.cells.iter().zip(&widths).zip(&lefts) {
            let before = design.pos(cid);
            let after = Point::new(left + w / 2.0, cy);
            design.set_pos(cid, after);
            let d = before.distance(after);
            displacement_sum += d;
            report.max_displacement = report.max_displacement.max(d);
        }
    }

    if placed > 0 {
        report.avg_displacement = displacement_sum / placed as f64;
    }
    report
}

/// Abacus clustering: given cells in left-to-right order with desired left
/// edges and widths, returns non-overlapping left edges within `[x0, x1]`
/// minimizing Σ wᵢ(xᵢ − desiredᵢ)².
pub(crate) fn abacus(desired: &[f64], widths: &[f64], x0: f64, x1: f64) -> Vec<f64> {
    #[derive(Debug, Clone, Copy)]
    struct Cluster {
        e: f64, // total weight
        q: f64, // Σ e_i (desired_i − offset_i)
        w: f64, // total width
        first: usize,
    }

    let n = desired.len();
    let mut clusters: Vec<Cluster> = Vec::with_capacity(n);
    for i in 0..n {
        let mut c = Cluster {
            e: widths[i],
            q: widths[i] * desired[i],
            w: widths[i],
            first: i,
        };
        // Collapse while overlapping the previous cluster.
        loop {
            let pos = |c: &Cluster| (c.q / c.e).clamp(x0, (x1 - c.w).max(x0));
            match clusters.last() {
                Some(prev) if pos(prev) + prev.w > pos(&c) => {
                    let prev = clusters.pop().expect("checked non-empty");
                    // Merge c after prev: offsets of c's members shift by
                    // prev.w.
                    c = Cluster {
                        e: prev.e + c.e,
                        q: prev.q + c.q - c.e * prev.w,
                        w: prev.w + c.w,
                        first: prev.first,
                    };
                }
                _ => break,
            }
        }
        clusters.push(c);
    }

    let mut out = vec![0.0; n];
    for (ci, c) in clusters.iter().enumerate() {
        let x = (c.q / c.e).clamp(x0, (x1 - c.w).max(x0));
        let last = clusters.get(ci + 1).map(|nc| nc.first).unwrap_or(n);
        let mut cursor = x;
        for i in c.first..last {
            out[i] = cursor;
            cursor += widths[i];
        }
    }
    out
}

/// Snaps left edges to the segment's site grid without introducing
/// overlaps (monotone left-to-right flooring).
fn snap_to_sites(lefts: &[f64], widths: &[f64], seg: Segment) -> Vec<f64> {
    let mut out = Vec::with_capacity(lefts.len());
    let mut cursor = seg.x0;
    for (l, w) in lefts.iter().zip(widths) {
        let k = ((l - seg.x0) / seg.site_w).floor().max(0.0);
        let snapped = (seg.x0 + k * seg.site_w).max(cursor).min(seg.x1 - w);
        out.push(snapped);
        cursor = snapped + w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abacus_no_overlap_needed_keeps_positions() {
        let lefts = abacus(&[0.0, 10.0, 20.0], &[2.0, 2.0, 2.0], 0.0, 100.0);
        assert_eq!(lefts, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn abacus_resolves_overlap_at_weighted_mean() {
        // Two unit-weight cells both wanting position 10: cluster of width
        // 4 centered so that q/e = (10+10-2)/2 = 9.
        let lefts = abacus(&[10.0, 10.0], &[2.0, 2.0], 0.0, 100.0);
        assert!((lefts[0] - 9.0).abs() < 1e-9, "{lefts:?}");
        assert!((lefts[1] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn abacus_respects_bounds() {
        let lefts = abacus(&[-5.0, -4.0], &[2.0, 2.0], 0.0, 10.0);
        assert!(lefts[0] >= 0.0);
        assert_eq!(lefts[1], lefts[0] + 2.0);
        let lefts = abacus(&[9.0, 9.5], &[2.0, 2.0], 0.0, 10.0);
        assert!(lefts[1] + 2.0 <= 10.0 + 1e-9, "{lefts:?}");
    }

    #[test]
    fn abacus_output_is_sorted_and_disjoint() {
        let desired = vec![5.0, 1.0, 5.5, 5.2, 30.0, 2.0];
        let widths = vec![2.0, 1.0, 3.0, 1.0, 2.0, 1.5];
        let lefts = abacus(&desired, &widths, 0.0, 50.0);
        for i in 1..lefts.len() {
            assert!(lefts[i] >= lefts[i - 1] + widths[i - 1] - 1e-9, "{lefts:?}");
        }
    }
}
