//! Row segmentation: placement rows split into free intervals around
//! macro footprints.

use rdp_db::{Design, Rect};

/// A free interval of one placement row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Row index into `design.rows()`.
    pub row: usize,
    /// Bottom y of the row.
    pub y: f64,
    /// Row height.
    pub height: f64,
    /// Site width of the row.
    pub site_w: f64,
    /// Left edge of the free interval.
    pub x0: f64,
    /// Right edge of the free interval.
    pub x1: f64,
}

impl Segment {
    /// Usable width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }
}

/// Splits every row of the design into free segments not covered by fixed
/// macros. Segments narrower than one site are dropped.
pub fn build_segments(design: &Design) -> Vec<Segment> {
    let macro_rects: Vec<Rect> = design.macros().map(|m| design.cell_rect(m)).collect();
    let mut segments = Vec::new();
    for (ri, row) in design.rows().iter().enumerate() {
        let y_lo = row.y;
        let y_hi = row.y + row.height;
        // Blocked x-intervals in this row.
        let mut blocked: Vec<(f64, f64)> = macro_rects
            .iter()
            .filter(|m| m.lo.y < y_hi && y_lo < m.hi.y)
            .map(|m| (m.lo.x.max(row.x0), m.hi.x.min(row.x1)))
            .filter(|(a, b)| b > a)
            .collect();
        blocked.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Merge overlapping intervals.
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (a, b) in blocked {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        // Complement.
        let mut x = row.x0;
        for (a, b) in &merged {
            if *a - x >= row.site_w {
                segments.push(Segment {
                    row: ri,
                    y: row.y,
                    height: row.height,
                    site_w: row.site_w,
                    x0: x,
                    x1: *a,
                });
            }
            x = *b;
        }
        if row.x1 - x >= row.site_w {
            segments.push(Segment {
                row: ri,
                y: row.y,
                height: row.height,
                site_w: row.site_w,
                x0: x,
                x1: row.x1,
            });
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec, Row};

    fn design_with_macro() -> Design {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 100.0, 10.0));
        let m = b.add_cell(Cell::fixed_macro("m", 20.0, 4.0), Point::new(50.0, 4.0));
        let a = b.add_cell(Cell::std("a", 1.0, 2.0), Point::new(10.0, 1.0));
        b.add_net("n", vec![(m, Point::default()), (a, Point::default())]);
        for r in 0..5 {
            b.add_row(Row {
                y: r as f64 * 2.0,
                height: 2.0,
                x0: 0.0,
                x1: 100.0,
                site_w: 0.2,
            });
        }
        b.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
        b.build().unwrap()
    }

    #[test]
    fn rows_without_macro_are_one_segment() {
        let d = design_with_macro();
        let segs = build_segments(&d);
        // Macro spans y in [2,6): rows 1 and 2 are split, rows 0, 3, 4 whole.
        let whole: Vec<_> = segs.iter().filter(|s| s.width() == 100.0).collect();
        assert_eq!(whole.len(), 3);
    }

    #[test]
    fn macro_rows_are_split_around_footprint() {
        let d = design_with_macro();
        let segs = build_segments(&d);
        let row1: Vec<_> = segs.iter().filter(|s| s.row == 1).collect();
        assert_eq!(row1.len(), 2);
        assert_eq!(row1[0].x0, 0.0);
        assert_eq!(row1[0].x1, 40.0);
        assert_eq!(row1[1].x0, 60.0);
        assert_eq!(row1[1].x1, 100.0);
    }

    #[test]
    fn segments_never_overlap_macros() {
        let d = design_with_macro();
        let m = d.cell_rect(rdp_db::CellId(0));
        for s in build_segments(&d) {
            let seg_rect = Rect::new(s.x0, s.y, s.x1, s.y + s.height);
            assert!(!seg_rect.intersects(&m), "{s:?} overlaps macro");
        }
    }
}
