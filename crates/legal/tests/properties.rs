//! Property tests for legalization on arbitrary inputs (rdp-testkit
//! harness).

use rdp_db::{Cell, CellId, Design, DesignBuilder, Point, Rect, RoutingSpec, Row};
use rdp_legal::{check_legality, legalize, legalize_virtual, LegalizeConfig};
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, select, vecs, PropConfig};

/// Builds a design with `n` cells at arbitrary positions in a fixed
/// 2-row-per-10µm floorplan.
fn design_with(positions: Vec<(f64, f64, f64)>) -> Design {
    let mut b = DesignBuilder::new("p", Rect::new(0.0, 0.0, 60.0, 20.0));
    for r in 0..10 {
        b.add_row(Row {
            y: r as f64 * 2.0,
            height: 2.0,
            x0: 0.0,
            x1: 60.0,
            site_w: 0.2,
        });
    }
    let ids: Vec<CellId> = positions
        .iter()
        .enumerate()
        .map(|(i, &(x, y, w))| b.add_cell(Cell::std(format!("c{i}"), w, 2.0), Point::new(x, y)))
        .collect();
    for pair in ids.chunks(2) {
        if let [a, c] = pair {
            b.add_net(
                format!("n{a}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
    }
    b.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
    b.build().unwrap()
}

/// Cells with x/y possibly outside the die and realistic widths.
fn arb_cells() -> impl rdp_testkit::Gen<Value = Vec<(f64, f64, f64)>> {
    vecs(
        (
            range(-5.0f64..65.0), // x, possibly outside the die
            range(-3.0f64..23.0), // y, possibly off-row
            select(vec![0.8, 1.2, 1.6, 2.4]),
        ),
        2..120,
    )
}

/// Any input — including cells far outside the die — legalizes to a
/// clean placement.
#[test]
fn legalize_handles_arbitrary_positions() {
    prop_check!(PropConfig::cases(48), arb_cells(), |cells: Vec<(
        f64,
        f64,
        f64
    )>| {
        let mut d = design_with(cells);
        let report = legalize(&mut d, &LegalizeConfig::default());
        prop_assert_eq!(report.failed, 0);
        let check = check_legality(&d);
        prop_assert!(check.is_legal(), "{:?}", check);
        Ok(())
    });
}

/// Virtual-width legalization is legal for the real widths and keeps
/// at least the virtual spacing between same-row neighbors.
#[test]
fn legalize_virtual_keeps_spacing() {
    prop_check!(
        PropConfig::cases(48),
        (arb_cells(), range(1.0f64..1.4)),
        |(cells, extra): (Vec<(f64, f64, f64)>, f64)| {
            let mut d = design_with(cells);
            let widths: Vec<f64> = d.cells().iter().map(|c| c.w * extra).collect();
            let report = legalize_virtual(&mut d, &LegalizeConfig::default(), &widths);
            prop_assert_eq!(report.failed, 0);
            let check = check_legality(&d);
            prop_assert!(check.is_legal(), "{:?}", check);
            Ok(())
        }
    );
}

/// Re-legalizing an already-legal placement is cheap: the second run
/// stays legal and moves cells far less on average than a typical
/// from-scratch run (individual cells may still hop a row when the
/// crowding heuristic re-balances).
#[test]
fn relegalization_is_cheap() {
    prop_check!(PropConfig::cases(48), arb_cells(), |cells: Vec<(
        f64,
        f64,
        f64
    )>| {
        let mut d = design_with(cells);
        legalize(&mut d, &LegalizeConfig::default());
        let report = legalize(&mut d, &LegalizeConfig::default());
        prop_assert_eq!(report.failed, 0);
        prop_assert!(check_legality(&d).is_legal());
        prop_assert!(
            report.avg_displacement < 2.0,
            "avg displacement {}",
            report.avg_displacement
        );
        Ok(())
    });
}
