//! RUDY (Rectangular Uniform wire DensitY) congestion estimation
//! (Spindler & Johannes, DATE 2007).
//!
//! The cheap bounding-box estimator the paper contrasts with its
//! Poisson-based congestion model: each net spreads `HPWL / bbox-area`
//! uniformly over its bounding box, so every G-cell inside the box is
//! charged equally — including congestion "not contributed by the net"
//! (the Fig. 1(b) overreach this paper fixes).

use rdp_db::{Design, GridSpec, Map2d, NetId};
use rdp_par::{chunk_len, Pool};

/// Computes the RUDY map of a design on the given grid.
///
/// Returns wire density in demand units per G-cell area; comparable in
/// spirit (not in absolute units) to the router's demand maps.
pub fn rudy_map(design: &Design, grid: &GridSpec) -> Map2d<f64> {
    rudy_map_with(design, grid, Pool::global())
}

/// [`rudy_map`] on an explicit pool.
///
/// Nets are binned into per-chunk partial maps (chunk boundaries depend
/// only on the net count) merged in chunk order, so the result is
/// bit-identical for any thread count.
pub fn rudy_map_with(design: &Design, grid: &GridSpec, pool: Pool) -> Map2d<f64> {
    let num_nets = design.num_nets();
    let chunk = chunk_len(num_nets, 16, 128);
    let partials = pool.map_chunks(num_nets, chunk, |_ci, range| {
        let mut map = Map2d::new(grid.nx(), grid.ny());
        for ni in range {
            rudy_net(design, grid, ni, &mut map);
        }
        map
    });
    let mut map = Map2d::new(grid.nx(), grid.ny());
    for part in &partials {
        map.add_assign_map(part);
    }
    map
}

/// Deposits one net's RUDY contribution onto `map`.
fn rudy_net(design: &Design, grid: &GridSpec, ni: usize, map: &mut Map2d<f64>) {
    let bin_area = grid.bin_area();
    let id = NetId::from_index(ni);
    let Some(bbox) = design.net_bbox(id) else {
        return;
    };
    let hpwl = bbox.width() + bbox.height();
    if hpwl <= 0.0 {
        return;
    }
    // Uniform wire density: wirelength spread over the bbox area.
    // Degenerate (zero-area) boxes get a one-bin-thick extent.
    let w = bbox.width().max(grid.bin_w() * 0.5);
    let h = bbox.height().max(grid.bin_h() * 0.5);
    let density = hpwl / (w * h);
    let Some((x0, y0, x1, y1)) = grid.bins_overlapping(&bbox) else {
        return;
    };
    for iy in y0..=y1 {
        for ix in x0..=x1 {
            let ov = grid.bin_rect(ix, iy).overlap_area(&bbox).max(
                // degenerate boxes still deposit on the bins they touch
                if bbox.area() == 0.0 {
                    bin_area * 0.25
                } else {
                    0.0
                },
            );
            map[(ix, iy)] += density * ov / bin_area;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};

    fn design(pins: &[(f64, f64)]) -> Design {
        let mut b = DesignBuilder::new("r", Rect::new(0.0, 0.0, 40.0, 40.0));
        let ids: Vec<_> = pins
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| b.add_cell(Cell::std(format!("c{i}"), 1.0, 1.0), Point::new(x, y)))
            .collect();
        b.add_net("n", ids.iter().map(|&c| (c, Point::default())).collect());
        b.routing(RoutingSpec::uniform(2, 10.0, 4, 4));
        b.build().unwrap()
    }

    #[test]
    fn rudy_uniform_inside_bbox_zero_outside() {
        let d = design(&[(5.0, 5.0), (25.0, 25.0)]);
        let grid = d.grid(4, 4);
        let m = rudy_map(&d, &grid);
        // bbox [5,25]² covers bins (0..2, 0..2) partially; bins (3,*) are
        // untouched.
        assert!(m[(0, 0)] > 0.0);
        assert!(m[(1, 1)] > 0.0);
        assert_eq!(m[(3, 3)], 0.0);
        assert_eq!(m[(3, 0)], 0.0);
        // Fully covered bin (1,1) carries density = hpwl/area = 40/400 = .1
        assert!((m[(1, 1)] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rudy_total_mass_is_hpwl() {
        let d = design(&[(5.0, 5.0), (35.0, 25.0)]);
        let grid = d.grid(4, 4);
        let m = rudy_map(&d, &grid);
        // Σ map · bin_area = hpwl (30 + 20)
        let mass: f64 = m.sum() * grid.bin_area();
        assert!((mass - 50.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn degenerate_net_handled() {
        // Horizontal net: zero-height bbox must still deposit demand.
        let d = design(&[(5.0, 15.0), (35.0, 15.0)]);
        let grid = d.grid(4, 4);
        let m = rudy_map(&d, &grid);
        assert!(m.sum() > 0.0);
        // Row 1 only.
        assert_eq!(m[(0, 3)], 0.0);
    }
}
