//! Demand/capacity maps and the congestion metrics defined in Section II-B
//! of the paper.

use crate::capacity::CapacityMaps;
use rdp_db::Map2d;

/// Routing state after a global-routing pass: demand accumulated per
/// G-cell, split by direction, plus via demand, against the capacity model.
#[derive(Debug, Clone)]
pub struct RouteMaps {
    /// Horizontal wire demand per G-cell (track·G-cells).
    pub h_demand: Map2d<f64>,
    /// Vertical wire demand per G-cell.
    pub v_demand: Map2d<f64>,
    /// Via count per G-cell.
    pub via_demand: Map2d<f64>,
    /// Capacity model the demand is measured against.
    pub caps: CapacityMaps,
    /// Weight of one via in demand units (paper: demand = wire + via
    /// demand; a via consumes a fraction of a track in each layer).
    pub via_weight: f64,
}

impl RouteMaps {
    /// Creates empty demand maps over the capacity model's grid.
    pub fn new(caps: CapacityMaps, via_weight: f64) -> Self {
        let nx = caps.h.nx();
        let ny = caps.h.ny();
        RouteMaps {
            h_demand: Map2d::new(nx, ny),
            v_demand: Map2d::new(nx, ny),
            via_demand: Map2d::new(nx, ny),
            caps,
            via_weight,
        }
    }

    /// Grid width.
    pub fn nx(&self) -> usize {
        self.h_demand.nx()
    }

    /// Grid height.
    pub fn ny(&self) -> usize {
        self.h_demand.ny()
    }

    /// Total demand `Dmd_{m,n}` of one G-cell (wire + weighted vias).
    #[inline]
    pub fn demand_at(&self, ix: usize, iy: usize) -> f64 {
        self.h_demand[(ix, iy)]
            + self.v_demand[(ix, iy)]
            + self.via_weight * self.via_demand[(ix, iy)]
    }

    /// Total capacity `Cap_{m,n}` of one G-cell.
    #[inline]
    pub fn capacity_at(&self, ix: usize, iy: usize) -> f64 {
        self.caps.h[(ix, iy)] + self.caps.v[(ix, iy)]
    }

    /// The congestion map of Eq. (3):
    /// `C_{m,n} = max(Dmd_{m,n} / Cap_{m,n} − 1, 0)`.
    ///
    /// Flat row-major sweep over the five backing slices; each element is
    /// the same expression as `demand_at`/`capacity_at`, so the values are
    /// bitwise identical to the indexed form.
    pub fn congestion_eq3(&self) -> Map2d<f64> {
        let mut m = Map2d::new(self.nx(), self.ny());
        let w = self.via_weight;
        let (h, v, via) = (
            self.h_demand.as_slice(),
            self.v_demand.as_slice(),
            self.via_demand.as_slice(),
        );
        let (ch, cv) = (self.caps.h.as_slice(), self.caps.v.as_slice());
        for (i, o) in m.as_mut_slice().iter_mut().enumerate() {
            *o = ((h[i] + v[i] + w * via[i]) / (ch[i] + cv[i]) - 1.0).max(0.0);
        }
        m
    }

    /// The utilization map `ρ_{m,n} = Dmd_{m,n} / Cap_{m,n}` used as the
    /// charge density of the congestion Poisson problem (Section II-B).
    pub fn charge_density(&self) -> Map2d<f64> {
        let mut m = Map2d::new(self.nx(), self.ny());
        let w = self.via_weight;
        let (h, v, via) = (
            self.h_demand.as_slice(),
            self.v_demand.as_slice(),
            self.via_demand.as_slice(),
        );
        let (ch, cv) = (self.caps.h.as_slice(), self.caps.v.as_slice());
        for (i, o) in m.as_mut_slice().iter_mut().enumerate() {
            *o = (h[i] + v[i] + w * via[i]) / (ch[i] + cv[i]);
        }
        m
    }

    /// Total overflow: Σ max(Dmd − Cap, 0) over G-cells, in track units.
    pub fn total_overflow(&self) -> f64 {
        let w = self.via_weight;
        let (h, v, via) = (
            self.h_demand.as_slice(),
            self.v_demand.as_slice(),
            self.via_demand.as_slice(),
        );
        let (ch, cv) = (self.caps.h.as_slice(), self.caps.v.as_slice());
        let mut acc = 0.0;
        for i in 0..h.len() {
            acc += (h[i] + v[i] + w * via[i] - (ch[i] + cv[i])).max(0.0);
        }
        acc
    }

    /// Number of G-cells whose demand exceeds capacity.
    pub fn overflowed_gcells(&self) -> usize {
        let w = self.via_weight;
        let (h, v, via) = (
            self.h_demand.as_slice(),
            self.v_demand.as_slice(),
            self.via_demand.as_slice(),
        );
        let (ch, cv) = (self.caps.h.as_slice(), self.caps.v.as_slice());
        let mut n = 0;
        for i in 0..h.len() {
            n += usize::from(h[i] + v[i] + w * via[i] > ch[i] + cv[i]);
        }
        n
    }

    /// Total via count.
    pub fn total_vias(&self) -> f64 {
        self.via_demand.sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityMaps;

    fn flat_caps(nx: usize, ny: usize, h: f64, v: f64) -> CapacityMaps {
        CapacityMaps {
            h: Map2d::filled(nx, ny, h),
            v: Map2d::filled(nx, ny, v),
        }
    }

    #[test]
    fn congestion_clamps_at_zero() {
        let mut m = RouteMaps::new(flat_caps(2, 2, 5.0, 5.0), 0.5);
        m.h_demand[(0, 0)] = 20.0; // over
        m.h_demand[(1, 0)] = 2.0; // under
        let c = m.congestion_eq3();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert_eq!(c[(1, 0)], 0.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn demand_includes_weighted_vias() {
        let mut m = RouteMaps::new(flat_caps(1, 1, 4.0, 4.0), 0.5);
        m.h_demand[(0, 0)] = 3.0;
        m.v_demand[(0, 0)] = 2.0;
        m.via_demand[(0, 0)] = 4.0;
        assert_eq!(m.demand_at(0, 0), 7.0);
        assert_eq!(m.capacity_at(0, 0), 8.0);
        assert!((m.charge_density()[(0, 0)] - 0.875).abs() < 1e-12);
    }

    #[test]
    fn overflow_counts() {
        let mut m = RouteMaps::new(flat_caps(2, 1, 1.0, 1.0), 0.0);
        m.h_demand[(0, 0)] = 5.0;
        m.h_demand[(1, 0)] = 1.0;
        assert_eq!(m.total_overflow(), 3.0);
        assert_eq!(m.overflowed_gcells(), 1);
        assert_eq!(m.total_vias(), 0.0);
    }
}
