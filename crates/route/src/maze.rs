//! A* maze routing over the G-cell graph — the rip-up-and-detour fallback
//! for segments the pattern router cannot place without overflow.
//!
//! Pattern routing (L/Z shapes) only produces monotone paths; when a
//! region is saturated the real fix is a detour. The maze router searches
//! the full grid with congestion-aware edge costs and bend penalties, so
//! it finds non-monotone escapes when they pay off.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::maps::RouteMaps;

/// One step of a maze path: the G-cell entered and whether the move was
/// horizontal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MazeStep {
    /// Entered cell.
    pub cell: (usize, usize),
    /// True when the entering move was horizontal.
    pub horizontal: bool,
}

/// Result of one maze search.
#[derive(Debug, Clone, PartialEq)]
pub struct MazePath {
    /// Steps from source (exclusive) to target (inclusive).
    pub steps: Vec<MazeStep>,
    /// Total path cost.
    pub cost: f64,
    /// Number of bends.
    pub bends: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    /// Priority f = g + h.
    f: f64,
    /// Path cost so far.
    g: f64,
    cell: (usize, usize),
    dir: u8, // 0 = none, 1 = horizontal, 2 = vertical
}

impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other.f.total_cmp(&self.f)
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Congestion-aware A* from `src` to `dst` on the route maps' grid.
///
/// `cell_cost(ix, iy, horizontal)` prices entering a cell in a direction;
/// `via_cost` prices each bend. Returns `None` only for degenerate inputs
/// (the grid is connected, so a path always exists otherwise).
pub fn astar(
    maps: &RouteMaps,
    src: (usize, usize),
    dst: (usize, usize),
    cell_cost: &dyn Fn(usize, usize, bool) -> f64,
    via_cost: f64,
) -> Option<MazePath> {
    let (nx, ny) = (maps.nx(), maps.ny());
    if src == dst {
        return Some(MazePath {
            steps: Vec::new(),
            cost: 0.0,
            bends: 0,
        });
    }
    // State: (cell, incoming dir 0..3). dir 0 used only at the source.
    let idx = |c: (usize, usize), d: u8| (c.1 * nx + c.0) * 3 + d as usize;
    let mut dist = vec![f64::INFINITY; nx * ny * 3];
    let mut prev: Vec<u32> = vec![u32::MAX; nx * ny * 3];
    let mut heap = BinaryHeap::new();
    // Admissible heuristic: Manhattan distance × the minimum possible
    // per-cell cost (1.0 — the uncongested base).
    let h = |c: (usize, usize)| -> f64 {
        (c.0 as f64 - dst.0 as f64).abs() + (c.1 as f64 - dst.1 as f64).abs()
    };
    dist[idx(src, 0)] = 0.0;
    heap.push(Node {
        f: h(src),
        g: 0.0,
        cell: src,
        dir: 0,
    });

    while let Some(Node { g, cell, dir, .. }) = heap.pop() {
        let key = idx(cell, dir);
        if g > dist[key] + 1e-12 {
            continue;
        }
        if cell == dst {
            // Reconstruct.
            let mut steps = Vec::new();
            let mut bends = 0usize;
            let mut cur = key;
            while prev[cur] != u32::MAX {
                let d = (cur % 3) as u8;
                let cellno = cur / 3;
                steps.push(MazeStep {
                    cell: (cellno % nx, cellno / nx),
                    horizontal: d == 1,
                });
                let p = prev[cur] as usize;
                let pd = (p % 3) as u8;
                if pd != 0 && pd != d {
                    bends += 1;
                }
                cur = p;
            }
            steps.reverse();
            return Some(MazePath {
                steps,
                cost: dist[key],
                bends,
            });
        }
        let neighbors = [
            (cell.0.wrapping_sub(1), cell.1, 1u8),
            (cell.0 + 1, cell.1, 1u8),
            (cell.0, cell.1.wrapping_sub(1), 2u8),
            (cell.0, cell.1 + 1, 2u8),
        ];
        for (nx_, ny_, nd) in neighbors {
            if nx_ >= nx || ny_ >= ny {
                continue;
            }
            let step = cell_cost(nx_, ny_, nd == 1);
            let bend = if dir != 0 && dir != nd { via_cost } else { 0.0 };
            let ng = g + step + bend;
            let nkey = idx((nx_, ny_), nd);
            if ng < dist[nkey] - 1e-12 {
                dist[nkey] = ng;
                prev[nkey] = key as u32;
                heap.push(Node {
                    f: ng + h((nx_, ny_)),
                    g: ng,
                    cell: (nx_, ny_),
                    dir: nd,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityMaps;
    use rdp_db::Map2d;

    fn maps(nx: usize, ny: usize) -> RouteMaps {
        RouteMaps::new(
            CapacityMaps {
                h: Map2d::filled(nx, ny, 10.0),
                v: Map2d::filled(nx, ny, 10.0),
            },
            0.5,
        )
    }

    #[test]
    fn straight_line_is_found() {
        let m = maps(8, 8);
        let p = astar(&m, (0, 3), (7, 3), &|_, _, _| 1.0, 1.0).unwrap();
        assert_eq!(p.steps.len(), 7);
        assert_eq!(p.bends, 0);
        assert!((p.cost - 7.0).abs() < 1e-9);
        assert_eq!(p.steps.last().unwrap().cell, (7, 3));
    }

    #[test]
    fn source_equals_target() {
        let m = maps(4, 4);
        let p = astar(&m, (2, 2), (2, 2), &|_, _, _| 1.0, 1.0).unwrap();
        assert!(p.steps.is_empty());
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn detours_around_expensive_wall() {
        let m = maps(8, 8);
        // Wall at x = 4 except the top row.
        let cost = |ix: usize, iy: usize, _h: bool| -> f64 {
            if ix == 4 && iy < 7 {
                1000.0
            } else {
                1.0
            }
        };
        let p = astar(&m, (0, 0), (7, 0), &cost, 0.5).unwrap();
        // Path must climb to row 7 to cross the wall.
        assert!(p.steps.iter().any(|s| s.cell.1 == 7), "{:?}", p.steps);
        assert!(p.cost < 1000.0);
        assert!(p.bends >= 2);
    }

    #[test]
    fn bend_cost_prefers_straighter_paths() {
        let m = maps(6, 6);
        let cheap_bends = astar(&m, (0, 0), (5, 5), &|_, _, _| 1.0, 0.0).unwrap();
        let dear_bends = astar(&m, (0, 0), (5, 5), &|_, _, _| 1.0, 10.0).unwrap();
        assert!(dear_bends.bends <= cheap_bends.bends.max(1));
        // Any monotone path has 10 steps.
        assert_eq!(dear_bends.steps.len(), 10);
    }

    #[test]
    fn path_is_connected() {
        let m = maps(10, 10);
        let p = astar(&m, (1, 8), (9, 2), &|ix, _, _| 1.0 + (ix % 3) as f64, 1.5).unwrap();
        let mut cur = (1usize, 8usize);
        for s in &p.steps {
            let dx = (s.cell.0 as i64 - cur.0 as i64).abs();
            let dy = (s.cell.1 as i64 - cur.1 as i64).abs();
            assert_eq!(dx + dy, 1, "disconnected step {s:?} from {cur:?}");
            cur = s.cell;
        }
        assert_eq!(cur, (9, 2));
    }
}
