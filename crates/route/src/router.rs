//! Congestion-aware L/Z-shape pattern global router.
//!
//! A CPU stand-in for the GPU-accelerated 3-D Z-shape router of Lin & Wong
//! (ICCAD 2022) that the paper invokes for congestion estimation. Every
//! net is decomposed into two-pin segments ([`crate::rsmt`]); each segment
//! is routed with the cheapest of its straight / L-shape / Z-shape
//! candidates under a logistic congestion cost, and its demand is
//! committed to the maps. A configurable number of rip-up-and-reroute
//! passes refines the solution against the accumulated demand.

use crate::capacity::{CapacityMaps, CapacityOptions};
use crate::maps::RouteMaps;
use crate::rsmt;
use rdp_db::{Design, GridSpec, Map2d, NetId};
use rdp_obs::Collector;
use rdp_par::{chunk_len, Pool};

/// Configuration for [`GlobalRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Demand units consumed by one via in a G-cell.
    pub via_weight: f64,
    /// Cost charged per bend (via) when comparing candidates.
    pub via_cost: f64,
    /// Number of interior bend positions sampled per Z-shape family.
    pub z_candidates: usize,
    /// Logistic congestion-cost amplitude.
    pub cost_amplitude: f64,
    /// Logistic congestion-cost sharpness.
    pub cost_sharpness: f64,
    /// Routing passes; passes beyond the first rip up and reroute every
    /// net against the then-current demand.
    pub passes: usize,
    /// Vias added per pin for the connection from the pin layer up into
    /// the routing layers.
    pub pin_via: f64,
    /// Maximum number of overflow-crossing segments ripped up and
    /// re-routed with the A* maze router after the pattern passes
    /// (0 disables the maze phase; the evaluation flow enables it to let
    /// congested placements pay real detours).
    pub maze_rip_up: usize,
    /// Upper bound on the number of segments whose candidate paths are
    /// evaluated concurrently. Batches only group segments whose effect
    /// regions are pairwise disjoint, so any value (including 1, which
    /// forces fully serial routing) produces bit-identical results.
    pub parallel_batch: usize,
    /// Capacity derivation options.
    pub capacity: CapacityOptions,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            via_weight: 0.5,
            via_cost: 1.0,
            z_candidates: 4,
            cost_amplitude: 12.0,
            cost_sharpness: 6.0,
            passes: 2,
            pin_via: 0.5,
            maze_rip_up: 0,
            parallel_batch: 64,
            capacity: CapacityOptions::default(),
        }
    }
}

/// Result of routing a design.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Demand and capacity maps after routing.
    pub maps: RouteMaps,
    /// Total routed wirelength in microns (including maze detours).
    pub wirelength: f64,
    /// Total via count (bend vias + pin vias).
    pub vias: f64,
    /// Cached Eq. (3) congestion map.
    pub congestion: Map2d<f64>,
    /// Segments re-routed by the maze phase.
    pub maze_rerouted: usize,
    /// Extra wirelength (microns) spent on maze detours.
    pub detour_wirelength: f64,
}

impl RouteResult {
    /// Convenience: maximum congestion value.
    pub fn max_congestion(&self) -> f64 {
        self.congestion.max()
    }
}

/// One monotone run of a committed path.
#[derive(Debug, Clone, Copy)]
struct Run {
    /// True for a horizontal run.
    horizontal: bool,
    /// Row (for horizontal) or column (for vertical).
    fixed: usize,
    /// Inclusive start index along the run.
    from: usize,
    /// Inclusive end index along the run.
    to: usize,
}

/// A committed segment route: at most three runs plus its bend count.
#[derive(Debug, Clone, Default)]
struct Path {
    runs: Vec<Run>,
    bends: usize,
}

/// Inclusive G-cell rectangle used for batch-conflict tests.
#[derive(Debug, Clone, Copy)]
struct BinRect {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
}

impl BinRect {
    fn of(a: (usize, usize), b: (usize, usize)) -> Self {
        BinRect {
            x0: a.0.min(b.0),
            x1: a.0.max(b.0),
            y0: a.1.min(b.1),
            y1: a.1.max(b.1),
        }
    }

    fn union(self, o: BinRect) -> BinRect {
        BinRect {
            x0: self.x0.min(o.x0),
            x1: self.x1.max(o.x1),
            y0: self.y0.min(o.y0),
            y1: self.y1.max(o.y1),
        }
    }

    fn intersects(&self, o: &BinRect) -> bool {
        self.x0 <= o.x1 && o.x0 <= self.x1 && self.y0 <= o.y1 && o.y0 <= self.y1
    }
}

/// One two-pin routing task in the flattened per-pass work list.
#[derive(Debug, Clone, Copy)]
struct SegTask {
    /// Net (request) index.
    ri: usize,
    /// Segment index within the net.
    si: usize,
    a: (usize, usize),
    b: (usize, usize),
    /// Bounding box of `a`/`b`: every straight/L/Z candidate lies inside.
    seg_rect: BinRect,
    /// For the first segment of a net: the net's overall segment bbox,
    /// covering every cell its rip-up can touch (pattern paths never leave
    /// their segment bbox).
    rip_rect: Option<BinRect>,
}

/// Congestion-aware pattern router.
#[derive(Debug, Clone, Default)]
pub struct GlobalRouter {
    cfg: RouterConfig,
}

impl GlobalRouter {
    /// Creates a router with the given configuration.
    pub fn new(cfg: RouterConfig) -> Self {
        GlobalRouter { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Routes the design on its G-cell grid.
    pub fn route(&self, design: &Design) -> RouteResult {
        let grid = design.gcell_grid();
        self.route_on_grid(design, &grid)
    }

    /// [`route`](GlobalRouter::route) with observability: the decomposition,
    /// per-pass rip-up batches, and the maze phase are recorded as spans,
    /// plus batch/maze counters. Results are identical to [`route`].
    pub fn route_obs(&self, design: &Design, obs: &Collector) -> RouteResult {
        let grid = design.gcell_grid();
        self.route_on_grid_obs(design, &grid, obs)
    }

    /// Routes the design on an arbitrary grid (used by the evaluation flow
    /// at finer granularity).
    ///
    /// Net decomposition and candidate-path evaluation run on the global
    /// [`Pool`]; demand commits stay sequential in net order, and parallel
    /// batches only group segments with disjoint effect regions, so the
    /// result is bit-identical to a fully serial route for any thread
    /// count.
    pub fn route_on_grid(&self, design: &Design, grid: &GridSpec) -> RouteResult {
        self.route_on_grid_obs(design, grid, &Collector::disabled())
    }

    /// [`route_on_grid`](GlobalRouter::route_on_grid) with observability.
    pub fn route_on_grid_obs(
        &self,
        design: &Design,
        grid: &GridSpec,
        obs: &Collector,
    ) -> RouteResult {
        let pool = Pool::global();
        let caps = CapacityMaps::build_on_grid(design, grid, &self.cfg.capacity);
        let mut maps = RouteMaps::new(caps, self.cfg.via_weight);

        // Decompose all nets into G-cell segment requests. Decomposition is
        // pure per-net work; the per-net results are folded in net order
        // below so the wirelength sum and via commits match a serial run.
        let num_nets = design.num_nets();
        struct NetDecomp {
            cells: Vec<((usize, usize), (usize, usize))>,
            pin_bins: Vec<(usize, usize)>,
            pin_vias: f64,
            net_len: f64,
        }
        let net_chunk = chunk_len(num_nets, 64, 32);
        let decomp_span = obs.span("route_decompose", "route");
        let decomposed: Vec<NetDecomp> = pool
            .map_chunks(num_nets, net_chunk, |_ci, range| {
                let mut out = Vec::with_capacity(range.len());
                for ni in range {
                    let pins: Vec<_> = design
                        .net(NetId::from_index(ni))
                        .pins
                        .iter()
                        .map(|&p| design.pin_position(p))
                        .collect();
                    let segs = rsmt::decompose(&pins);
                    let net_len = rsmt::total_length(&segs);
                    let cells: Vec<_> = segs
                        .iter()
                        .map(|s| (grid.bin_of(s.a), grid.bin_of(s.b)))
                        .collect();
                    let pin_bins: Vec<_> = pins.iter().map(|p| grid.bin_of(*p)).collect();
                    out.push(NetDecomp {
                        cells,
                        pin_vias: self.cfg.pin_via * pins.len() as f64,
                        pin_bins,
                        net_len,
                    });
                }
                out
            })
            .into_iter()
            .flatten()
            .collect();
        drop(decomp_span);

        let mut requests: Vec<(NetId, Vec<((usize, usize), (usize, usize))>, f64)> = Vec::new();
        let mut wirelength = 0.0;
        for (ni, d) in decomposed.into_iter().enumerate() {
            wirelength += d.net_len;
            // Commit pin vias once, independent of pass structure.
            for &(ix, iy) in &d.pin_bins {
                maps.via_demand[(ix, iy)] += self.cfg.pin_via;
            }
            requests.push((NetId::from_index(ni), d.cells, d.pin_vias));
        }

        // Flatten the segment work list once; each pass walks it in order.
        let mut tasks: Vec<SegTask> = Vec::new();
        for (ri, (_net, cells, _)) in requests.iter().enumerate() {
            let net_rect = cells
                .iter()
                .map(|&(a, b)| BinRect::of(a, b))
                .reduce(BinRect::union);
            for (si, &(a, b)) in cells.iter().enumerate() {
                tasks.push(SegTask {
                    ri,
                    si,
                    a,
                    b,
                    seg_rect: BinRect::of(a, b),
                    rip_rect: if si == 0 { net_rect } else { None },
                });
            }
        }

        // Pass 1: route in net order. Passes 2..n: rip-up and reroute.
        let mut committed: Vec<Vec<Path>> = vec![Vec::new(); requests.len()];
        let batch_cap = self.cfg.parallel_batch.max(1);
        for pass in 0..self.cfg.passes.max(1) {
            let _pass_span = obs.span_iter("route_pass", "route", pass as i64);
            let mut batches_this_pass = 0u64;
            let mut i = 0;
            while i < tasks.len() {
                // Grow a batch of segments whose effect regions (candidate
                // bbox, plus this pass's rip-up region for a net's first
                // segment) are pairwise disjoint. Disjointness means no
                // batch member's commit or rip-up can change another
                // member's candidate costs, so evaluating the whole batch
                // against the frozen maps is exactly the serial result.
                let mut rects: Vec<BinRect> = Vec::new();
                let mut j = i;
                'grow: while j < tasks.len() && j - i < batch_cap {
                    let t = &tasks[j];
                    let mut own: Vec<BinRect> = vec![t.seg_rect];
                    if pass > 0 {
                        if let Some(r) = t.rip_rect {
                            own.push(r);
                        }
                    }
                    if j > i {
                        for r in &rects {
                            if own.iter().any(|o| o.intersects(r)) {
                                break 'grow;
                            }
                        }
                    }
                    rects.extend(own);
                    j += 1;
                }

                // Rip up batch nets in order (first-segment tasks only).
                if pass > 0 {
                    for t in &tasks[i..j] {
                        if t.si == 0 {
                            for path in &committed[t.ri] {
                                self.apply_path(&mut maps, path, -1.0);
                            }
                            committed[t.ri].clear();
                        }
                    }
                }

                // Evaluate candidate paths against the frozen maps.
                let batch = &tasks[i..j];
                let paths: Vec<Path> = if batch.len() >= 16 && pool.threads() > 1 {
                    pool.map_chunks(batch.len(), chunk_len(batch.len(), 8, 4), |_ci, range| {
                        range
                            .map(|k| self.best_path(&maps, batch[k].a, batch[k].b))
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()
                } else {
                    batch
                        .iter()
                        .map(|t| self.best_path(&maps, t.a, t.b))
                        .collect()
                };

                // Commit sequentially in flat (net, segment) order.
                for (t, path) in batch.iter().zip(paths) {
                    self.apply_path(&mut maps, &path, 1.0);
                    debug_assert_eq!(committed[t.ri].len(), t.si);
                    committed[t.ri].push(path);
                }
                batches_this_pass += 1;
                if obs.is_enabled() {
                    obs.observe("route_batch_size", (j - i) as f64);
                }
                i = j;
            }
            obs.counter_add("route_batches", batches_this_pass);
        }

        let mut bend_vias: f64 = committed.iter().flatten().map(|p| p.bends as f64).sum();

        // Maze phase: rip up the worst overflow-crossing segments and let
        // A* find detours.
        let mut maze_rerouted = 0usize;
        let mut detour_wirelength = 0.0;
        if self.cfg.maze_rip_up > 0 {
            let _maze_span = obs.span("route_maze", "route");
            // Score each committed segment by the overflow it crosses.
            let mut scored: Vec<(f64, usize, usize)> = Vec::new(); // (score, req idx, seg idx)
            for (ri, paths) in committed.iter().enumerate() {
                for (si, path) in paths.iter().enumerate() {
                    let mut score = 0.0;
                    for run in &path.runs {
                        for i in run.from..=run.to {
                            let (ix, iy) = if run.horizontal {
                                (i, run.fixed)
                            } else {
                                (run.fixed, i)
                            };
                            score += (maps.demand_at(ix, iy) - maps.capacity_at(ix, iy)).max(0.0);
                        }
                    }
                    if score > 0.0 {
                        scored.push((score, ri, si));
                    }
                }
            }
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            scored.truncate(self.cfg.maze_rip_up);

            let pitch = 0.5 * (grid.bin_w() + grid.bin_h());
            for (_, ri, si) in scored {
                let old = committed[ri][si].clone();
                self.apply_path(&mut maps, &old, -1.0);
                bend_vias -= old.bends as f64;
                let (a, b) = requests[ri].1[si];
                let cost = |ix: usize, iy: usize, horizontal: bool| {
                    self.cell_cost(&maps, ix, iy, horizontal)
                };
                match crate::maze::astar(&maps, a, b, &cost, self.cfg.via_cost) {
                    Some(mp) => {
                        for step in &mp.steps {
                            if step.horizontal {
                                maps.h_demand[step.cell] += 1.0;
                            } else {
                                maps.v_demand[step.cell] += 1.0;
                            }
                        }
                        // Bends become vias at the turn cells (approximate:
                        // charge at the step cell).
                        let mut prev_dir: Option<bool> = None;
                        for step in &mp.steps {
                            if let Some(pd) = prev_dir {
                                if pd != step.horizontal {
                                    maps.via_demand[step.cell] += 1.0;
                                }
                            }
                            prev_dir = Some(step.horizontal);
                        }
                        bend_vias += mp.bends as f64;
                        let manhattan =
                            (a.0 as f64 - b.0 as f64).abs() + (a.1 as f64 - b.1 as f64).abs();
                        let extra = (mp.steps.len() as f64 - manhattan).max(0.0) * pitch;
                        detour_wirelength += extra;
                        maze_rerouted += 1;
                        committed[ri][si] = Path::default(); // consumed
                    }
                    None => {
                        // Restore the pattern route (degenerate grids only).
                        self.apply_path(&mut maps, &old, 1.0);
                        bend_vias += old.bends as f64;
                        committed[ri][si] = old;
                    }
                }
            }
        }

        obs.counter_add("route_maze_rerouted", maze_rerouted as u64);
        let pin_vias: f64 = requests.iter().map(|r| r.2).sum();
        let congestion = maps.congestion_eq3();
        RouteResult {
            maps,
            wirelength: wirelength + detour_wirelength,
            vias: bend_vias + pin_vias,
            congestion,
            maze_rerouted,
            detour_wirelength,
        }
    }

    /// Logistic congestion cost of pushing one more unit of demand through
    /// a G-cell in the given direction.
    #[inline]
    fn cell_cost(&self, maps: &RouteMaps, ix: usize, iy: usize, horizontal: bool) -> f64 {
        let (dem, cap) = if horizontal {
            (maps.h_demand[(ix, iy)], maps.caps.h[(ix, iy)])
        } else {
            (maps.v_demand[(ix, iy)], maps.caps.v[(ix, iy)])
        };
        let u = (dem + 1.0 + maps.via_weight * maps.via_demand[(ix, iy)]) / cap;
        1.0 + self.cfg.cost_amplitude / (1.0 + (-self.cfg.cost_sharpness * (u - 1.0)).exp())
    }

    fn run_cost(&self, maps: &RouteMaps, run: &Run) -> f64 {
        let mut acc = 0.0;
        for i in run.from..=run.to {
            let (ix, iy) = if run.horizontal {
                (i, run.fixed)
            } else {
                (run.fixed, i)
            };
            acc += self.cell_cost(maps, ix, iy, run.horizontal);
        }
        acc
    }

    fn path_cost(&self, maps: &RouteMaps, path: &Path) -> f64 {
        path.runs
            .iter()
            .map(|r| self.run_cost(maps, r))
            .sum::<f64>()
            + self.cfg.via_cost * path.bends as f64
    }

    /// Enumerates straight / L / Z candidates and returns the cheapest.
    fn best_path(&self, maps: &RouteMaps, a: (usize, usize), b: (usize, usize)) -> Path {
        let (ax, ay) = a;
        let (bx, by) = b;
        if ax == bx && ay == by {
            return Path::default();
        }
        if ay == by {
            return Path {
                runs: vec![hrun(ay, ax, bx)],
                bends: 0,
            };
        }
        if ax == bx {
            return Path {
                runs: vec![vrun(ax, ay, by)],
                bends: 0,
            };
        }

        let mut candidates: Vec<Path> = Vec::with_capacity(2 + 2 * self.cfg.z_candidates);
        // L-shapes.
        candidates.push(Path {
            runs: vec![hrun(ay, ax, bx), vrun(bx, ay, by)],
            bends: 1,
        });
        candidates.push(Path {
            runs: vec![vrun(ax, ay, by), hrun(by, ax, bx)],
            bends: 1,
        });
        // Z-shapes: H-V-H with interior bend column, V-H-V with interior
        // bend row.
        let (xlo, xhi) = (ax.min(bx), ax.max(bx));
        let (ylo, yhi) = (ay.min(by), ay.max(by));
        for t in 1..=self.cfg.z_candidates {
            let xm = xlo + t * (xhi - xlo) / (self.cfg.z_candidates + 1);
            if xm > xlo && xm < xhi {
                candidates.push(Path {
                    runs: vec![hrun(ay, ax, xm), vrun(xm, ay, by), hrun(by, xm, bx)],
                    bends: 2,
                });
            }
            let ym = ylo + t * (yhi - ylo) / (self.cfg.z_candidates + 1);
            if ym > ylo && ym < yhi {
                candidates.push(Path {
                    runs: vec![vrun(ax, ay, ym), hrun(ym, ax, bx), vrun(bx, ym, by)],
                    bends: 2,
                });
            }
        }

        candidates
            .into_iter()
            .map(|p| (self.path_cost(maps, &p), p))
            .min_by(|(c1, _), (c2, _)| c1.total_cmp(c2))
            .map(|(_, p)| p)
            .expect("candidate list is never empty")
    }

    fn apply_path(&self, maps: &mut RouteMaps, path: &Path, sign: f64) {
        for run in &path.runs {
            for i in run.from..=run.to {
                if run.horizontal {
                    maps.h_demand[(i, run.fixed)] += sign;
                } else {
                    maps.v_demand[(run.fixed, i)] += sign;
                }
            }
        }
        // Bend vias at run joints: charged at the start cell of each
        // follow-up run.
        for w in path.runs.windows(2) {
            let joint = joint_cell(&w[0], &w[1]);
            maps.via_demand[joint] += sign;
        }
    }
}

fn hrun(y: usize, x0: usize, x1: usize) -> Run {
    Run {
        horizontal: true,
        fixed: y,
        from: x0.min(x1),
        to: x0.max(x1),
    }
}

fn vrun(x: usize, y0: usize, y1: usize) -> Run {
    Run {
        horizontal: false,
        fixed: x,
        from: y0.min(y1),
        to: y0.max(y1),
    }
}

/// The G-cell where two consecutive runs meet.
fn joint_cell(a: &Run, b: &Run) -> (usize, usize) {
    // One is horizontal, the other vertical: the joint is (v.fixed, h.fixed).
    if a.horizontal {
        (b.fixed, a.fixed)
    } else {
        (a.fixed, b.fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};

    fn two_pin_design(a: Point, b: Point) -> Design {
        let mut db = DesignBuilder::new("t", Rect::new(0.0, 0.0, 80.0, 80.0));
        let c1 = db.add_cell(Cell::std("a", 1.0, 1.0), a);
        let c2 = db.add_cell(Cell::std("b", 1.0, 1.0), b);
        db.add_net("n", vec![(c1, Point::default()), (c2, Point::default())]);
        db.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
        db.build().unwrap()
    }

    #[test]
    fn straight_segment_consumes_h_demand_only() {
        let d = two_pin_design(Point::new(5.0, 45.0), Point::new(75.0, 45.0));
        let r = GlobalRouter::default().route(&d);
        // Row 4 G-cells 0..=7 each get 1 unit of horizontal demand.
        for ix in 0..8 {
            assert_eq!(r.maps.h_demand[(ix, 4)], 1.0, "ix={ix}");
        }
        assert_eq!(r.maps.v_demand.sum(), 0.0);
        // Only pin vias, no bends.
        assert_eq!(r.vias, 1.0);
        assert!((r.wirelength - 70.0).abs() < 1e-9);
    }

    #[test]
    fn l_or_z_route_conserves_demand() {
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(75.0, 75.0));
        let r = GlobalRouter::default().route(&d);
        // A monotone path spans 8 columns + 8 rows; the joint cell is
        // counted once per direction it is traversed in.
        let total = r.maps.h_demand.sum() + r.maps.v_demand.sum();
        // 8 horizontal cells + 8 vertical cells, with the bends double
        // counted once per bend (each bend cell carries both H and V).
        assert!(total >= 16.0 && total <= 18.0, "total demand {total}");
        assert!(r.vias >= 2.0); // 1 pin via total + >=1 bend
    }

    #[test]
    fn same_gcell_net_adds_no_wire_demand() {
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let r = GlobalRouter::default().route(&d);
        assert_eq!(r.maps.h_demand.sum(), 0.0);
        assert_eq!(r.maps.v_demand.sum(), 0.0);
        assert_eq!(r.maps.via_demand.sum(), 1.0); // two pin vias à 0.5
    }

    #[test]
    fn router_avoids_congested_column() {
        // Jam the direct column with fake demand, then route a vertical
        // segment: with Z-candidates the router can sidestep; since a
        // vertical segment has only the straight candidate, use a diagonal
        // segment whose L candidates differ in congestion.
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(75.0, 75.0));
        let grid = d.gcell_grid();
        let caps = CapacityMaps::build_on_grid(&d, &grid, &CapacityOptions::default());
        let mut maps = RouteMaps::new(caps, 0.5);
        // Make column x=0 (the V leg of the VH L-shape) very expensive.
        for iy in 0..8 {
            maps.v_demand[(0, iy)] = 500.0;
        }
        let router = GlobalRouter::default();
        let path = router.best_path(&maps, (0, 0), (7, 7));
        // The chosen path must not run vertically along column 0.
        for run in &path.runs {
            assert!(
                run.horizontal || run.fixed != 0,
                "path used congested column: {path:?}"
            );
        }
    }

    #[test]
    fn multi_pin_net_routes_all_mst_edges() {
        let mut db = DesignBuilder::new("t", Rect::new(0.0, 0.0, 80.0, 80.0));
        let c1 = db.add_cell(Cell::std("a", 1.0, 1.0), Point::new(5.0, 5.0));
        let c2 = db.add_cell(Cell::std("b", 1.0, 1.0), Point::new(75.0, 5.0));
        let c3 = db.add_cell(Cell::std("c", 1.0, 1.0), Point::new(5.0, 75.0));
        db.add_net(
            "n",
            vec![
                (c1, Point::default()),
                (c2, Point::default()),
                (c3, Point::default()),
            ],
        );
        db.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
        let d = db.build().unwrap();
        let r = GlobalRouter::default().route(&d);
        assert!((r.wirelength - 140.0).abs() < 1e-9);
        // Both MST edges are axis-aligned: 8+8 cells of wire demand.
        assert_eq!(r.maps.h_demand.sum() + r.maps.v_demand.sum(), 16.0);
    }

    #[test]
    fn second_pass_never_worse() {
        // With many overlapping nets, pass 2 should not increase overflow.
        let mut db = DesignBuilder::new("t", Rect::new(0.0, 0.0, 80.0, 80.0));
        let mut ids = Vec::new();
        for i in 0..40 {
            let y = 35.0 + (i % 4) as f64;
            let a = db.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(5.0, y));
            let b = db.add_cell(
                Cell::std(format!("b{i}"), 1.0, 1.0),
                Point::new(75.0, 75.0 - y),
            );
            ids.push((a, b));
        }
        for (i, (a, b)) in ids.iter().enumerate() {
            db.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*b, Point::default())],
            );
        }
        db.routing(RoutingSpec::uniform(4, 3.0, 8, 8));
        let d = db.build().unwrap();
        let one_pass = GlobalRouter::new(RouterConfig {
            passes: 1,
            ..Default::default()
        })
        .route(&d);
        let two_pass = GlobalRouter::new(RouterConfig {
            passes: 2,
            ..Default::default()
        })
        .route(&d);
        assert!(
            two_pass.maps.total_overflow() <= one_pass.maps.total_overflow() + 1e-9,
            "pass2 {} vs pass1 {}",
            two_pass.maps.total_overflow(),
            one_pass.maps.total_overflow()
        );
    }

    #[test]
    fn congestion_map_dimensions_match_grid() {
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(75.0, 75.0));
        let r = GlobalRouter::default().route(&d);
        assert_eq!(r.congestion.nx(), 8);
        assert_eq!(r.congestion.ny(), 8);
        assert!(r.max_congestion() >= 0.0);
    }
}
